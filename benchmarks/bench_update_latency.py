"""Single-update tail latency: express lane vs engine path at batch 1.

Measures what the express lane (:mod:`repro.core.fastpath`) exists for:
per-update latency on a converged state. Three workloads over the same
RMAT graph, SSSP/DAP:

* **express/safe_insert** — fresh high-weight edges that always classify
  safe (``insert-no-improvement``): the pure fast-path cost of classify +
  dict-level store mutation. The headline gate: its median must be ≥ 50×
  faster than the engine path at batch size 1.
* **express/mixed** — a generated 70/30 insert/delete single-update
  stream replayed through :meth:`ExpressLane.apply`, so unsafe updates
  fall through to the engine. Reports the safe ratio and per-outcome
  latency percentiles — the realistic blended cost.
* **engine/batch1** — the same single-update stream shape run as
  one-edge :class:`UpdateBatch` es through ``apply_batch``, i.e. what
  every update would cost without the lane.

The regression-gate ``events`` column uses deterministic work counters
(classification scan entries + engine events processed), never wall
clock, so event drift always means a behaviour change.

Usable two ways:

* ``python benchmarks/bench_update_latency.py`` — standalone, writes
  ``BENCH_latency.json`` at the repo root. ``REPRO_BENCH_QUICK=1``
  shrinks the graph and update counts for CI smoke runs.
* ``repro bench check --suite latency`` — re-runs :func:`collect` and
  gates updates/s and exact work counts against the committed baseline.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.algorithms import make_algorithm
from repro.core.fastpath import ExpressLane
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.streams import StreamGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_latency.json"

ALGORITHM = "sssp"
STREAM_SEED = 23
#: Weight far above any converged SSSP distance on the bench graphs, so
#: the safe-insert workload classifies ``insert-no-improvement`` always.
HEAVY_WEIGHT = 1.0e9

#: The headline acceptance gate (full mode only).
SPEEDUP_GATE = 50.0


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_graph(quick: bool):
    if quick:
        name, n, m = "rmat-2k", 2_048, 12_288
    else:
        name, n, m = "rmat-131k", 16_384, 131_072
    edges = generators.ensure_reachable_core(
        generators.rmat(n, m, seed=17), n, seed=18
    )
    return name, n, edges


def update_plan(quick: bool):
    """(safe_inserts, mixed_updates, engine_batches)."""
    if quick:
        return 100, 60, 12
    return 300, 150, 30


def make_engine(edges, num_vertices: int) -> JetStreamEngine:
    graph = DynamicGraph.from_edges(edges, num_vertices)
    engine = JetStreamEngine(
        graph,
        make_algorithm(ALGORITHM, source=0),
        policy=DeletePolicy.DAP,
    )
    engine.initial_compute()
    return engine


def fresh_edges(graph, count: int, seed: int):
    """``count`` fresh (u, v) pairs absent from ``graph``, deterministic."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    out, chosen = [], set()
    while len(out) < count:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or (u, v) in chosen or graph.has_edge(u, v):
            continue
        chosen.add((u, v))
        out.append((u, v))
    return out


def pregenerate_single_updates(edges, num_vertices: int, count: int):
    """A consistent single-update stream, produced off the clock.

    Returns ``(u, v, w, op)`` tuples; generated against a scratch graph so
    the timed replay sees the exact sequence without generation cost.
    """
    scratch = DynamicGraph.from_edges(edges, num_vertices)
    gen = StreamGenerator(scratch, seed=STREAM_SEED)
    updates = []
    for batch in gen.stream(1, count):
        for e in batch.insertions:
            updates.append((e.u, e.v, e.w, "insert"))
        for e in batch.deletions:
            updates.append((e.u, e.v, e.w, "delete"))
    return updates


def percentiles(latencies):
    xs = sorted(latencies)
    n = len(xs)
    return {
        "p50_us": statistics.median(xs) * 1e6,
        "p99_us": xs[min(n - 1, max(0, (99 * n) // 100))] * 1e6,
        "max_us": xs[-1] * 1e6,
    }


def run_safe_inserts(edges, num_vertices: int, count: int) -> dict:
    engine = make_engine(edges, num_vertices)
    lane = ExpressLane(engine)
    targets = fresh_edges(engine.graph, count, seed=41)
    latencies, work = [], 0
    started = time.perf_counter()
    for u, v in targets:
        result = lane.apply(u, v, HEAVY_WEIGHT, "insert")
        latencies.append(result.latency_s)
        work += result.edges_scanned + result.state_reads
        assert result.safe, f"heavy insert {u}->{v} classified {result.reason}"
    elapsed = time.perf_counter() - started
    engine.close()
    return {
        "updates": count,
        "wall_clock_s": elapsed,
        "updates_per_s": count / elapsed if elapsed > 0 else float("inf"),
        "latency": percentiles(latencies),
        "work_entries": int(work),
    }


def run_mixed(edges, num_vertices: int, count: int) -> dict:
    updates = pregenerate_single_updates(edges, num_vertices, count)
    engine = make_engine(edges, num_vertices)
    lane = ExpressLane(engine)
    safe_lat, unsafe_lat = [], []
    work = 0
    started = time.perf_counter()
    for u, v, w, op in updates:
        result = lane.apply(u, v, w, op)
        (safe_lat if result.safe else unsafe_lat).append(result.latency_s)
        work += result.edges_scanned + result.state_reads
        if result.engine_result is not None:
            work += result.engine_result.metrics.events_processed
    elapsed = time.perf_counter() - started
    stats = dict(lane.stats)
    engine.close()
    report = {
        "updates": len(updates),
        "wall_clock_s": elapsed,
        "updates_per_s": len(updates) / elapsed if elapsed > 0 else float("inf"),
        "safe": len(safe_lat),
        "unsafe": len(unsafe_lat),
        "safe_ratio": len(safe_lat) / len(updates) if updates else 0.0,
        "work_entries": int(work),
        "lane": stats,
    }
    if safe_lat:
        report["safe_latency"] = percentiles(safe_lat)
    if unsafe_lat:
        report["unsafe_latency"] = percentiles(unsafe_lat)
    return report


def run_engine_batch1(edges, num_vertices: int, count: int) -> dict:
    from repro.streams import Edge, UpdateBatch

    updates = pregenerate_single_updates(edges, num_vertices, count)
    engine = make_engine(edges, num_vertices)
    latencies, events = [], 0
    started = time.perf_counter()
    for u, v, w, op in updates:
        if op == "insert":
            batch = UpdateBatch(insertions=[Edge(u, v, w)])
        else:
            batch = UpdateBatch(deletions=[Edge(u, v)])
        t0 = time.perf_counter()
        result = engine.apply_batch(batch)
        latencies.append(time.perf_counter() - t0)
        events += result.metrics.events_processed
    elapsed = time.perf_counter() - started
    engine.close()
    return {
        "updates": len(updates),
        "wall_clock_s": elapsed,
        "updates_per_s": len(updates) / elapsed if elapsed > 0 else float("inf"),
        "latency": percentiles(latencies),
        "events_processed": int(events),
    }


def collect(quick: bool) -> dict:
    graph_name, num_vertices, edges = build_graph(quick)
    n_safe, n_mixed, n_engine = update_plan(quick)

    safe = run_safe_inserts(edges, num_vertices, n_safe)
    mixed = run_mixed(edges, num_vertices, n_mixed)
    engine = run_engine_batch1(edges, num_vertices, n_engine)

    speedup = (
        engine["latency"]["p50_us"] / safe["latency"]["p50_us"]
        if safe["latency"]["p50_us"] > 0
        else float("inf")
    )
    print(
        f"safe insert p50 {safe['latency']['p50_us']:8.1f} us  "
        f"p99 {safe['latency']['p99_us']:8.1f} us"
    )
    print(
        f"engine batch1 p50 {engine['latency']['p50_us']:8.1f} us  "
        f"p99 {engine['latency']['p99_us']:8.1f} us  "
        f"express speedup {speedup:7.1f}x"
    )
    print(
        f"mixed stream: {mixed['safe']}/{mixed['updates']} safe "
        f"({mixed['safe_ratio']:.0%})"
    )
    return {
        "quick": quick,
        "graph": {
            "name": graph_name,
            "num_vertices": num_vertices,
            "num_edges": len(edges),
        },
        "algorithm": ALGORITHM,
        "speedup_p50": speedup,
        "results": {
            "safe_insert": safe,
            "mixed": mixed,
            "engine_batch1": engine,
        },
    }


def main() -> int:
    quick = quick_mode()
    report = collect(quick)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[saved to {OUTPUT_PATH}]")
    if not quick and report["speedup_p50"] < SPEEDUP_GATE:
        print(
            f"WARNING: express speedup {report['speedup_p50']:.1f}x below "
            f"the {SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


def test_update_latency_speedup(benchmark):
    """pytest-benchmark entry: quick grid, express must beat the engine."""
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    report = benchmark.pedantic(lambda: collect(True), rounds=1, iterations=1)
    assert report["speedup_p50"] > 5.0, (
        f"express safe insert only {report['speedup_p50']:.1f}x faster "
        "than the engine path at batch 1"
    )
    benchmark.extra_info["speedup_p50"] = round(report["speedup_p50"], 1)


if __name__ == "__main__":
    sys.exit(main())
