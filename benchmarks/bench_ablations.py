"""Ablation benches: design-choice studies beyond the paper's figures."""

from repro.experiments import ablations

from conftest import quick_mode, save_result


def test_coalescing_effectiveness(benchmark, results_dir):
    kwargs = {"algorithms": ["sssp", "pagerank"]} if quick_mode() else {}
    stats = benchmark.pedantic(
        ablations.coalescing_effectiveness, kwargs=kwargs, rounds=1, iterations=1
    )
    save_result(results_dir, "ablation_coalescing", ablations.render_coalescing(stats))
    # Coalescing must be doing real work — it is the atomics-free merge
    # mechanism the whole queue design exists for.
    assert any(s.rate > 0.2 for s in stats)
    benchmark.extra_info["max_rate"] = round(max(s.rate for s in stats), 3)


def test_queue_row_width_sweep(benchmark, results_dir):
    points = benchmark.pedantic(ablations.queue_row_sweep, rounds=1, iterations=1)
    save_result(
        results_dir,
        "ablation_queue_rows",
        ablations.render_sweep(points, "Ablation: queue row width sweep"),
    )
    assert len(points) == 5


def test_dram_channel_sweep(benchmark, results_dir):
    points = benchmark.pedantic(ablations.dram_channel_sweep, rounds=1, iterations=1)
    save_result(
        results_dir,
        "ablation_dram_channels",
        ablations.render_sweep(points, "Ablation: DRAM channel sweep"),
    )
    times = [p.time_us for p in points]
    assert times[0] >= times[-1], "more channels must not be slower"


def test_scheduler_drain_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        ablations.scheduler_drain_sweep, rounds=1, iterations=1
    )
    save_result(
        results_dir,
        "ablation_scheduler_drain",
        ablations.render_sweep(points, "Ablation: scheduler drain-width sweep"),
    )
    assert len(points) == 4


def test_software_overhead_sensitivity(benchmark, results_dir):
    points = benchmark.pedantic(
        ablations.software_overhead_sensitivity, rounds=1, iterations=1
    )
    save_result(
        results_dir, "ablation_sw_overhead", ablations.render_overheads(points)
    )
    # At the small batch, JetStream's advantage must grow with the floor.
    small = [p for p in points if p.batch_size == min(q.batch_size for q in points)]
    advantages = [p.advantage for p in sorted(small, key=lambda p: p.overhead_us)]
    assert advantages == sorted(advantages)


def test_energy_efficiency(benchmark, results_dir):
    from repro.experiments import energy

    kwargs = (
        {"graphs": ["WK", "LJ"], "algorithms": ["sssp", "pagerank"]}
        if quick_mode()
        else {}
    )
    points = benchmark.pedantic(energy.run, kwargs=kwargs, rounds=1, iterations=1)
    save_result(results_dir, "energy_efficiency", energy.render(points))
    gain = energy.mean_gain(points)
    assert gain > 2.0, "incremental queries must save substantial energy"
    benchmark.extra_info["mean_gain"] = round(gain, 1)


def test_end_to_end_staleness(benchmark, results_dir):
    """Extension: the Fig. 13 conclusion measured end to end — result
    staleness under a live Poisson update stream, JetStream vs cold start
    (see repro.core.pipeline)."""
    from repro.core.pipeline import ArrivalTrace, StreamingPipeline, engine_latency_function
    from repro import DynamicGraph, JetStreamEngine, make_algorithm
    from repro.baselines import GraphPulseColdStart
    from repro.graph import generators
    from repro.experiments.report import render_table

    edges = generators.ensure_reachable_core(
        generators.rmat(2048, 12288, seed=41), 2048, seed=42
    )

    def measure():
        jet_latency = engine_latency_function(
            lambda: JetStreamEngine(
                DynamicGraph.from_edges(edges, 2048), make_algorithm("sssp", source=0)
            ),
            probe_sizes=(4, 32, 256),
        )
        cold_latency = engine_latency_function(
            lambda: GraphPulseColdStart(
                DynamicGraph.from_edges(edges, 2048), make_algorithm("sssp", source=0)
            ),
            probe_sizes=(4, 32, 256),
        )
        rate = 2.0 / max(1e-9, cold_latency(4))
        trace = ArrivalTrace.poisson(rate_per_s=rate, duration_s=400 / rate, seed=43)
        rows = []
        for name, latency in (("jetstream", jet_latency), ("cold-start", cold_latency)):
            report = StreamingPipeline(latency).simulate(trace)
            rows.append(
                [
                    name,
                    report.mean_batch_size,
                    report.mean_staleness_s * 1e6,
                    report.p99_staleness_s * 1e6,
                    report.busy_fraction,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    rendering = render_table(
        ["Engine", "Mean batch", "Mean staleness (us)", "p99 staleness (us)", "Busy"],
        rows,
        title="Extension: end-to-end result staleness under a live update stream",
    )
    save_result(results_dir, "ablation_staleness", rendering)
    jet, cold = rows
    assert jet[2] < cold[2], "JetStream must serve fresher results"
