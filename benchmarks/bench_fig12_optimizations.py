"""Fig. 12 bench: Base / +VAP / +DAP speedups over cold-start GraphPulse.

Paper shape: the Base tagging scheme does work comparable to full
recomputation; VAP rescues SSSP/SSWP (distinct values) but not BFS/CC
(value plateaus); DAP wins across the board.
"""

from repro.experiments import fig12

from conftest import quick_mode, save_result


def test_fig12_optimizations(benchmark, results_dir):
    kwargs = (
        {"graphs": ["LJ"], "algorithms": ["sssp", "bfs"]} if quick_mode() else {}
    )
    points = benchmark.pedantic(fig12.run, kwargs=kwargs, rounds=1, iterations=1)
    rendering = fig12.render(points)
    save_result(results_dir, "fig12_optimizations", rendering)

    for point in points:
        base = point.speedups["base"]
        dap = point.speedups["dap"]
        assert dap >= base, f"DAP should dominate Base ({point.algorithm}/{point.graph})"
        if point.algorithm in ("bfs", "cc"):
            # Value plateaus: VAP cannot prune, DAP can (§5.2).
            assert dap >= point.speedups["vap"]
    mean_dap = sum(p.speedups["dap"] for p in points) / len(points)
    mean_base = sum(p.speedups["base"] for p in points) / len(points)
    benchmark.extra_info["mean_base_speedup"] = round(mean_base, 2)
    benchmark.extra_info["mean_dap_speedup"] = round(mean_dap, 2)
