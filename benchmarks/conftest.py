"""Shared infrastructure for the benchmark harness.

Every table/figure bench runs its experiment grid once (rounds=1 — these
are deterministic model evaluations, not noisy timings), writes the
paper-style rendering to ``benchmarks/results/<name>.txt``, and records
headline numbers in ``benchmark.extra_info`` so they appear in the
pytest-benchmark report.

Set ``REPRO_BENCH_QUICK=1`` to shrink the grids (two graphs, two
algorithms) for a fast smoke run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def quick_mode() -> bool:
    """Whether the reduced benchmark grids were requested."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def bench_graphs():
    """Dataset grid for the current mode."""
    return ["WK", "LJ"] if quick_mode() else None


def bench_algorithms():
    """Algorithm grid for the current mode (None = paper grid)."""
    return ["sssp", "pagerank"] if quick_mode() else None


def bench_selective_algorithms():
    return ["sssp"] if quick_mode() else None


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, rendering: str) -> None:
    """Persist a rendered table/figure and echo it to the terminal."""
    path = results_dir / f"{name}.txt"
    path.write_text(rendering + "\n", encoding="utf-8")
    # pytest captures stdout per-test; the saved file is the artifact.
    print(f"\n{rendering}\n[saved to {path}]")
