"""Fig. 13 bench: batch-size sensitivity on LiveJournal.

Paper shape: JetStream's speedup (relative to itself at the baseline
batch) grows steeply as batches shrink; the software frameworks flatten
out against their fixed per-batch costs, so JetStream's *relative*
advantage explodes at small batches — the near-real-time argument.
"""

from repro.experiments import fig13

from conftest import quick_mode, save_result


def test_fig13_batch_size_sensitivity(benchmark, results_dir):
    kwargs = {"algorithms": ["sssp"]} if quick_mode() else {}
    curves = benchmark.pedantic(fig13.run, kwargs=kwargs, rounds=1, iterations=1)
    rendering = fig13.render(curves)
    save_result(results_dir, "fig13_batch_size", rendering)

    for curve in curves:
        sizes = sorted(curve.points, reverse=True)
        if curve.system == "jetstream":
            # Smaller batches must be faster per batch.
            assert curve.points[sizes[-1]] > curve.points[sizes[0]]
    # JetStream's advantage over the software system grows as batches shrink.
    jet = {c.algorithm: c for c in curves if c.system == "jetstream"}
    for curve in curves:
        if curve.system == "jetstream":
            continue
        sizes = sorted(curve.points, reverse=True)
        gap_large = jet[curve.algorithm].points[sizes[0]] / max(
            1e-12, curve.points[sizes[0]]
        )
        gap_small = jet[curve.algorithm].points[sizes[-1]] / max(
            1e-12, curve.points[sizes[-1]]
        )
        assert gap_small > gap_large, (
            f"JetStream's advantage over {curve.system} should grow "
            f"as batches shrink ({curve.algorithm})"
        )
        benchmark.extra_info[f"{curve.algorithm}_gap_small_batch"] = round(
            gap_small, 1
        )
