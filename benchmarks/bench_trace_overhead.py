"""Tracing overhead benchmark: the one-attribute-check contract.

Measures static-convergence throughput three ways on the same graph:

* ``off``      — default engines (shared ``NULL_TRACER``): the shipping
  configuration, whose cost over an uninstrumented build is one
  ``tracer.enabled`` check per scheduler round;
* ``memory``   — full tracing into a :class:`MemorySink`;
* ``jsonl``    — full tracing streamed to a JSONL file.

Writes ``BENCH_trace.json`` at the repo root and prints a table. The
acceptance gate is on the *disabled* path: its median must stay within 3%
of itself across runs (noise floor) — the enabled paths are reported for
context, not gated.

Run: ``python benchmarks/bench_trace_overhead.py``
(``REPRO_BENCH_QUICK=1`` shrinks the grid.)
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import make_algorithm
from repro.core.engine import GraphPulseEngine
from repro.graph import generators
from repro.obs import JsonlSink, MemorySink, Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_trace.json"


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_csr(quick: bool):
    n, m = (2_048, 12_288) if quick else (16_384, 131_072)
    edges = generators.ensure_reachable_core(
        generators.rmat(n, m, seed=17), n, seed=18
    )
    from repro.graph.dynamic import DynamicGraph

    return DynamicGraph.from_edges(edges, n).snapshot()


def run_once(csr, tracer=None) -> tuple:
    engine = GraphPulseEngine(
        make_algorithm("sssp", source=0), engine="vectorized", tracer=tracer
    )
    started = time.perf_counter()
    result = engine.compute(csr)
    elapsed = time.perf_counter() - started
    return elapsed, result.metrics.events_processed


def measure(csr, mode: str, repeats: int) -> dict:
    times = []
    events = 0
    for _ in range(repeats):
        if mode == "off":
            tracer = None
            cleanup = lambda: None  # noqa: E731
        elif mode == "memory":
            tracer = Tracer([MemorySink()])
            cleanup = tracer.close
        else:
            handle = tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False
            )
            tracer = Tracer([JsonlSink(handle)])

            def cleanup(tracer=tracer, handle=handle):
                tracer.close()
                os.unlink(handle.name)

        elapsed, events = run_once(csr, tracer)
        cleanup()
        times.append(elapsed)
    median = statistics.median(times)
    return {
        "mode": mode,
        "median_s": median,
        "events": events,
        "events_per_s": events / median if median else 0.0,
    }


def main() -> int:
    quick = quick_mode()
    csr = build_csr(quick)
    repeats = 3 if quick else 5
    rows = [measure(csr, mode, repeats) for mode in ("off", "memory", "jsonl")]
    off = rows[0]["events_per_s"]
    for row in rows:
        row["relative_throughput"] = row["events_per_s"] / off if off else 0.0

    print(f"{'mode':>8} {'median s':>10} {'events/s':>14} {'vs off':>8}")
    for row in rows:
        print(
            f"{row['mode']:>8} {row['median_s']:>10.4f} "
            f"{row['events_per_s']:>14,.0f} "
            f"{row['relative_throughput']:>7.1%}"
        )

    OUTPUT_PATH.write_text(
        json.dumps(
            {
                "quick": quick,
                "graph": {
                    "num_vertices": csr.num_vertices,
                    "num_edges": csr.num_edges,
                },
                "repeats": repeats,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"\nwrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
