"""Tracing/metrics overhead benchmark: the one-attribute-check contract.

Measures static-convergence throughput four ways on the same graph:

* ``off``      — default engines (shared ``NULL_TRACER``, metrics
  registry disabled): the shipping configuration, whose cost over an
  uninstrumented build is one ``enabled`` check per scheduler round;
* ``metrics``  — the process-wide :data:`repro.obs.metrics.REGISTRY`
  enabled (counters/gauges/histograms folded once per round), no tracer;
* ``memory``   — full tracing into a :class:`MemorySink`;
* ``jsonl``    — full tracing streamed to a JSONL file.

Writes ``BENCH_trace.json`` at the repo root and prints a table. The
acceptance gates: the disabled path stays within noise of itself (≤ ~2%
across runs) and the enabled registry stays within ~10% of ``off``. The
traced modes are reported for context, not gated.

Run: ``python benchmarks/bench_trace_overhead.py``
(``REPRO_BENCH_QUICK=1`` shrinks the grid.)
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import make_algorithm
from repro.core.engine import GraphPulseEngine
from repro.graph import generators
from repro.obs import JsonlSink, MemorySink, Tracer
from repro.obs.metrics import REGISTRY

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_trace.json"

MODES = ("off", "metrics", "memory", "jsonl")


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_csr(quick: bool):
    n, m = (2_048, 12_288) if quick else (16_384, 131_072)
    edges = generators.ensure_reachable_core(
        generators.rmat(n, m, seed=17), n, seed=18
    )
    from repro.graph.dynamic import DynamicGraph

    return DynamicGraph.from_edges(edges, n).snapshot()


def run_once(csr, tracer=None) -> tuple:
    engine = GraphPulseEngine(
        make_algorithm("sssp", source=0), engine="vectorized", tracer=tracer
    )
    started = time.perf_counter()
    result = engine.compute(csr)
    elapsed = time.perf_counter() - started
    return elapsed, result.metrics.events_processed


def measure(csr, mode: str, repeats: int) -> dict:
    times = []
    events = 0
    for _ in range(repeats):
        tracer = None
        cleanup = lambda: None  # noqa: E731
        if mode == "metrics":
            REGISTRY.enable().reset()
            cleanup = lambda: REGISTRY.disable().reset()  # noqa: E731
        elif mode == "memory":
            tracer = Tracer([MemorySink()])
            cleanup = tracer.close
        elif mode == "jsonl":
            handle = tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", delete=False
            )
            tracer = Tracer([JsonlSink(handle)])

            def cleanup(tracer=tracer, handle=handle):
                tracer.close()
                os.unlink(handle.name)

        elapsed, events = run_once(csr, tracer)
        cleanup()
        times.append(elapsed)
    median = statistics.median(times)
    return {
        "mode": mode,
        "median_s": median,
        "events": events,
        "events_per_s": events / median if median else 0.0,
    }


def collect(quick: bool) -> dict:
    """Run the full mode grid and return the report (no file writes)."""
    csr = build_csr(quick)
    repeats = 3 if quick else 5
    rows = [measure(csr, mode, repeats) for mode in MODES]
    off = rows[0]["events_per_s"]
    for row in rows:
        row["relative_throughput"] = row["events_per_s"] / off if off else 0.0
    return {
        "quick": quick,
        "graph": {
            "num_vertices": csr.num_vertices,
            "num_edges": csr.num_edges,
        },
        "repeats": repeats,
        "rows": rows,
    }


def main() -> int:
    report = collect(quick_mode())
    print(f"{'mode':>8} {'median s':>10} {'events/s':>14} {'vs off':>8}")
    for row in report["rows"]:
        print(
            f"{row['mode']:>8} {row['median_s']:>10.4f} "
            f"{row['events_per_s']:>14,.0f} "
            f"{row['relative_throughput']:>7.1%}"
        )

    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
