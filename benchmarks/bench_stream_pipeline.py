"""Streaming update-pipeline throughput: incremental store vs full rebuild.

Drives :class:`JetStreamEngine` over a pre-generated update stream at
several batch sizes and compares the two host graph-store strategies:

* **incremental** — the array-native :class:`DynamicGraph` store splices
  only the touched adjacency runs per snapshot and computes seed events
  with the batched array pipeline (the default configuration);
* **full_rebuild** — ``incremental_snapshots=False`` plus
  ``seed_pipeline="scalar"``: every snapshot is a from-scratch
  iterate-and-sort CSR build and seeds are computed one edge at a time,
  i.e. the pre-incremental behaviour.

Both modes process identical batches and converge to bit-identical states
(the parity suites enforce this); the difference is pure host-side
per-batch overhead. The headline gate — small (≤100-edge) batches on the
≥100k-edge RMAT graph must run ≥5× faster incrementally — captures the
point of the store: per-batch cost must scale with the batch, not with E.

Usable two ways:

* ``python benchmarks/bench_stream_pipeline.py`` — standalone, writes
  ``BENCH_stream.json`` at the repo root. ``REPRO_BENCH_QUICK=1`` shrinks
  the graph and batch counts for CI smoke runs.
* ``repro bench check`` — the ``stream`` suite re-runs :func:`collect`
  and gates batches/s and exact event counts against the committed
  baseline.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.streams import StreamGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_stream.json"

ALGORITHM = "sssp"
STREAM_SEED = 23


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_graph(quick: bool):
    if quick:
        name, n, m = "rmat-2k", 2_048, 12_288
    else:
        name, n, m = "rmat-131k", 16_384, 131_072
    edges = generators.ensure_reachable_core(
        generators.rmat(n, m, seed=17), n, seed=18
    )
    return name, n, edges


def batch_plan(quick: bool):
    """(batch_size, num_batches) grid."""
    if quick:
        return [(1, 12), (100, 6), (1_000, 3)]
    return [(1, 30), (100, 10), (10_000, 3)]


def pregenerate_batches(edges, num_vertices: int, batch_size: int, num_batches: int):
    """Produce the batch sequence once, off the clock, on a scratch graph."""
    scratch = DynamicGraph.from_edges(edges, num_vertices)
    gen = StreamGenerator(scratch, seed=STREAM_SEED)
    return list(gen.stream(batch_size, num_batches))


def run_mode(edges, num_vertices: int, batches, incremental: bool) -> dict:
    graph = DynamicGraph.from_edges(edges, num_vertices)
    graph.incremental_snapshots = incremental
    engine = JetStreamEngine(
        graph,
        make_algorithm(ALGORITHM, source=0),
        policy=DeletePolicy.DAP,
        seed_pipeline="auto" if incremental else "scalar",
    )
    engine.initial_compute()

    latencies = []
    events = 0
    started = time.perf_counter()
    for batch in batches:
        t0 = time.perf_counter()
        result = engine.apply_batch(batch)
        latencies.append(time.perf_counter() - t0)
        events += result.metrics.events_processed
    elapsed = time.perf_counter() - started
    return {
        "wall_clock_s": elapsed,
        "batches_per_s": len(batches) / elapsed if elapsed > 0 else float("inf"),
        "per_batch_ms": {
            "median": statistics.median(latencies) * 1e3,
            "max": max(latencies) * 1e3,
        },
        "events_processed": int(events),
        "store": graph.store_stats(),
    }


def collect(quick: bool) -> dict:
    graph_name, num_vertices, edges = build_graph(quick)
    rows = []
    for batch_size, num_batches in batch_plan(quick):
        batches = pregenerate_batches(edges, num_vertices, batch_size, num_batches)
        incremental = run_mode(edges, num_vertices, batches, incremental=True)
        full = run_mode(edges, num_vertices, batches, incremental=False)
        if incremental["events_processed"] != full["events_processed"]:
            raise AssertionError(
                f"batch_size={batch_size}: store modes processed different "
                f"event counts ({incremental['events_processed']} vs "
                f"{full['events_processed']}) — pipeline parity broken"
            )
        speedup = (
            full["per_batch_ms"]["median"] / incremental["per_batch_ms"]["median"]
            if incremental["per_batch_ms"]["median"] > 0
            else float("inf")
        )
        rows.append(
            {
                "batch_size": batch_size,
                "num_batches": num_batches,
                "incremental": incremental,
                "full_rebuild": full,
                "speedup": speedup,
            }
        )
        print(
            f"batch {batch_size:>6}: incremental "
            f"{incremental['per_batch_ms']['median']:9.2f} ms/batch  "
            f"full-rebuild {full['per_batch_ms']['median']:9.2f} ms/batch  "
            f"speedup {speedup:6.2f}x"
        )
    return {
        "quick": quick,
        "graph": {
            "name": graph_name,
            "num_vertices": num_vertices,
            "num_edges": len(edges),
        },
        "algorithm": ALGORITHM,
        "results": rows,
    }


def main() -> int:
    quick = quick_mode()
    report = collect(quick)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[saved to {OUTPUT_PATH}]")
    if not quick:
        failed = [
            r
            for r in report["results"]
            if r["batch_size"] <= 100 and r["speedup"] < 5.0
        ]
        for row in failed:
            print(
                f"WARNING: batch {row['batch_size']} incremental speedup "
                f"{row['speedup']:.2f}x below the 5x gate",
                file=sys.stderr,
            )
        if failed:
            return 1
    return 0


def test_stream_pipeline_speedup(benchmark):
    """pytest-benchmark entry: quick grid, incremental must not be slower."""
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    report = benchmark.pedantic(lambda: collect(True), rounds=1, iterations=1)
    for row in report["results"]:
        assert row["speedup"] > 1.0, (
            f"batch {row['batch_size']}: incremental store slower than "
            "full rebuild"
        )
    benchmark.extra_info["speedups"] = {
        str(r["batch_size"]): round(r["speedup"], 2) for r in report["results"]
    }


if __name__ == "__main__":
    sys.exit(main())
