"""Microbenchmarks of the core machinery (real repeated timings).

Unlike the table/figure benches (single deterministic model evaluations),
these measure the Python implementation's own throughput: queue insertion
and coalescing, static convergence, and incremental batch application.
"""

import pytest

from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.core.events import Event
from repro.core.metrics import RoundWork
from repro.core.policies import DeletePolicy
from repro.core.queue import CoalescingQueue
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.streams import StreamGenerator


@pytest.fixture(scope="module")
def medium_graph_edges():
    edges = generators.rmat(2048, 12288, seed=17)
    return generators.ensure_reachable_core(edges, 2048, seed=18)


def test_queue_insert_throughput(benchmark):
    algorithm = make_algorithm("sssp", source=0)
    queue = CoalescingQueue(algorithm, AcceleratorConfig(), DeletePolicy.DAP, 4096)
    events = [Event(v % 4096, float(v % 97), 0, v % 64) for v in range(10_000)]

    def insert_all():
        work = RoundWork()
        for event in events:
            queue.insert(event, work)
        queue.drain_round(work)

    benchmark(insert_all)


def test_queue_coalesce_heavy(benchmark):
    """All events target 16 vertices — worst-case coalescing pressure."""
    algorithm = make_algorithm("sssp", source=0)
    queue = CoalescingQueue(algorithm, AcceleratorConfig(), DeletePolicy.DAP, 64)
    events = [Event(v % 16, float(v % 97), 0, v % 8) for v in range(10_000)]

    def insert_all():
        work = RoundWork()
        for event in events:
            queue.insert(event, work)
        queue.drain_round(work)

    benchmark(insert_all)


def test_static_sssp_convergence(benchmark, medium_graph_edges):
    graph = DynamicGraph.from_edges(medium_graph_edges, 2048)
    csr = graph.snapshot()

    def converge():
        return GraphPulseEngine(make_algorithm("sssp", source=0)).compute(csr)

    result = benchmark(converge)
    assert result.metrics.events_processed > 0


def test_incremental_batch_sssp(benchmark, medium_graph_edges):
    def run_batch():
        graph = DynamicGraph.from_edges(medium_graph_edges, 2048)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=19)
        return engine.apply_batch(stream.next_batch(64))

    result = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    assert result.graph_version > 0


def test_incremental_batch_pagerank(benchmark, medium_graph_edges):
    def run_batch():
        graph = DynamicGraph.from_edges(medium_graph_edges, 2048)
        engine = JetStreamEngine(graph, make_algorithm("pagerank", tolerance=1e-4))
        engine.initial_compute()
        stream = StreamGenerator(graph, seed=20)
        return engine.apply_batch(stream.next_batch(64))

    result = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    assert result.metrics.events_processed > 0
