"""Table 2 bench: build every dataset stand-in and report its scale."""

from repro.experiments import table2

from conftest import save_result


def test_table2_datasets(benchmark, results_dir):
    rows = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    rendering = table2.render(rows)
    save_result(results_dir, "table2_datasets", rendering)
    assert len(rows) == 5
    for row in rows:
        benchmark.extra_info[row["graph"]] = row["standin_edges"]
