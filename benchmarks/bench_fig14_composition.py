"""Fig. 14 bench: batch-composition sensitivity on LiveJournal.

Paper shape: for selective algorithms, deletion-only batches cost several
times more than insertion-only ones (recovery phase + reevaluation of the
impacted set); KickStarter shows "no concrete dependence" on composition;
accumulative algorithms are insensitive (both update kinds are events).
"""

from repro.experiments import fig14

from conftest import quick_mode, save_result


def test_fig14_composition_sensitivity(benchmark, results_dir):
    kwargs = {
        "algorithms": ["sssp"] if quick_mode() else None,
        "include_accumulative_check": not quick_mode(),
    }
    curves = benchmark.pedantic(fig14.run, kwargs=kwargs, rounds=1, iterations=1)
    rendering = fig14.render(curves)
    save_result(results_dir, "fig14_composition", rendering)

    for curve in curves:
        if curve.system != "jetstream":
            continue
        insertion_only = curve.points[1.0]
        deletion_only = curve.points[0.0]
        if curve.algorithm in ("sssp", "cc"):
            assert deletion_only > insertion_only, (
                "deletions must be the expensive direction for selective "
                f"algorithms ({curve.algorithm})"
            )
            benchmark.extra_info[f"{curve.algorithm}_del_over_ins"] = round(
                deletion_only / insertion_only, 2
            )
        else:
            # Accumulative: composition-insensitive (within ~3x).
            ratio = deletion_only / max(1e-12, insertion_only)
            assert 1 / 3 < ratio < 3.0
            benchmark.extra_info[f"{curve.algorithm}_del_over_ins"] = round(ratio, 2)
