"""Fig. 9 bench: vertex/edge accesses of JetStream normalized to GraphPulse.

Paper shape: JetStream needs at most ~54% (down to 3%) of GraphPulse's
vertex accesses and under ~30% of its edge work.
"""

from repro.experiments import fig9

from conftest import bench_algorithms, bench_graphs, save_result


def test_fig9_access_ratios(benchmark, results_dir):
    ratios = benchmark.pedantic(
        fig9.run,
        kwargs={"graphs": bench_graphs(), "algorithms": bench_algorithms()},
        rounds=1,
        iterations=1,
    )
    rendering = fig9.render(ratios)
    save_result(results_dir, "fig9_access_ratio", rendering)

    assert all(r.vertex_ratio < 1.0 for r in ratios), "JS must touch fewer vertices"
    mean_vertex = sum(r.vertex_ratio for r in ratios) / len(ratios)
    assert mean_vertex < 0.6, "paper caps vertex access ratio at 0.54"
    benchmark.extra_info["mean_vertex_ratio"] = round(mean_vertex, 4)
    benchmark.extra_info["max_vertex_ratio"] = round(
        max(r.vertex_ratio for r in ratios), 4
    )
