"""Scalar vs vectorized engine wall-clock comparison.

Runs static convergence with both event substrates on generated RMAT
(power-law) and uniform (Erdős–Rényi) graphs across all six algorithms,
and records wall-clock plus events/s in a machine-readable
``BENCH_engine.json`` at the repo root so the perf trajectory is tracked
across PRs. The headline row — PageRank on a ≥100k-edge RMAT graph — is
the ISSUE acceptance gate (≥5× speedup).

Usable two ways:

* ``python benchmarks/bench_vector_engine.py`` — standalone, writes
  ``BENCH_engine.json`` and prints a table. ``REPRO_BENCH_QUICK=1``
  shrinks the grid (small graphs, two algorithms) for CI smoke runs.
* ``pytest benchmarks/bench_vector_engine.py`` — the same comparison as
  a pytest-benchmark test (quick grid unless overridden).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import make_algorithm
from repro.core.engine import GraphPulseEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph, build_symmetric_graph

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"

ALGORITHMS = ["sssp", "bfs", "cc", "sswp", "pagerank", "adsorption"]


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_graphs(quick: bool):
    """(name, DynamicGraph) grid: one power-law, one uniform."""
    if quick:
        shapes = [("rmat-2k", generators.rmat, 2_048, 12_288),
                  ("uniform-2k", generators.erdos_renyi, 2_048, 12_288)]
    else:
        shapes = [("rmat-131k", generators.rmat, 16_384, 131_072),
                  ("uniform-131k", generators.erdos_renyi, 16_384, 131_072)]
    graphs = []
    for name, gen, n, m in shapes:
        edges = generators.ensure_reachable_core(gen(n, m, seed=17), n, seed=18)
        graphs.append((name, len(edges), DynamicGraph.from_edges(edges, n)))
    return graphs


def make_benchmark_algorithm(name: str):
    if name == "pagerank":
        return make_algorithm(name, tolerance=1e-4)
    if name == "adsorption":
        return make_algorithm(name, tolerance=1e-4)
    return make_algorithm(name, source=0)


def run_once(name: str, graph: DynamicGraph, engine_mode: str):
    algorithm = make_benchmark_algorithm(name)
    if algorithm.needs_symmetric:
        graph = build_symmetric_graph(
            graph.snapshot().edges(), graph.num_vertices, on_conflict="silent"
        )
    csr = graph.snapshot()
    engine = GraphPulseEngine(algorithm, engine=engine_mode)
    started = time.perf_counter()
    result = engine.compute(csr)
    elapsed = time.perf_counter() - started
    events = result.metrics.events_processed
    return {
        "wall_clock_s": elapsed,
        "events_processed": events,
        "events_per_s": events / elapsed if elapsed > 0 else float("inf"),
    }


def run_grid(quick: bool) -> dict:
    graphs = build_graphs(quick)
    algorithms = ["sssp", "pagerank"] if quick else ALGORITHMS
    rows = []
    for graph_name, num_edges, graph in graphs:
        for algo in algorithms:
            scalar = run_once(algo, graph, "scalar")
            vector = run_once(algo, graph, "vectorized")
            if scalar["events_processed"] != vector["events_processed"]:
                raise AssertionError(
                    f"{graph_name}/{algo}: engines processed different event "
                    f"counts ({scalar['events_processed']} vs "
                    f"{vector['events_processed']}) — parity broken"
                )
            rows.append({
                "graph": graph_name,
                "num_edges": num_edges,
                "algorithm": algo,
                "scalar": scalar,
                "vectorized": vector,
                "speedup": scalar["wall_clock_s"] / vector["wall_clock_s"],
            })
            print(
                f"{graph_name:>12} {algo:>10}: "
                f"scalar {scalar['wall_clock_s']:8.3f}s  "
                f"vectorized {vector['wall_clock_s']:8.3f}s  "
                f"speedup {rows[-1]['speedup']:6.2f}x  "
                f"({vector['events_per_s']:,.0f} ev/s)"
            )
    return {"quick": quick, "results": rows}


def main() -> int:
    quick = quick_mode()
    report = run_grid(quick)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[saved to {OUTPUT_PATH}]")
    if not quick:
        headline = [
            r for r in report["results"]
            if r["algorithm"] == "pagerank" and r["graph"].startswith("rmat")
            and r["num_edges"] >= 100_000
        ]
        if headline and headline[0]["speedup"] < 5.0:
            print(
                f"WARNING: headline RMAT PageRank speedup "
                f"{headline[0]['speedup']:.2f}x below the 5x gate",
                file=sys.stderr,
            )
            return 1
    return 0


def test_vector_engine_speedup(benchmark):
    """pytest-benchmark entry: quick-grid comparison, asserts speedup > 1."""
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    report = benchmark.pedantic(lambda: run_grid(True), rounds=1, iterations=1)
    for row in report["results"]:
        assert row["speedup"] > 1.0, (
            f"{row['graph']}/{row['algorithm']}: vectorized slower than scalar"
        )
    benchmark.extra_info["speedups"] = {
        f"{r['graph']}/{r['algorithm']}": round(r["speedup"], 2)
        for r in report["results"]
    }


if __name__ == "__main__":
    sys.exit(main())
