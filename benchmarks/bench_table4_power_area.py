"""Table 4 bench: accelerator power/area budgets and JetStream deltas."""

import pytest

from repro.experiments import table4

from conftest import save_result


def test_table4_power_area(benchmark, results_dir):
    rows = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    rendering = table4.render(rows)
    save_result(results_dir, "table4_power_area", rendering)

    lookup = {r["component"]: r for r in rows}
    assert lookup["Total"]["total_mw"] == pytest.approx(8926, rel=0.02)
    assert lookup["Total"]["area_mm2"] == pytest.approx(199, rel=0.02)
    assert abs(lookup["Total"]["total_delta"]) < 0.02
    assert 0.0 < lookup["Total"]["area_delta"] < 0.05
    benchmark.extra_info["total_mw"] = round(lookup["Total"]["total_mw"])
    benchmark.extra_info["total_area_mm2"] = round(lookup["Total"]["area_mm2"], 1)
