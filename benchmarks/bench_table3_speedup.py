"""Table 3 bench: per-query execution time and speedups vs GP/KS/GB.

The headline result: JetStream beats cold-start GraphPulse by ~13x on
average (3-74x) and the software frameworks by ~18x, with every system
converging to identical query results (checked inside the harness).
"""

from repro.experiments import table3
from repro.experiments.report import geomean

from conftest import bench_algorithms, bench_graphs, save_result


def test_table3_speedups(benchmark, results_dir):
    rows = benchmark.pedantic(
        table3.run,
        kwargs={"graphs": bench_graphs(), "algorithms": bench_algorithms()},
        rounds=1,
        iterations=1,
    )
    rendering = table3.render(rows)
    save_result(results_dir, "table3_speedup", rendering)

    # Shape assertions: JetStream wins against both baselines on average.
    gp_gmeans = [row.gmean_gp for row in rows]
    sw_gmeans = [row.gmean_sw for row in rows]
    assert geomean(gp_gmeans) > 2.0, "JetStream should clearly beat cold start"
    assert geomean(sw_gmeans) > 2.0, "JetStream should clearly beat software"
    for row in rows:
        benchmark.extra_info[f"{row.algorithm}_vs_gp"] = round(row.gmean_gp, 2)
        benchmark.extra_info[f"{row.algorithm}_vs_sw"] = round(row.gmean_sw, 2)
