"""Many-client load test of the ``repro serve`` streaming service.

Drives a real :class:`~repro.serve.ServeServer` (loopback HTTP, one
session, SSSP/DAP on an RMAT graph) with the three traffic shapes the
service interleaves, and records the sustained rates the ROADMAP's
"millions of users" direction is tracked by:

* **serve/mixed_ingest** — several ingest clients stream pre-generated
  insert batches through ``POST /ingest`` *while* read clients hammer
  ``GET /read``. Throughput is sustained batches/s across all clients;
  the read side of the same phase reports p50/p99 latency, served from
  published immutable snapshots (reads never wait on an applying batch).
* **serve/express** — one client streams single-edge heavy-weight
  inserts through ``POST /update`` (always classified safe): sustained
  update ops/s including HTTP + queue overhead.
* **serve/read** — the mixed phase's read side as its own gated row:
  reads/s across the read clients.

The regression-gate ``events`` column uses exact request counts (update
records applied, express updates, reads served) — all fixed by the
workload configuration, never by timing — so the determinism check
stays meaningful even though client interleaving varies run to run.

Usable two ways:

* ``python benchmarks/bench_serve.py`` — standalone, writes
  ``BENCH_serve.json`` at the repo root. ``REPRO_BENCH_QUICK=1`` shrinks
  the graph and request counts for CI smoke runs.
* ``repro bench check --suite serve`` — re-runs :func:`collect` and
  gates rates and exact request counts against the committed baseline.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import urllib.request

import numpy as np

from repro.graph import generators
from repro.serve import ServeApp, ServeServer

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serve.json"

ALGORITHM = "sssp"
SEED = 29
#: Far above any converged SSSP distance: inserts classify safe and
#: batches converge in O(batch) work, keeping the load shape stable.
HEAVY_WEIGHT = 1.0e9


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def config(quick: bool) -> dict:
    if quick:
        return {
            "graph": "rmat-2k",
            "num_vertices": 2_048,
            "num_edges": 12_288,
            "ingest_clients": 2,
            "batches_per_client": 10,
            "batch_size": 20,
            "read_clients": 2,
            "reads_per_client": 50,
            "express_updates": 100,
        }
    return {
        "graph": "rmat-131k",
        "num_vertices": 16_384,
        "num_edges": 131_072,
        "ingest_clients": 4,
        "batches_per_client": 25,
        "batch_size": 50,
        "read_clients": 4,
        "reads_per_client": 300,
        "express_updates": 1_000,
    }


def build_edges(cfg: dict):
    return generators.ensure_reachable_core(
        generators.rmat(cfg["num_vertices"], cfg["num_edges"], seed=17),
        cfg["num_vertices"],
        seed=18,
    )


def fresh_edge_batches(cfg: dict, base_edges, client: int, count: int, size: int):
    """Deterministic per-client insert batches of globally fresh edges.

    Client ``c`` draws source vertices ``u ≡ c (mod clients)`` so no two
    clients can generate the same ``(u, v)`` pair, and each client tracks
    what it already produced — every generated edge is fresh for the
    whole run regardless of apply interleaving.
    """
    existing = {(int(u), int(v)) for u, v, _ in base_edges}
    rng = np.random.default_rng(SEED + client)
    n, clients = cfg["num_vertices"], cfg["ingest_clients"]
    batches = []
    for _ in range(count):
        batch = []
        while len(batch) < size:
            u = int(rng.integers(0, n // clients)) * clients + client
            if u >= n:
                continue
            v = int(rng.integers(0, n))
            if u == v or (u, v) in existing:
                continue
            existing.add((u, v))
            batch.append([u, v, HEAVY_WEIGHT])
        batches.append(batch)
    return batches


def fresh_single_updates(cfg: dict, base_edges, count: int):
    """Fresh heavy single-edge inserts for the express workload."""
    existing = {(int(u), int(v)) for u, v, _ in base_edges}
    rng = np.random.default_rng(SEED + 1000)
    n = cfg["num_vertices"]
    updates = []
    while len(updates) < count:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or (u, v) in existing:
            continue
        existing.add((u, v))
        updates.append({"u": u, "v": v, "w": HEAVY_WEIGHT, "op": "insert"})
    return updates


class Client:
    """Minimal JSON-over-HTTP client against the loopback server."""

    def __init__(self, base_url: str):
        self.base = base_url

    def post(self, path: str, body: dict) -> dict:
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(self.base + path, data=data, method="POST")
        request.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read().decode("utf-8"))

    def get(self, path: str) -> dict:
        with urllib.request.urlopen(self.base + path, timeout=120) as response:
            return json.loads(response.read().decode("utf-8"))


def run_mixed_phase(base_url: str, cfg: dict, batches_by_client) -> dict:
    """Concurrent ingest + read clients; returns both sides' rates."""
    read_latencies = [[] for _ in range(cfg["read_clients"])]
    errors = []

    def ingest_worker(client_id: int):
        client = Client(base_url)
        try:
            for batch in batches_by_client[client_id]:
                client.post("/sessions/bench/ingest", {"insertions": batch})
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(repr(exc))

    def read_worker(client_id: int):
        client = Client(base_url)
        try:
            for _ in range(cfg["reads_per_client"]):
                t0 = time.perf_counter()
                client.get("/sessions/bench/read?vertices=0")
                read_latencies[client_id].append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=ingest_worker, args=(c,))
        for c in range(cfg["ingest_clients"])
    ] + [
        threading.Thread(target=read_worker, args=(c,))
        for c in range(cfg["read_clients"])
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"load clients failed: {errors[:3]}")

    total_batches = cfg["ingest_clients"] * cfg["batches_per_client"]
    total_records = total_batches * cfg["batch_size"]
    latencies = sorted(lat for per in read_latencies for lat in per)
    reads_total = len(latencies)
    return {
        "elapsed_s": elapsed,
        "batches": total_batches,
        "records_applied": total_records,
        "batches_per_s": total_batches / elapsed,
        "reads_total": reads_total,
        "reads_per_s": reads_total / elapsed,
        "read_p50_us": statistics.median(latencies) * 1e6,
        "read_p99_us": latencies[int(0.99 * (reads_total - 1))] * 1e6,
        "read_max_us": latencies[-1] * 1e6,
    }


def run_express_phase(base_url: str, updates) -> dict:
    client = Client(base_url)
    safe = 0
    t0 = time.perf_counter()
    for update in updates:
        reply = client.post("/sessions/bench/update", update)
        safe += int(reply["safe"])
    elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": elapsed,
        "updates": len(updates),
        "updates_per_s": len(updates) / elapsed,
        "safe": safe,
    }


def collect(quick: bool) -> dict:
    cfg = config(quick)
    base_edges = build_edges(cfg)
    app = ServeApp(queue_bound=256)
    server = ServeServer(app, port=0).start()
    try:
        app.create_session(
            [(int(u), int(v), float(w)) for u, v, w in base_edges],
            ALGORITHM,
            name="bench",
            source=0,
        )
        batches_by_client = [
            fresh_edge_batches(
                cfg, base_edges, c, cfg["batches_per_client"], cfg["batch_size"]
            )
            for c in range(cfg["ingest_clients"])
        ]
        mixed = run_mixed_phase(server.url, cfg, batches_by_client)
        express = run_express_phase(
            server.url,
            fresh_single_updates(cfg, base_edges, cfg["express_updates"]),
        )
        stats = Client(server.url).get("/sessions/bench/stats")
    finally:
        server.stop()
    return {
        "format": "repro-serve-bench",
        "version": 1,
        "quick": quick,
        "config": cfg,
        "results": {"mixed": mixed, "express": express},
        "final_stats": stats,
    }


def render(report: dict) -> str:
    mixed = report["results"]["mixed"]
    express = report["results"]["express"]
    cfg = report["config"]
    lines = [
        f"serve load test — {cfg['graph']}, {cfg['ingest_clients']} ingest + "
        f"{cfg['read_clients']} read clients",
        f"  mixed ingest : {mixed['batches_per_s']:>8.1f} batches/s "
        f"({mixed['records_applied']} records in {mixed['elapsed_s']:.2f} s)",
        f"  mixed reads  : {mixed['reads_per_s']:>8.1f} reads/s   "
        f"p50 {mixed['read_p50_us']:.0f} us  p99 {mixed['read_p99_us']:.0f} us",
        f"  express      : {express['updates_per_s']:>8.1f} updates/s "
        f"({express['safe']}/{express['updates']} safe)",
    ]
    return "\n".join(lines)


def main() -> int:
    quick = quick_mode()
    report = collect(quick)
    print(render(report))
    if not quick:
        OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
