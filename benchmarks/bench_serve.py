"""Many-client load test of the ``repro serve`` streaming service.

Drives a real :class:`~repro.serve.ServeServer` (loopback HTTP, one
session, SSSP/DAP on an RMAT graph) with the three traffic shapes the
service interleaves, and records the sustained rates the ROADMAP's
"millions of users" direction is tracked by:

* **serve/mixed_ingest** — several ingest clients stream pre-generated
  insert batches through ``POST /ingest`` *while* read clients hammer
  ``GET /read``. Throughput is sustained batches/s across all clients;
  the read side of the same phase reports p50/p99 latency, served from
  published immutable snapshots (reads never wait on an applying batch).
* **serve/express** — one client streams single-edge heavy-weight
  inserts through ``POST /update`` (always classified safe): sustained
  update ops/s including HTTP + queue overhead.
* **serve/read** — the mixed phase's read side as its own gated row:
  reads/s across the read clients.
* **serve/mixed_traced** — the mixed phase again with request tracing
  armed (access log + stage marks on every request): the gated row is
  the traced ingest rate, so a tracing-overhead regression trips the
  gate like any other slowdown. The phase also feeds its access log
  through the ``repro trace requests`` analyzer and records the
  slow-decile stage-attribution share and the server-side read p99.

The regression-gate ``events`` column uses exact request counts (update
records applied, express updates, reads served) — all fixed by the
workload configuration, never by timing — so the determinism check
stays meaningful even though client interleaving varies run to run.

Usable two ways:

* ``python benchmarks/bench_serve.py`` — standalone, writes
  ``BENCH_serve.json`` at the repo root. ``REPRO_BENCH_QUICK=1`` shrinks
  the graph and request counts for CI smoke runs.
* ``repro bench check --suite serve`` — re-runs :func:`collect` and
  gates rates and exact request counts against the committed baseline.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import urllib.request

import numpy as np

from repro.graph import generators
from repro.serve import ServeApp, ServeServer

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serve.json"

ALGORITHM = "sssp"
SEED = 29
#: Far above any converged SSSP distance: inserts classify safe and
#: batches converge in O(batch) work, keeping the load shape stable.
HEAVY_WEIGHT = 1.0e9


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def config(quick: bool) -> dict:
    if quick:
        return {
            "graph": "rmat-2k",
            "num_vertices": 2_048,
            "num_edges": 12_288,
            "ingest_clients": 2,
            "batches_per_client": 10,
            "batch_size": 20,
            "read_clients": 2,
            "reads_per_client": 50,
            "express_updates": 100,
        }
    return {
        "graph": "rmat-131k",
        "num_vertices": 16_384,
        "num_edges": 131_072,
        "ingest_clients": 4,
        "batches_per_client": 25,
        "batch_size": 50,
        "read_clients": 4,
        "reads_per_client": 300,
        "express_updates": 1_000,
    }


def build_edges(cfg: dict):
    return generators.ensure_reachable_core(
        generators.rmat(cfg["num_vertices"], cfg["num_edges"], seed=17),
        cfg["num_vertices"],
        seed=18,
    )


def fresh_edge_batches(cfg: dict, base_edges, client: int, count: int, size: int):
    """Deterministic per-client insert batches of globally fresh edges.

    Client ``c`` draws source vertices ``u ≡ c (mod clients)`` so no two
    clients can generate the same ``(u, v)`` pair, and each client tracks
    what it already produced — every generated edge is fresh for the
    whole run regardless of apply interleaving.
    """
    existing = {(int(u), int(v)) for u, v, _ in base_edges}
    rng = np.random.default_rng(SEED + client)
    n, clients = cfg["num_vertices"], cfg["ingest_clients"]
    batches = []
    for _ in range(count):
        batch = []
        while len(batch) < size:
            u = int(rng.integers(0, n // clients)) * clients + client
            if u >= n:
                continue
            v = int(rng.integers(0, n))
            if u == v or (u, v) in existing:
                continue
            existing.add((u, v))
            batch.append([u, v, HEAVY_WEIGHT])
        batches.append(batch)
    return batches


def fresh_single_updates(cfg: dict, base_edges, count: int):
    """Fresh heavy single-edge inserts for the express workload."""
    existing = {(int(u), int(v)) for u, v, _ in base_edges}
    rng = np.random.default_rng(SEED + 1000)
    n = cfg["num_vertices"]
    updates = []
    while len(updates) < count:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or (u, v) in existing:
            continue
        existing.add((u, v))
        updates.append({"u": u, "v": v, "w": HEAVY_WEIGHT, "op": "insert"})
    return updates


class Client:
    """Minimal JSON-over-HTTP client against the loopback server."""

    def __init__(self, base_url: str):
        self.base = base_url

    def post(self, path: str, body: dict) -> dict:
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(self.base + path, data=data, method="POST")
        request.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read().decode("utf-8"))

    def get(self, path: str) -> dict:
        with urllib.request.urlopen(self.base + path, timeout=120) as response:
            return json.loads(response.read().decode("utf-8"))


def run_mixed_phase(
    base_url: str, cfg: dict, batches_by_client, session: str = "bench"
) -> dict:
    """Concurrent ingest + read clients; returns both sides' rates."""
    read_latencies = [[] for _ in range(cfg["read_clients"])]
    ingest_latencies = [[] for _ in range(cfg["ingest_clients"])]
    errors = []

    def ingest_worker(client_id: int):
        client = Client(base_url)
        try:
            for batch in batches_by_client[client_id]:
                t0 = time.perf_counter()
                client.post(f"/sessions/{session}/ingest", {"insertions": batch})
                ingest_latencies[client_id].append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(repr(exc))

    def read_worker(client_id: int):
        client = Client(base_url)
        try:
            for _ in range(cfg["reads_per_client"]):
                t0 = time.perf_counter()
                client.get(f"/sessions/{session}/read?vertices=0")
                read_latencies[client_id].append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=ingest_worker, args=(c,))
        for c in range(cfg["ingest_clients"])
    ] + [
        threading.Thread(target=read_worker, args=(c,))
        for c in range(cfg["read_clients"])
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"load clients failed: {errors[:3]}")

    total_batches = cfg["ingest_clients"] * cfg["batches_per_client"]
    total_records = total_batches * cfg["batch_size"]
    latencies = sorted(lat for per in read_latencies for lat in per)
    ingests = sorted(lat for per in ingest_latencies for lat in per)
    reads_total = len(latencies)
    return {
        "elapsed_s": elapsed,
        "batches": total_batches,
        "records_applied": total_records,
        "batches_per_s": total_batches / elapsed,
        "reads_total": reads_total,
        "reads_per_s": reads_total / elapsed,
        "read_p50_us": statistics.median(latencies) * 1e6,
        "read_p99_us": latencies[int(0.99 * (reads_total - 1))] * 1e6,
        "read_max_us": latencies[-1] * 1e6,
        "ingest_p50_us": statistics.median(ingests) * 1e6,
        "ingest_p99_us": ingests[int(0.99 * (len(ingests) - 1))] * 1e6,
    }


def run_express_phase(base_url: str, updates) -> dict:
    client = Client(base_url)
    safe = 0
    t0 = time.perf_counter()
    for update in updates:
        reply = client.post("/sessions/bench/update", update)
        safe += int(reply["safe"])
    elapsed = time.perf_counter() - t0
    return {
        "elapsed_s": elapsed,
        "updates": len(updates),
        "updates_per_s": len(updates) / elapsed,
        "safe": safe,
    }


def run_traced_phase(server, cfg: dict, base_edges, untraced: dict) -> dict:
    """The mixed workload again with request tracing armed.

    Runs on its own session (fresh edge pools) with the process-wide
    :data:`REQUEST_LOG` writing a real access log, then feeds that log
    through the ``repro trace requests`` analyzer. Reports the tracing
    overhead vs the untraced mixed phase and how closely the analyzer's
    server-side read p99 reproduces the client-observed one — the two
    acceptance numbers of the request-tracing layer.
    """
    from repro.obs.correlate import analyze_requests
    from repro.obs.reqtrace import REQUEST_LOG

    access_path = REPO_ROOT / "BENCH_serve.access.jsonl.tmp"
    REQUEST_LOG.configure(path=str(access_path), slow_threshold_s=0.050)
    try:
        batches_by_client = [
            fresh_edge_batches(
                cfg, base_edges, c, cfg["batches_per_client"], cfg["batch_size"]
            )
            for c in range(cfg["ingest_clients"])
        ]
        traced = run_mixed_phase(
            server.url, cfg, batches_by_client, session="bench-traced"
        )
        # finish() runs after the response bytes go out: wait for every
        # client-acknowledged request to land in the log before closing.
        expected = (
            cfg["ingest_clients"] * cfg["batches_per_client"]
            + cfg["read_clients"] * cfg["reads_per_client"]
        )
        deadline = time.monotonic() + 5.0
        while (
            REQUEST_LOG.debug_payload()["requests_total"] < expected
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
    finally:
        REQUEST_LOG.reset()  # closes (and flushes) the access log
    analysis = analyze_requests(str(access_path))
    access_path.unlink()

    def route_p99_us(route: str) -> float:
        rows = [r for r in analysis["routes"] if r["route"] == route]
        return rows[0]["p99_ms"] * 1e3 if rows else 0.0

    def ratio(server_us: float, client_us: float) -> float:
        return server_us / client_us if client_us > 0 else 0.0

    server_read_p99 = route_p99_us("read")
    server_ingest_p99 = route_p99_us("ingest")
    traced.update(
        overhead=1.0 - traced["batches_per_s"] / untraced["batches_per_s"],
        analyzer={
            "requests": analysis["requests"],
            "schema_errors": len(analysis["errors"]),
            "attribution": analysis["attribution"],
            "routes": analysis["routes"],
        },
        # Analyzer-reconstructed p99s (server recv→respond) over the
        # client-observed ones. The gap is loopback HTTP + client stack:
        # negligible for multi-ms ingest batches (the acceptance ratio),
        # dominant for microsecond snapshot reads.
        server_read_p99_us=server_read_p99,
        read_p99_ratio=ratio(server_read_p99, traced["read_p99_us"]),
        server_ingest_p99_us=server_ingest_p99,
        ingest_p99_ratio=ratio(server_ingest_p99, traced["ingest_p99_us"]),
    )
    return traced


def collect(quick: bool) -> dict:
    cfg = config(quick)
    base_edges = build_edges(cfg)
    app = ServeApp(queue_bound=256)
    server = ServeServer(app, port=0).start()
    try:
        edges = [(int(u), int(v), float(w)) for u, v, w in base_edges]
        app.create_session(edges, ALGORITHM, name="bench", source=0)
        batches_by_client = [
            fresh_edge_batches(
                cfg, base_edges, c, cfg["batches_per_client"], cfg["batch_size"]
            )
            for c in range(cfg["ingest_clients"])
        ]
        mixed = run_mixed_phase(server.url, cfg, batches_by_client)
        # Back-to-back with the untraced phase (and before the express
        # load perturbs the process) so the overhead number is a fair
        # tracing-on vs tracing-off comparison.
        app.create_session(edges, ALGORITHM, name="bench-traced", source=0)
        traced = run_traced_phase(server, cfg, base_edges, mixed)
        express = run_express_phase(
            server.url,
            fresh_single_updates(cfg, base_edges, cfg["express_updates"]),
        )
        stats = Client(server.url).get("/sessions/bench/stats")
    finally:
        server.stop()
    return {
        "format": "repro-serve-bench",
        "version": 1,
        "quick": quick,
        "config": cfg,
        "results": {"mixed": mixed, "express": express, "mixed_traced": traced},
        "final_stats": stats,
    }


def render(report: dict) -> str:
    mixed = report["results"]["mixed"]
    express = report["results"]["express"]
    cfg = report["config"]
    lines = [
        f"serve load test — {cfg['graph']}, {cfg['ingest_clients']} ingest + "
        f"{cfg['read_clients']} read clients",
        f"  mixed ingest : {mixed['batches_per_s']:>8.1f} batches/s "
        f"({mixed['records_applied']} records in {mixed['elapsed_s']:.2f} s)",
        f"  mixed reads  : {mixed['reads_per_s']:>8.1f} reads/s   "
        f"p50 {mixed['read_p50_us']:.0f} us  p99 {mixed['read_p99_us']:.0f} us",
        f"  express      : {express['updates_per_s']:>8.1f} updates/s "
        f"({express['safe']}/{express['updates']} safe)",
    ]
    traced = report["results"].get("mixed_traced")
    if traced:
        attribution = traced["analyzer"]["attribution"]
        lines.append(
            f"  traced ingest: {traced['batches_per_s']:>8.1f} batches/s "
            f"({traced['overhead'] * 100:+.1f}% vs untraced), "
            f"{traced['analyzer']['requests']} requests logged, "
            f"slow-decile attribution {attribution['min_share'] * 100:.1f}% min"
        )
        lines.append(
            f"  traced p99   : ingest server {traced['server_ingest_p99_us']:.0f} "
            f"vs client {traced['ingest_p99_us']:.0f} us "
            f"(ratio {traced['ingest_p99_ratio']:.2f}); read server "
            f"{traced['server_read_p99_us']:.0f} vs client "
            f"{traced['read_p99_us']:.0f} us (ratio {traced['read_p99_ratio']:.2f})"
        )
    return "\n".join(lines)


def main() -> int:
    quick = quick_mode()
    report = collect(quick)
    print(render(report))
    if not quick:
        OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nreport written to {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
