"""1-engine vs 8-engine sharded execution wall-clock comparison.

Runs static convergence with the single-engine vectorized substrate and
the sharded parallel backend (``engine="sharded"``, Table 1's 8 engines)
on a generated RMAT power-law graph, verifies the results are
*bit-identical* (the tentpole determinism contract), and appends a
``"sharded"`` section to the machine-readable ``BENCH_engine.json`` at
the repo root so the perf trajectory is tracked across PRs.

Usable two ways:

* ``python benchmarks/bench_sharded_engine.py`` — standalone, updates
  ``BENCH_engine.json`` and prints a table. ``REPRO_BENCH_QUICK=1``
  shrinks the graph for CI smoke runs.
* ``pytest benchmarks/bench_sharded_engine.py`` — the same comparison as
  a pytest-benchmark test (quick grid unless overridden).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import make_algorithm
from repro.core.engine import GraphPulseEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"

ALGORITHMS = ["sssp", "pagerank"]


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_graph(quick: bool):
    if quick:
        name, n, m = "rmat-2k", 2_048, 12_288
    else:
        name, n, m = "rmat-131k", 16_384, 131_072
    edges = generators.ensure_reachable_core(
        generators.rmat(n, m, seed=17), n, seed=18
    )
    return name, len(edges), DynamicGraph.from_edges(edges, n)


def run_once(name: str, csr, engine_mode: str, num_engines: int = 8):
    algorithm = make_algorithm(name, source=0)
    engine = GraphPulseEngine(
        algorithm, engine=engine_mode, num_engines=num_engines
    )
    started = time.perf_counter()
    result = engine.compute(csr)
    elapsed = time.perf_counter() - started
    events = result.metrics.events_processed
    return result, {
        "wall_clock_s": elapsed,
        "events_processed": events,
        "events_per_s": events / elapsed if elapsed > 0 else float("inf"),
    }


def run_grid(quick: bool) -> dict:
    graph_name, num_edges, graph = build_graph(quick)
    csr = graph.snapshot()
    rows = []
    for algo in ALGORITHMS:
        base_result, one = run_once(algo, csr, "vectorized")
        shard_result, eight = run_once(algo, csr, "sharded", num_engines=8)
        if base_result.states.tobytes() != shard_result.states.tobytes():
            raise AssertionError(
                f"{graph_name}/{algo}: sharded states diverge from the "
                "single-engine vectorized oracle — determinism broken"
            )
        if base_result.metrics.to_rows() != shard_result.metrics.to_rows():
            raise AssertionError(
                f"{graph_name}/{algo}: sharded per-round work vectors "
                "diverge — determinism broken"
            )
        noc = shard_result.metrics.noc_summary()
        rows.append({
            "graph": graph_name,
            "num_edges": num_edges,
            "algorithm": algo,
            "engines_1": one,
            "engines_8": eight,
            "speedup_8_over_1": one["wall_clock_s"] / eight["wall_clock_s"],
            "noc_events_remote": noc["events_remote"],
            "noc_flits": noc["flits"],
        })
        print(
            f"{graph_name:>12} {algo:>10}: "
            f"1 engine {one['wall_clock_s']:8.3f}s  "
            f"8 engines {eight['wall_clock_s']:8.3f}s  "
            f"ratio {rows[-1]['speedup_8_over_1']:6.2f}x  "
            f"(remote events {noc['events_remote']:,})"
        )
    return {"quick": quick, "results": rows}


def main() -> int:
    quick = quick_mode()
    report = run_grid(quick)
    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
    existing["sharded"] = report
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"[appended 'sharded' section to {OUTPUT_PATH}]")
    return 0


def test_sharded_engine_parity(benchmark):
    """pytest-benchmark entry: quick grid; parity is asserted inside."""
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    report = benchmark.pedantic(lambda: run_grid(True), rounds=1, iterations=1)
    benchmark.extra_info["ratios"] = {
        f"{r['graph']}/{r['algorithm']}": round(r["speedup_8_over_1"], 2)
        for r in report["results"]
    }


if __name__ == "__main__":
    sys.exit(main())
