"""Threads-vs-processes sharded execution wall-clock comparison.

Runs static convergence with the sharded parallel backend
(``engine="sharded"``) across ``backend={thread,process}`` ×
``num_engines={1,2,8}`` on a generated RMAT power-law graph, verifies
every cell is *bit-identical* to the single-engine vectorized oracle
(the tentpole determinism contract), and records the grid both as the
standalone ``BENCH_sharded.json`` and as a ``"sharded"`` section of
``BENCH_engine.json`` at the repo root so the perf trajectory is
tracked across PRs.

Usable two ways:

* ``python benchmarks/bench_sharded_engine.py`` — standalone, writes
  both report files and prints a table. ``REPRO_BENCH_QUICK=1``
  shrinks the graph for CI smoke runs.
* ``pytest benchmarks/bench_sharded_engine.py`` — the same comparison
  as a pytest-benchmark test (quick grid unless overridden).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import make_algorithm
from repro.core import parallel
from repro.core.engine import GraphPulseEngine
from repro.core.shm import leaked_system_segments
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph

REPO_ROOT = Path(__file__).resolve().parent.parent
ENGINE_OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"
SHARDED_OUTPUT_PATH = REPO_ROOT / "BENCH_sharded.json"

BACKENDS = ["thread", "process"]
ENGINE_COUNTS = [1, 2, 8]


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_graph(quick: bool):
    if quick:
        name, n, m = "rmat-2k", 2_048, 12_288
    else:
        name, n, m = "rmat-131k", 16_384, 131_072
    edges = generators.ensure_reachable_core(
        generators.rmat(n, m, seed=17), n, seed=18
    )
    return name, len(edges), DynamicGraph.from_edges(edges, n)


def run_once(name: str, csr, engine_mode: str, **engine_kwargs):
    algorithm = make_algorithm(name, source=0)
    engine = GraphPulseEngine(algorithm, engine=engine_mode, **engine_kwargs)
    try:
        started = time.perf_counter()
        result = engine.compute(csr)
        elapsed = time.perf_counter() - started
    finally:
        if engine_mode == "sharded":
            engine.close()
    events = result.metrics.events_processed
    return result, {
        "wall_clock_s": elapsed,
        "events_processed": events,
        "events_per_s": events / elapsed if elapsed > 0 else float("inf"),
    }


def run_grid(quick: bool) -> dict:
    """Benchmark thread vs process backends against the vectorized oracle.

    One row per (graph, algorithm, backend, num_engines). Every cell must
    match the oracle bit-for-bit — the gate's exact event-count check then
    keeps that determinism pinned across PRs. Speed is recorded, not
    asserted: the process backend's advantage is real parallelism across
    cores, which single-core CI runners cannot express.
    """
    graph_name, num_edges, graph = build_graph(quick)
    csr = graph.snapshot()
    # Spawn worker pools up front so the first timed process cell measures
    # steady-state transport, not one-off interpreter startup (the warm
    # cache then revives these for every cell of the same width).
    for engines in ENGINE_COUNTS:
        executor = parallel.acquire_shard_executor(
            "process", parallel._default_workers(engines)
        )
        parallel.release_shard_executor(executor)
    algorithms = ["sssp", "pagerank"] if quick else ["pagerank"]
    rows = []
    for algo in algorithms:
        oracle, oracle_sample = run_once(algo, csr, "vectorized")
        oracle_bytes = oracle.states.tobytes()
        oracle_rows = oracle.metrics.to_rows()
        by_cell = {}
        for backend in BACKENDS:
            for engines in ENGINE_COUNTS:
                result, sample = run_once(
                    algo,
                    csr,
                    "sharded",
                    num_engines=engines,
                    backend=backend,
                )
                if result.states.tobytes() != oracle_bytes:
                    raise AssertionError(
                        f"{graph_name}/{algo}/{backend}/e{engines}: states "
                        "diverge from the vectorized oracle — determinism broken"
                    )
                if result.metrics.to_rows() != oracle_rows:
                    raise AssertionError(
                        f"{graph_name}/{algo}/{backend}/e{engines}: per-round "
                        "work vectors diverge — determinism broken"
                    )
                by_cell[(backend, engines)] = sample
                rows.append({
                    "graph": graph_name,
                    "num_edges": num_edges,
                    "algorithm": algo,
                    "backend": backend,
                    "num_engines": engines,
                    "oracle_wall_clock_s": oracle_sample["wall_clock_s"],
                    **sample,
                })
        for engines in ENGINE_COUNTS:
            ratio = (
                by_cell[("thread", engines)]["wall_clock_s"]
                / by_cell[("process", engines)]["wall_clock_s"]
            )
            print(
                f"{graph_name:>12} {algo:>10} e{engines}: "
                f"thread {by_cell[('thread', engines)]['wall_clock_s']:8.3f}s  "
                f"process {by_cell[('process', engines)]['wall_clock_s']:8.3f}s  "
                f"thread/process {ratio:6.2f}x"
            )
    leaks = leaked_system_segments()
    if leaks:
        raise AssertionError(f"leaked shared-memory segments: {leaks}")
    return {"quick": quick, "results": rows}


def main() -> int:
    quick = quick_mode()
    report = run_grid(quick)
    SHARDED_OUTPUT_PATH.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"[wrote {SHARDED_OUTPUT_PATH}]")
    existing = {}
    if ENGINE_OUTPUT_PATH.exists():
        existing = json.loads(ENGINE_OUTPUT_PATH.read_text(encoding="utf-8"))
    existing["sharded"] = report
    ENGINE_OUTPUT_PATH.write_text(
        json.dumps(existing, indent=2) + "\n", encoding="utf-8"
    )
    print(f"[appended 'sharded' section to {ENGINE_OUTPUT_PATH}]")
    return 0


def test_sharded_engine_parity(benchmark):
    """pytest-benchmark entry: quick grid; parity is asserted inside."""
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    report = benchmark.pedantic(lambda: run_grid(True), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = {
        f"{r['graph']}/{r['algorithm']}/{r['backend']}/e{r['num_engines']}":
            round(r["events_per_s"], 1)
        for r in report["results"]
    }


if __name__ == "__main__":
    sys.exit(main())
