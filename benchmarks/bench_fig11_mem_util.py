"""Fig. 11 bench: off-chip memory transfer utilization, JS vs GraphPulse.

Paper shape: JetStream's sparse incremental events cannot harvest spatial
locality the way GraphPulse's dense rounds do, so its used/transferred
ratio is substantially lower (the paper measures less than a third).
"""

from repro.experiments import fig11

from conftest import bench_algorithms, bench_graphs, save_result


def test_fig11_memory_utilization(benchmark, results_dir):
    pairs = benchmark.pedantic(
        fig11.run,
        kwargs={"graphs": bench_graphs(), "algorithms": bench_algorithms()},
        rounds=1,
        iterations=1,
    )
    rendering = fig11.render(pairs)
    save_result(results_dir, "fig11_mem_util", rendering)

    assert all(0.0 < p.jetstream <= 1.0 for p in pairs)
    assert all(0.0 < p.graphpulse <= 1.0 for p in pairs)
    lower = sum(1 for p in pairs if p.jetstream < p.graphpulse)
    assert lower >= 0.7 * len(pairs), "JS utilization should usually be lower"
    mean_ratio = sum(p.jetstream / p.graphpulse for p in pairs) / len(pairs)
    benchmark.extra_info["mean_js_over_gp_util"] = round(mean_ratio, 3)
