"""Table 1 bench: render the experimental configurations."""

from repro.experiments import table1

from conftest import save_result


def test_table1_configurations(benchmark, results_dir):
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    rendering = table1.render(rows)
    save_result(results_dir, "table1_config", rendering)
    assert len(rows) == 3
    benchmark.extra_info["rows"] = len(rows)
