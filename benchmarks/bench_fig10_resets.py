"""Fig. 10 bench: vertices reset by a deletion-only batch, JS vs KickStarter.

Paper shape: JetStream's exact-source DAP trims a set no larger than (and
usually smaller than) KickStarter's value/level-based trimming.
"""

from repro.experiments import fig10

from conftest import bench_graphs, bench_selective_algorithms, save_result


def test_fig10_vertex_resets(benchmark, results_dir):
    counts = benchmark.pedantic(
        fig10.run,
        kwargs={
            "graphs": bench_graphs(),
            "algorithms": bench_selective_algorithms(),
        },
        rounds=1,
        iterations=1,
    )
    rendering = fig10.render(counts)
    save_result(results_dir, "fig10_resets", rendering)

    total_jet = sum(c.jetstream_resets for c in counts)
    total_kick = sum(c.kickstarter_resets for c in counts)
    assert total_jet <= total_kick, "DAP must not trim more than KickStarter"
    benchmark.extra_info["jetstream_total_resets"] = total_jet
    benchmark.extra_info["kickstarter_total_resets"] = total_kick
