"""CommonGraph deletion-to-addition conversion vs DAP recovery.

The headline number for the ``delete_policy=commongraph`` tentpole: on
Fig. 10-style deletion-heavy batches the conversion must process at
least :data:`RATIO_GATE` (2x) fewer events than JetStream's own
dependency-aware (DAP) recovery, while producing bit-identical final
states and resetting zero vertices.

Each grid point deletes a fixed fraction of the graph's edges in one
batch and replays it twice from the same converged state:

* **dap** — Algorithm 4 recovery: invalidation cascade along the
  dependency tree, request events, reconvergence.
* **commongraph** — converge the common graph (current edges minus the
  delete set) once; with a deletion-only batch there are no insertions
  to re-apply, so that single monotonic pass is the whole batch.

The regression-gate ``events`` column is the engine's deterministic
event counter, so policy drift fails the gate exactly; ``events_per_s``
carries the machine-dependent throughput check.

Usable two ways:

* ``python benchmarks/bench_commongraph.py`` — standalone, writes
  ``BENCH_commongraph.json`` at the repo root. ``REPRO_BENCH_QUICK=1``
  shrinks the grid for CI smoke runs.
* ``repro bench check --suite commongraph`` — re-runs :func:`collect`
  and gates events/s and exact event counts against the baseline.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.algorithms import make_algorithm
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import datasets
from repro.streams import Edge, UpdateBatch

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_commongraph.json"

GRAPH = "WK"
BATCH_SEED = 42

#: Gated points delete 30% of the edges — the deletion-heavy end of the
#: Fig. 10 sweep, where DAP's reset cascade is at its most expensive.
#: The 10% point rides along informationally (full mode only).
GATED_FRACTION = 0.3

#: Minimum DAP/commongraph event ratio on the gated points.
RATIO_GATE = 2.0


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def grid(quick: bool):
    """(algorithms, delete_fractions) for the run mode."""
    if quick:
        return ["sssp", "cc"], [GATED_FRACTION]
    return ["sssp", "cc", "sswp", "bfs"], [0.1, GATED_FRACTION]


def deletion_batch(graph, fraction: float) -> UpdateBatch:
    """A deletion-only batch removing ``fraction`` of the logical edges."""
    edges = [(u, v, w) for u, v, w in graph.edges()]
    if graph.symmetric:
        edges = [(u, v, w) for u, v, w in edges if u <= v]
    rng = random.Random(BATCH_SEED)
    dels = rng.sample(edges, int(len(edges) * fraction))
    return UpdateBatch(deletions=[Edge(u, v, w) for u, v, w in dels])


def run_policy(algorithm: str, policy: DeletePolicy, fraction: float) -> dict:
    algo = make_algorithm(algorithm, source=0)
    graph = datasets.load(GRAPH, symmetric=algo.needs_symmetric, seed=0)
    engine = JetStreamEngine(graph, algo, policy=policy)
    try:
        engine.initial_compute()
        batch = deletion_batch(graph, fraction)
        started = time.perf_counter()
        result = engine.apply_batch(batch)
        elapsed = time.perf_counter() - started
        events = int(result.metrics.events_processed)
        return {
            "batch_edges": len(batch.deletions),
            "wall_clock_s": elapsed,
            "events_processed": events,
            "events_per_s": events / elapsed if elapsed > 0 else float("inf"),
            "vertices_reset": int(result.vertices_reset),
            "states": result.states.copy(),
        }
    finally:
        engine.close()


def collect(quick: bool) -> dict:
    algorithms, fractions = grid(quick)
    results = []
    for algorithm in algorithms:
        for fraction in fractions:
            dap = run_policy(algorithm, DeletePolicy.DAP, fraction)
            cg = run_policy(algorithm, DeletePolicy.COMMONGRAPH, fraction)
            identical = bool(np.array_equal(dap.pop("states"), cg.pop("states")))
            ratio = (
                dap["events_processed"] / cg["events_processed"]
                if cg["events_processed"]
                else float("inf")
            )
            gated = fraction >= GATED_FRACTION
            print(
                f"{GRAPH}/{algorithm} del={fraction:.0%}: "
                f"DAP {dap['events_processed']:>6} events "
                f"({dap['vertices_reset']} resets)  "
                f"CG {cg['events_processed']:>6} events "
                f"({cg['vertices_reset']} resets)  "
                f"ratio {ratio:5.2f}x  identical={identical}"
            )
            results.append(
                {
                    "graph": GRAPH,
                    "algorithm": algorithm,
                    "delete_fraction": fraction,
                    "gated": gated,
                    "dap": dap,
                    "commongraph": cg,
                    "ratio_events": ratio,
                    "states_identical": identical,
                }
            )
    gated_ratios = [r["ratio_events"] for r in results if r["gated"]]
    return {
        "quick": quick,
        "graph": GRAPH,
        "ratio_gate": RATIO_GATE,
        "min_gated_ratio": min(gated_ratios) if gated_ratios else None,
        "results": results,
    }


def main() -> int:
    quick = quick_mode()
    report = collect(quick)
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[saved to {OUTPUT_PATH}]")
    failed = False
    if any(not r["states_identical"] for r in report["results"]):
        print("ERROR: commongraph states diverged from the DAP oracle",
              file=sys.stderr)
        failed = True
    if report["min_gated_ratio"] is not None and (
        report["min_gated_ratio"] < RATIO_GATE
    ):
        print(
            f"WARNING: min DAP/commongraph event ratio "
            f"{report['min_gated_ratio']:.2f}x below the {RATIO_GATE:.0f}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def test_commongraph_event_ratio(benchmark):
    """pytest-benchmark entry: quick grid, conversion must beat DAP 2x."""
    os.environ.setdefault("REPRO_BENCH_QUICK", "1")
    report = benchmark.pedantic(lambda: collect(True), rounds=1, iterations=1)
    assert all(r["states_identical"] for r in report["results"])
    assert report["min_gated_ratio"] >= RATIO_GATE, (
        f"commongraph only {report['min_gated_ratio']:.2f}x fewer events "
        f"than DAP on the gated deletion batches"
    )
    benchmark.extra_info["min_gated_ratio"] = round(report["min_gated_ratio"], 2)


if __name__ == "__main__":
    sys.exit(main())
