"""Quickstart: evaluate a streaming SSSP query end to end.

Builds a small weighted digraph, runs the initial (static) evaluation,
applies a batch containing both an edge insertion and an edge deletion,
and shows the incremental re-evaluation arriving at the same answer a
from-scratch recomputation would — while touching far fewer vertices.

Run: ``python examples/quickstart.py``
"""

from repro import (
    DeletePolicy,
    DynamicGraph,
    GraphPulseEngine,
    JetStreamEngine,
    make_algorithm,
)
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import Edge, UpdateBatch


def main() -> None:
    # The worked example of the paper's Fig. 4: seven vertices A..G.
    names = "ABCDEFG"
    edges = [
        ("A", "B", 8),
        ("A", "C", 9),
        ("B", "D", 4),
        ("B", "E", 8),
        ("C", "E", 5),
        ("C", "F", 8),
        ("D", "E", 7),
        ("D", "G", 7),
        ("E", "F", 5),
        ("G", "E", 3),
    ]
    vid = {name: i for i, name in enumerate(names)}
    graph = DynamicGraph.from_edges(
        [(vid[u], vid[v], float(w)) for u, v, w in edges], len(names)
    )

    algorithm = make_algorithm("sssp", source=vid["A"])
    engine = JetStreamEngine(graph, algorithm, policy=DeletePolicy.DAP)

    initial = engine.initial_compute()
    print("Initial shortest-path distances from A:")
    for name in names:
        print(f"  {name}: {initial.states[vid[name]]:g}")

    # The paper's streaming example: add A->D (weight 3), delete A->C.
    batch = UpdateBatch(
        insertions=[Edge(vid["A"], vid["D"], 3.0)],
        deletions=[Edge(vid["A"], vid["C"], 9.0)],
    )
    result = engine.apply_batch(batch)
    print("\nAfter add(A->D, 3) and delete(A->C):")
    for name in names:
        print(f"  {name}: {result.states[vid[name]]:g}")
    print(f"\nVertices reset during recovery: "
          f"{sorted(names[i] for i in result.impacted)}")

    # Cross-check against a cold-start recomputation on the mutated graph.
    cold = GraphPulseEngine(algorithm).compute(graph.snapshot())
    assert algorithm.states_close(result.states, cold.states)
    print("Incremental result matches cold-start recomputation.")

    # What did incrementality buy on the accelerator?
    timing = AcceleratorTimingModel()
    jet_ms = timing.run_time(result.metrics, stream_records=batch.size).time_ms
    cold_ms = timing.run_time(cold.metrics).time_ms
    print(f"JetStream incremental: {jet_ms * 1e3:.2f} us of accelerator time")
    print(f"GraphPulse cold start: {cold_ms * 1e3:.2f} us of accelerator time")
    print("(On a 7-vertex toy, fixed phase overheads dominate and cold start "
          "can win; run examples/streaming_pagerank_dashboard.py or the "
          "benchmarks to see the incremental advantage at realistic scale.)")


if __name__ == "__main__":
    main()
