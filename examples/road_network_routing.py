"""Live route costs on a road network with closures and re-openings.

A planar grid road network serves a standing shortest-path query from a
depot. Traffic incidents close road segments (edge deletions) and clear
again later (edge insertions); the engine keeps travel times fresh without
recomputing the whole network. Also contrasts the three deletion policies
(Base / VAP / DAP) on identical closures — the paper's Fig. 12 in miniature.

Run: ``python examples/road_network_routing.py``
"""

import numpy as np

from repro import DeletePolicy, DynamicGraph, JetStreamEngine, make_algorithm
from repro.graph import generators
from repro.streams import Edge, UpdateBatch


def build_road_network(rows: int = 40, cols: int = 40, seed: int = 3) -> DynamicGraph:
    """Grid road network with travel-time weights."""
    return DynamicGraph.from_edges(
        generators.grid_road(rows, cols, seed=seed), rows * cols
    )


def pick_closures(graph: DynamicGraph, count: int, seed: int) -> list:
    """Choose road segments to close (both directions)."""
    rng = np.random.default_rng(seed)
    undirected = sorted({(min(u, v), max(u, v)) for u, v, _ in graph.edges()})
    picks = rng.choice(len(undirected), size=count, replace=False)
    closures = []
    for i in picks:
        u, v = undirected[int(i)]
        closures.append((u, v, graph.edge_weight(u, v)))
    return closures


def main() -> None:
    depot = 0
    policies = [DeletePolicy.BASE, DeletePolicy.VAP, DeletePolicy.DAP]
    engines = {}
    for policy in policies:
        graph = build_road_network()
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=depot), policy=policy)
        engine.initial_compute()
        engines[policy] = engine

    any_graph = engines[DeletePolicy.DAP].graph
    print(f"Road network: {any_graph.num_vertices} intersections, "
          f"{any_graph.num_edges} directed segments")

    closures = pick_closures(any_graph, count=25, seed=11)
    closed_batch = UpdateBatch(
        deletions=[Edge(u, v, w) for u, v, w in closures]
        + [Edge(v, u, w) for u, v, w in closures]
    )
    print(f"\nClosing {len(closures)} road segments (both directions):")
    for policy in policies:
        result = engines[policy].apply_batch(
            UpdateBatch(
                deletions=list(closed_batch.deletions),
            )
        )
        reachable = np.isfinite(result.states).sum()
        print(
            f"  {policy.value.upper():4s}: reset {result.vertices_reset:5d} "
            f"intersections, {reachable} still reachable, "
            f"events {result.metrics.events_processed}"
        )

    # All policies must agree on the resulting travel times.
    states = [engines[p].query_result() for p in policies]
    assert all(np.array_equal(states[0], s) for s in states[1:])

    # Re-open the roads; costs return to the original values.
    reopen_batch = UpdateBatch(
        insertions=[Edge(u, v, w) for u, v, w in closures]
        + [Edge(v, u, w) for u, v, w in closures]
    )
    for policy in policies:
        engines[policy].apply_batch(
            UpdateBatch(insertions=list(reopen_batch.insertions))
        )
    final = engines[DeletePolicy.DAP].query_result()
    fresh_graph = build_road_network()
    fresh = JetStreamEngine(fresh_graph, make_algorithm("sssp", source=depot))
    baseline = fresh.initial_compute().states
    assert np.array_equal(final, baseline)
    print("\nAfter re-opening, travel times match the original network exactly.")


if __name__ == "__main__":
    main()
