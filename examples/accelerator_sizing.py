"""Design-space exploration: sizing the accelerator.

Uses the architectural timing and power models to ask the questions a
hardware architect would: how do processor count, queue size (and hence
graph slicing), and DRAM bandwidth move per-batch latency, and what do the
JetStream extensions cost in power and area (Table 4)?

Run: ``python examples/accelerator_sizing.py``
"""

from repro import AcceleratorConfig, DynamicGraph, JetStreamEngine, make_algorithm
from repro.graph import generators
from repro.sim.power import PowerAreaModel
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import StreamGenerator


def one_batch_metrics(config: AcceleratorConfig):
    """Run one fixed SSSP batch and return its run metrics."""
    edges = generators.rmat(4096, 24576, seed=9)
    edges = generators.ensure_reachable_core(edges, 4096, seed=10)
    graph = DynamicGraph.from_edges(edges, 4096)
    engine = JetStreamEngine(graph, make_algorithm("sssp", source=0), config=config)
    engine.initial_compute()
    stream = StreamGenerator(graph, seed=11)
    result = engine.apply_batch(stream.next_batch(200))
    return result.metrics


def main() -> None:
    base = AcceleratorConfig()
    metrics = one_batch_metrics(base)

    print("Processor scaling (same workload, Table 1 otherwise):")
    for processors in (2, 4, 8, 16, 32):
        config = base.with_overrides(num_processors=processors)
        report = AcceleratorTimingModel(config).run_time(metrics, stream_records=200)
        bound = max(report.phases, key=lambda p: p.total_cycles).bound
        print(f"  {processors:>2} engines: {report.time_us:8.1f} us  ({bound}-bound)")

    print("\nDRAM bandwidth scaling:")
    for channels in (1, 2, 4, 8):
        config = base.with_overrides(dram_channels=channels)
        report = AcceleratorTimingModel(config).run_time(metrics, stream_records=200)
        print(f"  {channels} channels: {report.time_us:8.1f} us")

    print("\nQueue capacity -> graph slicing (64KB queue forces slices):")
    for queue_kb in (64, 256, 1024):
        config = base.with_overrides(queue_bytes=queue_kb * 1024)
        sliced_metrics = one_batch_metrics(config)
        report = AcceleratorTimingModel(config).run_time(sliced_metrics, stream_records=200)
        spill = sliced_metrics.total.spill_bytes
        print(f"  {queue_kb:>5} KB queue: {report.time_us:8.1f} us, "
              f"cross-slice spill {spill} bytes")

    print("\nPower/area of the JetStream extensions (Table 4 model):")
    model = PowerAreaModel(base)
    jet_mw = model.total_power_mw(jetstream=True)
    gp_mw = model.total_power_mw(jetstream=False)
    jet_mm = model.total_area_mm2(jetstream=True)
    gp_mm = model.total_area_mm2(jetstream=False)
    print(f"  power: {jet_mw:.0f} mW vs {gp_mw:.0f} mW GraphPulse "
          f"({(jet_mw / gp_mw - 1) * 100:+.1f}%)")
    print(f"  area : {jet_mm:.0f} mm2 vs {gp_mm:.0f} mm2 GraphPulse "
          f"({(jet_mm / gp_mm - 1) * 100:+.1f}%)")


if __name__ == "__main__":
    main()
