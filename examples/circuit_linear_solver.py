"""Streaming linear-system solving on the accelerator (host API).

The paper lists "many Linear Equation Solvers" among the DAIC-compatible
applications. This example models a signal-attenuation network: node 0
injects a unit signal, every link passes a fraction of its input onward,
and the steady state solves ``x = b + M x``. Links degrade and get
re-provisioned over time (weight changes = delete + insert), and the
accelerator keeps the steady state fresh incrementally.

Also demonstrates the host-side co-processor protocol of §4.1
(:mod:`repro.host`): load -> configure -> run -> push_updates -> run ->
read_results, with DMA transfer accounting.

Run: ``python examples/circuit_linear_solver.py``
"""

import numpy as np

from repro.algorithms.linear import reference_solve
from repro.graph import generators
from repro.host import Accelerator


def build_attenuation_network(n=400, m=1400, seed=23):
    """Random network with per-node pass-through budgets below 1."""
    rng = np.random.default_rng(seed)
    raw = generators.erdos_renyi(n, m, seed=seed, weighted=False)
    out_count = {}
    for u, _, _ in raw:
        out_count[u] = out_count.get(u, 0) + 1
    return [
        (u, v, 0.85 / out_count[u] * (0.3 + 0.7 * rng.random()))
        for u, v, _ in raw
    ]


def main() -> None:
    edges = build_attenuation_network()
    accel = Accelerator()
    session = accel.load_graph(edges)
    session.configure("linear", constants={0: 1.0}, tolerance=1e-10)
    session.run()
    signal = session.read_results()
    print(f"Network: {session.graph.num_vertices} nodes, "
          f"{session.graph.num_edges} links")
    print(f"Injected 1.0 at node 0; strongest downstream signals: "
          f"{np.sort(signal)[-4:-1][::-1].round(4)}")

    rng = np.random.default_rng(29)
    for step in range(1, 4):
        # Degrade three random links to 60% of their capacity.
        live = sorted(session.graph.edges())
        picks = rng.choice(len(live), size=3, replace=False)
        deletions = [(live[int(i)][0], live[int(i)][1]) for i in picks]
        insertions = [
            (live[int(i)][0], live[int(i)][1], live[int(i)][2] * 0.6)
            for i in picks
        ]
        session.push_updates(insertions=insertions, deletions=deletions)
        result = session.run()
        signal = session.read_results()
        expected = reference_solve(
            session.graph.snapshot(), {0: 1.0}
        )
        assert np.allclose(signal, expected, atol=1e-6)
        print(
            f"step {step}: degraded 3 links, "
            f"{result.metrics.events_processed:5d} events to re-converge, "
            f"total signal {signal.sum():.4f}"
        )

    stats = session.transfer_stats()
    print(
        f"\nHost<->accelerator DMA: {stats.graph_uploads} B graph uploads, "
        f"{stats.update_records} B update records, "
        f"{stats.results_read} B results read back."
    )
    print("Every incremental steady state matched the dense numpy solve.")


if __name__ == "__main__":
    main()
