"""Near-real-time trend dashboard: tiny batches on a link graph.

The paper's closing argument is that JetStream's advantage *grows* as
batches shrink, "making it conceivable to work on small batch sizes and
allow near real-time updates" (Fig. 13). This example quantifies that: a
web/link graph receives updates in batches of decreasing size and we track
accelerator time per batch and per individual update for incremental
PageRank, versus the cold-start alternative.

Run: ``python examples/streaming_pagerank_dashboard.py``
"""

from repro import DynamicGraph, JetStreamEngine, make_algorithm
from repro.baselines import GraphPulseColdStart
from repro.graph import generators
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import StreamGenerator


def main() -> None:
    edges = generators.long_path_web(4096, 24576, seed=5)
    graph = DynamicGraph.from_edges(edges, 4096)
    cold_graph = DynamicGraph.from_edges(edges, 4096)
    print(f"Link graph: {graph.num_vertices} pages, {graph.num_edges} links")

    algorithm = make_algorithm("pagerank", tolerance=1e-4)
    engine = JetStreamEngine(graph, algorithm)
    engine.initial_compute()
    cold = GraphPulseColdStart(cold_graph, make_algorithm("pagerank", tolerance=1e-4))
    cold.initial_compute()

    timing = AcceleratorTimingModel()
    stream = StreamGenerator(graph, seed=21, insertion_ratio=0.7)
    cold_stream = StreamGenerator(cold_graph, seed=21, insertion_ratio=0.7)

    print(f"{'batch':>6} {'jet us/batch':>13} {'jet us/update':>14} "
          f"{'cold us/batch':>14} {'advantage':>10}")
    for size in (512, 128, 32, 8):
        batch = stream.next_batch(size)
        result = engine.apply_batch(batch)
        jet_us = timing.run_time(result.metrics, stream_records=size).time_us

        cold_batch = cold_stream.next_batch(size)
        cold_result = cold.apply_batch(cold_batch)
        cold_us = timing.run_time(cold_result.metrics, stream_records=size).time_us

        print(
            f"{size:>6} {jet_us:>13.1f} {jet_us / size:>14.2f} "
            f"{cold_us:>14.1f} {cold_us / jet_us:>9.1f}x"
        )

    print("\nPer-update cost stays almost flat for JetStream while the "
          "cold-start cost is paid in full for every batch — the smaller "
          "the batch, the bigger the win.")


if __name__ == "__main__":
    main()
