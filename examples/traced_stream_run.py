"""Traced streaming run: the observability layer end to end.

Runs a streaming SSSP query with the tracer attached, writing a JSONL
trace, then demonstrates the three things the trace is for:

1. the span tree (run -> phase -> round) with per-round work vectors;
2. rebuilding the run's ``RunMetrics`` *offline* from the trace alone —
   bit-identical to the in-process counters;
3. the correlation table joining measured wall-clock against the modeled
   accelerator cycles (what ``repro trace summarize`` prints).

Run: ``python examples/traced_stream_run.py``
"""

import tempfile
from pathlib import Path

from repro import JetStreamEngine, make_algorithm
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.obs import (
    JsonlSink,
    MemorySink,
    Tracer,
    correlate,
    read_trace,
    rebuild_run_metrics,
    render_correlation,
    validate_trace,
)
from repro.streams import StreamGenerator


def main() -> None:
    trace_path = Path(tempfile.gettempdir()) / "repro_traced_stream.jsonl"

    # Attach a tracer: JSONL to disk, plus an in-memory mirror.
    memory = MemorySink()
    tracer = Tracer([JsonlSink(str(trace_path)), memory])

    graph = DynamicGraph.from_edges(generators.rmat(256, 1024, seed=7), 256)
    engine = JetStreamEngine(
        graph, make_algorithm("sssp", source=0), tracer=tracer
    )

    results = [engine.initial_compute()]
    stream = StreamGenerator(graph, seed=8)
    for _ in range(3):
        results.append(engine.apply_batch(stream.next_batch(32)))
    tracer.close()

    problems = validate_trace(trace_path)
    assert problems == [], problems
    trace = read_trace(trace_path)
    print(f"trace: {trace_path} ({len(trace.spans)} spans)")

    # 1. Walk the span tree.
    for run in trace.runs():
        phases = trace.children_of(run["id"], "phase")
        rounds = sum(
            len(trace.children_of(p["id"], "round")) for p in phases
        )
        print(
            f"  run {run['name']:<8} {len(phases)} phase(s), "
            f"{rounds} round(s), {run['dur_s'] * 1e3:.2f} ms"
        )

    # 2. Offline metrics reconstruction matches the in-process counters.
    for run, result in zip(trace.runs(), results):
        rebuilt = rebuild_run_metrics(trace, run)
        assert rebuilt.to_rows() == result.metrics.to_rows()
    print("offline RunMetrics reconstruction matches in-process metrics.")

    # 3. Wall-clock vs modeled-cycles correlation.
    print()
    print(render_correlation(correlate(trace)))


if __name__ == "__main__":
    main()
