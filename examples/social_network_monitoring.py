"""Monitor influence and communities over an evolving social network.

The scenario the paper's introduction motivates: a social graph receives a
continuous stream of follows/unfollows, and two standing queries must stay
fresh — influence scores (incremental PageRank) and community structure
(Connected Components). Both run on the same stream; PageRank demonstrates
the accumulative deletion flow (negative events), CC the selective one
(delete tags + request events).

Run: ``python examples/social_network_monitoring.py``
"""

import numpy as np

from repro import DynamicGraph, JetStreamEngine, make_algorithm
from repro.graph import generators
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import StreamGenerator


def build_social_graph(n: int = 2000, m: int = 12000, seed: int = 7):
    """RMAT follower graph (directed) and its symmetric friendship view."""
    edges = generators.rmat(n, m, seed=seed)
    directed = DynamicGraph.from_edges(edges, n)
    symmetric = DynamicGraph(n, symmetric=True)
    seen = set()
    for u, v, w in edges:
        if (u, v) not in seen and (v, u) not in seen:
            seen.add((u, v))
            symmetric.add_edge(u, v, w, _count_version=False)
    return directed, symmetric


def main() -> None:
    directed, symmetric = build_social_graph()
    print(f"Social graph: {directed.num_vertices} users, "
          f"{directed.num_edges} follow edges")

    influence = JetStreamEngine(directed, make_algorithm("pagerank", tolerance=1e-5))
    communities = JetStreamEngine(symmetric, make_algorithm("cc"))
    influence.initial_compute()
    communities.initial_compute()

    timing = AcceleratorTimingModel()
    # Two independent streams: follows/unfollows arrive on the directed
    # graph; friendship changes on the symmetric one.
    follow_stream = StreamGenerator(directed, seed=13, insertion_ratio=0.7)
    friend_stream = StreamGenerator(symmetric, seed=14, insertion_ratio=0.7)

    for tick in range(1, 6):
        follows = follow_stream.next_batch(40)
        friends = friend_stream.next_batch(40)
        r_inf = influence.apply_batch(follows)
        r_com = communities.apply_batch(friends)

        ranks = r_inf.states
        top = np.argsort(-ranks)[:3]
        labels = r_com.states
        num_communities = len(np.unique(labels))
        inf_us = timing.run_time(r_inf.metrics, stream_records=follows.size).time_us
        com_us = timing.run_time(r_com.metrics, stream_records=friends.size).time_us
        print(
            f"tick {tick}: top influencers {[int(v) for v in top]} "
            f"(rank {ranks[top[0]]:.2f}), {num_communities} communities, "
            f"resets {r_com.vertices_reset:4d}, "
            f"accel time {inf_us:.1f}us + {com_us:.1f}us"
        )

    print("\nDone: both standing queries stayed fresh across 5 update ticks.")


if __name__ == "__main__":
    main()
