"""Long-running streaming service: ``repro serve`` (§4.1 as a host daemon).

The paper's programming model assumes a host that keeps feeding the
accelerator interleaved update batches and queries for as long as the
deployment lives; every other entry point in this repo is a one-shot CLI
run. This module is that host: a stdlib-only JSON-over-HTTP server (the
same ``ThreadingHTTPServer`` substrate as :mod:`repro.obs.scrape`) that
accepts ingest batches, single-edge express updates, and read queries
from many concurrent clients over named sessions.

Concurrency model
-----------------
*Writes are serialized, reads are snapshot-isolated.* Each session owns
one writer thread draining a **bounded** ingest queue; every write op
(batch or express update) goes through the existing
:meth:`repro.host.Session.run` / :meth:`~repro.host.Session.apply_update`
machinery on that thread, so the engine never sees concurrent mutation.
When the queue is full the request is rejected immediately with HTTP 429
``QUEUE_FULL`` — backpressure, not unbounded buffering.

After each applied write the writer publishes a :class:`ReadSnapshot`:
an immutable (write-protected) copy of the converged vertex states keyed
by the store's ``mutation_stamp`` — the same stamp the express lane
rebases its overlay on. Reads grab the current snapshot reference with a
single atomic attribute load and serve from it **lock-free**: a query
never waits on an in-flight batch, and can never observe a torn,
mid-convergence state. A client that completed a write is guaranteed to
see a snapshot at least as new as its own write on a subsequent read
(writes respond only after publishing).

Time travel
-----------
Each published snapshot carries the graph version that produced it, and
the session retains the last ``keep_versions`` of them in a ring (the
same retention bound the host session's :class:`DeltaVersionStore` uses
for graph deltas). ``GET /sessions/<s>/read?version=<v>`` serves from
the retained snapshot for graph version ``v`` — still lock-free, still
immutable — and answers 404 ``VERSION_EVICTED`` once retention has
dropped it. Historical reads are counted separately from latest reads
(``repro_serve_reads_total{kind="historical"}``).

Shutdown drains: the server stops accepting new work, each writer thread
finishes every op already queued (their clients get real responses), and
only then are engines/sessions closed.

The ``/metrics`` and ``/metrics.json`` scrape routes of
:mod:`repro.obs.scrape` are mounted on the same server, alongside the
serve-specific families (queue depth, ingest latency, reads per
snapshot) in :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import queue
import threading
from collections import OrderedDict, deque
from functools import cached_property
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.policies import DeletePolicy
from repro.host import Accelerator, HostApiError, Session
from repro.obs.metrics import REGISTRY as METRICS
from repro.obs.reqtrace import REQUEST_LOG, RequestContext
from repro.obs.scrape import metrics_payload, send_payload

__all__ = [
    "DEFAULT_KEEP_VERSIONS",
    "DEFAULT_QUEUE_BOUND",
    "ReadSnapshot",
    "ServeApp",
    "ServeError",
    "ServeServer",
    "ServeSession",
]

#: Default bound of each session's ingest queue (write ops, not bytes).
DEFAULT_QUEUE_BOUND = 64

#: Default number of graph versions a serve session keeps readable via
#: ``?version=`` (snapshot ring + the host session's delta store bound).
DEFAULT_KEEP_VERSIONS = 64


class ServeError(Exception):
    """Protocol-level error carrying the HTTP status and error code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass(frozen=True)
class ReadSnapshot:
    """One published converged state: what every read is served from.

    ``seq`` is the number of write ops applied when it was published
    (0 = the initial evaluation), ``stamp`` the graph store's
    ``mutation_stamp`` — reads report both so clients (and the torn-read
    checker in the test suite) can order what they observed.
    """

    seq: int
    stamp: int
    graph_version: int
    states: np.ndarray  # write-protected copy

    @cached_property
    def digest(self) -> str:
        """Content hash of the states array (torn-read verification).

        Computed once per snapshot, not per read — every reader of this
        (immutable) snapshot shares the cached value.
        """
        return hashlib.sha1(self.states.tobytes()).hexdigest()


@dataclass
class _WriteOp:
    """One queued write: an ingest batch or a single express update."""

    kind: str  # "batch" | "update"
    payload: dict
    enqueued_at: float
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[dict] = None
    error: Optional[ServeError] = None
    #: Originating request context when request tracing is enabled; the
    #: writer thread marks the queued/apply/publish stages on it.
    ctx: Optional[RequestContext] = None


class ServeSession:
    """One served query session: bounded write queue + snapshot publisher.

    Wraps a :class:`repro.host.Session` whose initial evaluation has
    already run. All writes go through :meth:`submit` and are applied by
    the session's single writer thread; reads go through
    :meth:`read_snapshot` and never touch the engine.
    """

    def __init__(
        self,
        name: str,
        session: Session,
        queue_bound: int,
        log_bound: Optional[int] = None,
        keep_versions: Optional[int] = DEFAULT_KEEP_VERSIONS,
    ):
        self.name = name
        self.session = session
        self.queue_bound = queue_bound
        if log_bound is not None and log_bound < 1:
            raise ValueError("log_bound must be >= 1 (or None for keep-all)")
        self.log_bound = log_bound
        if keep_versions is not None and keep_versions < 1:
            raise ValueError("keep_versions must be >= 1 (or None for keep-all)")
        self.keep_versions = keep_versions
        #: Retained published snapshots keyed by graph version — the
        #: ``?version=`` read path. Bounded in lockstep with the host
        #: session's DeltaVersionStore retention.
        self._history: "OrderedDict[int, ReadSnapshot]" = OrderedDict()
        self._history_evicted = 0
        self._history_lock = threading.Lock()
        self._queue: "queue.Queue[Optional[_WriteOp]]" = queue.Queue(
            maxsize=max(1, queue_bound)
        )
        self._applied_seq = 0
        self._reads_on_snapshot = 0
        #: Applied-write log (kind + payload, in apply order) so clients
        #: can audit/replay exactly what the session executed. With a
        #: log_bound it becomes a ring: the oldest prefix is dropped and
        #: counted so auditors can still anchor on seq numbers.
        self._log: deque = deque()
        self._log_dropped = 0
        self._log_lock = threading.Lock()
        self._closing = False
        self._snapshot = self._build_snapshot()
        self._remember(self._snapshot)
        self._thread = threading.Thread(
            target=self._writer_loop,
            name=f"repro-serve-writer-{name}",
            daemon=True,
        )
        # Test/ops hook: when cleared, the writer parks *between* ops
        # (never mid-apply), letting tests fill the queue deterministically.
        self._gate = threading.Event()
        self._gate.set()
        self._thread.start()

    # -- snapshot publication ------------------------------------------
    def _build_snapshot(self) -> ReadSnapshot:
        states = self.session.read_results()
        states = np.array(states, copy=True)
        states.setflags(write=False)
        return ReadSnapshot(
            seq=self._applied_seq,
            stamp=self.session.graph.mutation_stamp,
            graph_version=self.session.graph.version,
            states=states,
        )

    def _publish(self) -> None:
        retired_reads = self._reads_on_snapshot
        self._reads_on_snapshot = 0
        self._snapshot = self._build_snapshot()
        self._remember(self._snapshot)
        if METRICS.enabled:
            METRICS.record_serve_snapshot(retired_reads)

    def _remember(self, snapshot: ReadSnapshot) -> None:
        """Retain ``snapshot`` in the version ring; evict past the bound.

        A re-published graph version (a write that didn't mutate the
        graph) replaces its predecessor — the ring holds one snapshot per
        version, newest write wins.
        """
        with self._history_lock:
            self._history[snapshot.graph_version] = snapshot
            self._history.move_to_end(snapshot.graph_version)
            if self.keep_versions is not None:
                while len(self._history) > self.keep_versions:
                    self._history.popitem(last=False)
                    self._history_evicted += 1

    def read_snapshot(self) -> ReadSnapshot:
        """The latest published converged snapshot (lock-free)."""
        snapshot = self._snapshot  # single atomic attribute load
        self._reads_on_snapshot += 1  # stats-only; benign race
        if METRICS.enabled:
            METRICS.record_serve_read(kind="latest")
        return snapshot

    def read_version(self, version: int) -> ReadSnapshot:
        """A retained historical snapshot for graph ``version``.

        Raises 404 ``NO_VERSION`` for a version newer than anything
        published, 404 ``VERSION_EVICTED`` for one the retention bound
        has already dropped.
        """
        latest = self._snapshot
        with self._history_lock:
            snapshot = self._history.get(version)
            oldest = next(iter(self._history), None)
        if snapshot is None:
            if version > latest.graph_version:
                raise ServeError(
                    404,
                    "NO_VERSION",
                    f"version {version} not published yet "
                    f"(latest is {latest.graph_version})",
                )
            raise ServeError(
                404,
                "VERSION_EVICTED",
                f"version {version} evicted by retention "
                f"(keep_versions={self.keep_versions}, oldest retained "
                f"{oldest})",
            )
        if METRICS.enabled:
            METRICS.record_serve_read(kind="historical")
        return snapshot

    # -- write path ----------------------------------------------------
    def submit(
        self, kind: str, payload: dict, ctx: Optional[RequestContext] = None
    ) -> dict:
        """Enqueue one write op and wait for the writer to apply it.

        Raises :class:`ServeError` 429 immediately when the bounded queue
        is full (backpressure) and 409 when the session is draining.
        """
        if self._closing:
            raise ServeError(409, "CLOSING", "session is shutting down")
        op = _WriteOp(
            kind=kind, payload=payload, enqueued_at=perf_counter(), ctx=ctx
        )
        try:
            self._queue.put_nowait(op)
        except queue.Full:
            if METRICS.enabled:
                METRICS.record_serve_rejection(kind)
            raise ServeError(
                429,
                "QUEUE_FULL",
                f"ingest queue at bound ({self.queue_bound}); retry later",
            )
        if METRICS.enabled:
            # Enqueue-side sample: the dequeue side re-samples after each
            # drain, so the gauge tracks live backpressure both ways.
            METRICS.record_serve_queue_depth(self._queue.qsize())
        op.done.wait()
        if op.error is not None:
            raise op.error
        assert op.result is not None
        return op.result

    def _writer_loop(self) -> None:
        while True:
            op = self._queue.get()
            if op is None:  # drain sentinel: queue is empty past here
                return
            self._gate.wait()
            try:
                op.result = self._apply(op)
            except ServeError as exc:
                op.error = exc
            except (HostApiError, ValueError) as exc:
                op.error = ServeError(409, "REJECTED", str(exc))
            except Exception as exc:  # engine invariant violation: surface
                op.error = ServeError(500, "INTERNAL", repr(exc))
            finally:
                op.done.set()

    def _apply(self, op: _WriteOp) -> dict:
        ctx = op.ctx
        if ctx is not None:
            # End of the queued stage: the op waited for the writer (and
            # any gate pause) from its parse mark until now.
            ctx.mark("queued")
        tracer = self.session.tracer
        if ctx is not None and tracer.enabled:
            # Span link: every root span/event the engine emits while this
            # op applies carries the originating request id.
            with tracer.linked(request_id=ctx.request_id):
                applied = self._apply_op(op, ctx)
        else:
            applied = self._apply_op(op, ctx)
        self._applied_seq += 1
        self._publish()
        snapshot = self._snapshot
        applied.update(seq=snapshot.seq, stamp=snapshot.stamp)
        with self._log_lock:
            self._log.append(
                {"kind": op.kind, "payload": op.payload, "seq": snapshot.seq}
            )
            if self.log_bound is not None:
                while len(self._log) > self.log_bound:
                    self._log.popleft()
                    self._log_dropped += 1
        if ctx is not None:
            ctx.mark("publish")
        if METRICS.enabled:
            METRICS.record_serve_ingest(
                op.kind, perf_counter() - op.enqueued_at, self._queue.qsize()
            )
            METRICS.record_serve_queue_depth(self._queue.qsize())
        return applied

    def _apply_op(self, op: _WriteOp, ctx: Optional[RequestContext]) -> dict:
        session = self.session
        if op.kind == "batch":
            insertions = [
                (int(u), int(v), float(w))
                for u, v, w in op.payload.get("insertions", [])
            ]
            deletions = [
                (int(u), int(v)) for u, v in op.payload.get("deletions", [])
            ]
            session.push_updates(insertions=insertions, deletions=deletions)
            result = session.run()
            if ctx is not None:
                ctx.mark("apply")
                ctx.attrs["events_processed"] = int(
                    result.metrics.events_processed
                )
            applied: dict = {
                "kind": "batch",
                "insertions": len(insertions),
                "deletions": len(deletions),
                "events_processed": int(result.metrics.events_processed),
            }
        elif op.kind == "update":
            t_apply = perf_counter()
            express = session.apply_update(
                int(op.payload["u"]),
                int(op.payload["v"]),
                float(op.payload.get("w", 1.0)),
                op=op.payload.get("op", "insert"),
            )
            if ctx is not None:
                # Carve the classify stage out of the apply window using
                # the express lane's own split; the rest of the window is
                # the safe apply or the engine fallthrough.
                ctx.mark("classify", t=t_apply + express.classify_s)
                ctx.mark("apply")
                ctx.attrs["safe"] = express.safe
                ctx.attrs["reason"] = express.reason
            applied = {
                "kind": "update",
                "op": express.op,
                "safe": express.safe,
                "reason": express.reason,
                "express_latency_s": express.latency_s,
            }
        else:  # pragma: no cover - submit() only produces the two kinds
            raise ServeError(400, "BAD_KIND", f"unknown write kind {op.kind!r}")
        return applied

    # -- introspection -------------------------------------------------
    def queue_depth(self) -> int:
        """Write ops currently queued (not counting the in-flight one)."""
        return self._queue.qsize()

    def applied_log(self) -> dict:
        """The applied-write log plus the count of dropped-prefix entries.

        ``log`` holds the retained entries in apply order; ``dropped`` is
        how many oldest entries the ring bound evicted (0 when unbounded),
        so an auditor knows the first retained entry's position in the
        full write history.
        """
        with self._log_lock:
            return {"log": list(self._log), "dropped": self._log_dropped}

    def stats(self) -> dict:
        snapshot = self._snapshot
        transfers = self.session.transfer_stats()
        return {
            "session": self.name,
            "algorithm": self.session._engine.algorithm.name
            if self.session._engine is not None
            else None,
            "queue_depth": self.queue_depth(),
            "queue_bound": self.queue_bound,
            "log_bound": self.log_bound,
            "log_dropped": self._log_dropped,
            "applied_seq": snapshot.seq,
            "snapshot_stamp": snapshot.stamp,
            "graph_version": snapshot.graph_version,
            "history": {
                "keep_versions": self.keep_versions,
                "versions_held": len(self._history),
                "evicted": self._history_evicted,
            },
            "num_vertices": self.session.graph.num_vertices,
            "num_edges": self.session.graph.num_edges,
            "express": self.session.express_stats(),
            "transfers": {
                "graph_uploads": transfers.graph_uploads,
                "update_records": transfers.update_records,
                "results_read": transfers.results_read,
            },
            "store": self.session.graph_store_stats(),
        }

    # -- lifecycle / test hooks ----------------------------------------
    def pause_writer(self) -> None:
        """Park the writer between ops (deterministic backpressure tests)."""
        self._gate.clear()

    def resume_writer(self) -> None:
        self._gate.set()

    def close(self, drain: bool = True) -> None:
        """Stop the writer and release the session.

        ``drain=True`` (the default, and what shutdown uses) lets every
        already-queued op apply and answer its client before the session
        is torn down; ``drain=False`` abandons queued ops with a 409.
        """
        if self._closing:
            return
        self._closing = True
        self._gate.set()
        if not drain:
            # Fail queued ops fast, then let the sentinel end the loop.
            try:
                while True:
                    op = self._queue.get_nowait()
                    if op is not None:
                        op.error = ServeError(
                            409, "CLOSING", "session closed before apply"
                        )
                        op.done.set()
            except queue.Empty:
                pass
        # The sentinel queues *behind* any in-flight drain work; put()
        # blocks if the queue is momentarily full of real ops.
        self._queue.put(None)
        self._thread.join(timeout=60.0)
        self.session.close()


class ServeApp:
    """Session registry + request router (transport-independent core).

    The HTTP layer (:class:`ServeServer`) is a thin translation onto this
    object; tests can drive it directly without sockets.
    """

    def __init__(
        self,
        accelerator: Optional[Accelerator] = None,
        queue_bound: int = DEFAULT_QUEUE_BOUND,
        log_bound: Optional[int] = None,
    ):
        self.accelerator = accelerator or Accelerator()
        self.queue_bound = queue_bound
        self.log_bound = log_bound
        self.sessions: Dict[str, ServeSession] = {}
        self._lock = threading.Lock()  # registry mutation only
        self._names = itertools.count()
        self._closed = False

    # -- session lifecycle ---------------------------------------------
    def create_session(
        self,
        edges: List[Tuple[int, int, float]],
        algorithm: str,
        name: Optional[str] = None,
        source: int = 0,
        policy: str = DeletePolicy.DAP.value,
        engine: str = "auto",
        num_engines: int = 8,
        backend: str = "thread",
        symmetric: bool = False,
        num_vertices: int = 0,
        queue_bound: Optional[int] = None,
        log_bound: Optional[int] = None,
        keep_versions: Optional[int] = DEFAULT_KEEP_VERSIONS,
    ) -> ServeSession:
        """Load a graph, run the initial evaluation, register the session."""
        if self._closed:
            raise ServeError(409, "CLOSING", "server is shutting down")
        try:
            session = self.accelerator.load_graph(
                [(int(u), int(v), float(w)) for u, v, w in edges],
                num_vertices=num_vertices,
                symmetric=symmetric,
            )
            session.configure(
                algorithm,
                source=source,
                policy=DeletePolicy(policy),
                engine=engine,
                num_engines=num_engines,
                backend=backend,
            )
            session.run()  # initial evaluation: serve needs a converged state
            # Record graph deltas with the same retention as the snapshot
            # ring, so ?version= reads and delta reconstruction expire
            # together.
            session.enable_versioning(keep_versions=keep_versions)
        except (HostApiError, ValueError, KeyError) as exc:
            raise ServeError(400, "BAD_SESSION", str(exc))
        with self._lock:
            if name is None:
                name = f"s{next(self._names)}"
            if name in self.sessions:
                session.close()
                raise ServeError(409, "EXISTS", f"session {name!r} already open")
            served = ServeSession(
                name,
                session,
                queue_bound if queue_bound is not None else self.queue_bound,
                log_bound=log_bound if log_bound is not None else self.log_bound,
                keep_versions=keep_versions,
            )
            self.sessions[name] = served
        if METRICS.enabled:
            METRICS.record_serve_sessions(len(self.sessions))
        return served

    def get_session(self, name: str) -> ServeSession:
        served = self.sessions.get(name)
        if served is None:
            raise ServeError(404, "NO_SESSION", f"no session {name!r}")
        return served

    def close_session(self, name: str, drain: bool = True) -> None:
        with self._lock:
            served = self.sessions.pop(name, None)
        if served is None:
            raise ServeError(404, "NO_SESSION", f"no session {name!r}")
        served.close(drain=drain)
        if METRICS.enabled:
            METRICS.record_serve_sessions(len(self.sessions))

    def close(self, drain: bool = True) -> None:
        """Drain and close every session, then the accelerator."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            sessions = list(self.sessions.values())
            self.sessions.clear()
        for served in sessions:
            served.close(drain=drain)
        self.accelerator.close()

    # -- request handlers ----------------------------------------------
    def handle_read(
        self,
        name: str,
        vertices: Optional[List[int]] = None,
        version: Optional[int] = None,
    ) -> dict:
        """Serve a read from a published snapshot (lock-free).

        ``version=None`` reads the latest snapshot; an explicit version
        is a time-travel read from the retained ring (404
        ``VERSION_EVICTED`` once retention dropped it).
        """
        served = self.get_session(name)
        if version is None:
            snapshot = served.read_snapshot()
        else:
            snapshot = served.read_version(int(version))
        reply: dict = {
            "session": name,
            "seq": snapshot.seq,
            "stamp": snapshot.stamp,
            "graph_version": snapshot.graph_version,
            "historical": version is not None,
            "num_vertices": int(snapshot.states.shape[0]),
            "digest": snapshot.digest,
        }
        if vertices is not None:
            n = snapshot.states.shape[0]
            values = {}
            for v in vertices:
                v = int(v)
                if not 0 <= v < n:
                    raise ServeError(
                        400, "BAD_VERTEX", f"vertex {v} out of range [0, {n})"
                    )
                values[str(v)] = float(snapshot.states[v])
            reply["values"] = values
        return reply

    def handle_ingest(
        self, name: str, payload: dict, ctx: Optional[RequestContext] = None
    ) -> dict:
        return self.get_session(name).submit("batch", payload, ctx=ctx)

    def handle_update(
        self, name: str, payload: dict, ctx: Optional[RequestContext] = None
    ) -> dict:
        for key in ("u", "v"):
            if key not in payload:
                raise ServeError(400, "BAD_UPDATE", f"missing field {key!r}")
        if payload.get("op", "insert") not in ("insert", "delete"):
            raise ServeError(400, "BAD_UPDATE", "op must be insert|delete")
        return self.get_session(name).submit("update", payload, ctx=ctx)

    def healthz(self) -> dict:
        return {
            "status": "draining" if self._closed else "ok",
            "sessions": sorted(self.sessions),
        }


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes: the JSON-over-HTTP protocol (see docs/architecture.md).

    ======  ==============================  =====================================
    method  path                            action
    ======  ==============================  =====================================
    GET     /healthz                        liveness + open session names
    GET     /metrics, /metrics.json         shared scrape routes (registry)
    GET     /debug/requests                 slow-request ring + stage histograms
    POST    /sessions                       create session (graph + algorithm)
    GET     /sessions/<s>/read              snapshot read (never blocks on writes)
                [?vertices=][&version=]     version= = time-travel read (ring)
    GET     /sessions/<s>/stats             queue depth, transfers, express stats
    GET     /sessions/<s>/log               applied-write log (apply order)
    POST    /sessions/<s>/ingest            update batch (429 when queue full)
    POST    /sessions/<s>/update            single express update (429 when full)
    POST    /sessions/<s>/close             drain + close one session
    POST    /shutdown                       drain all sessions, stop the server
    ======  ==============================  =====================================
    """

    app: ServeApp  # set on the per-server subclass
    server_ref: "ServeServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass

    def _reply(self, status: int, payload: dict, head_only: bool = False) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        send_payload(self, status, "application/json", body, head_only)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(400, "BAD_JSON", f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServeError(400, "BAD_JSON", "request body must be an object")
        return payload

    def _route(self, method: str, head_only: bool = False) -> None:
        t0 = perf_counter()
        ctx = (
            REQUEST_LOG.open_request(method, self.path)
            if REQUEST_LOG.enabled
            else None
        )
        path, _, query = self.path.partition("?")
        if method == "GET" and path in ("/metrics", "/metrics.json"):
            # Shared scrape routes, mounted on the serving port.
            ctype, body = metrics_payload(METRICS, path)
            send_payload(self, 200, ctype, body, head_only)
            if ctx is not None:
                ctx.mark("respond")
                REQUEST_LOG.finish(ctx, "metrics", 200, registry=METRICS)
            if METRICS.enabled:
                METRICS.record_serve_request(
                    "metrics",
                    200,
                    perf_counter() - t0,
                    request_id=ctx.request_id if ctx is not None else None,
                )
            return
        parts = [p for p in path.split("/") if p]
        route = "unknown"
        status = 200
        try:
            route, status, payload = self._dispatch(
                method, path, parts, query, ctx
            )
            self._reply(status, payload, head_only)
            if ctx is not None:
                ctx.mark("respond")
        except ServeError as exc:
            status = exc.status
            self._reply(exc.status, {"error": exc.code, "message": exc.message})
            if ctx is not None:
                ctx.mark("respond")
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away mid-request
            self.close_connection = True
        finally:
            if ctx is not None:
                REQUEST_LOG.finish(ctx, route, status, registry=METRICS)
            if METRICS.enabled:
                METRICS.record_serve_request(
                    route,
                    status,
                    perf_counter() - t0,
                    request_id=ctx.request_id if ctx is not None else None,
                )

    def _dispatch(
        self,
        method: str,
        path: str,
        parts: List[str],
        query: str,
        ctx: Optional[RequestContext] = None,
    ) -> Tuple[str, int, dict]:
        app = self.app
        if method == "GET":
            if path in ("/healthz", "/"):
                return "healthz", 200, app.healthz()
            if path == "/debug/requests":
                return "debug", 200, REQUEST_LOG.debug_payload(METRICS)
            if len(parts) == 3 and parts[0] == "sessions":
                name, action = parts[1], parts[2]
                if action == "read":
                    vertices = _parse_vertices(query)
                    version = _parse_version(query)
                    if ctx is not None:
                        ctx.attrs["session"] = name
                        ctx.mark("parse")
                    reply = app.handle_read(name, vertices, version=version)
                    if ctx is not None:
                        ctx.mark("snapshot")
                    return "read", 200, reply
                if action == "stats":
                    return "stats", 200, app.get_session(name).stats()
                if action == "log":
                    return "log", 200, {
                        "session": name,
                        **app.get_session(name).applied_log(),
                    }
        elif method == "POST":
            if path == "/sessions":
                body = self._read_json()
                if ctx is not None:
                    ctx.mark("parse")
                if "edges" not in body or "algorithm" not in body:
                    raise ServeError(
                        400, "BAD_SESSION", "need 'edges' and 'algorithm'"
                    )
                # keep_versions: absent -> default ring, 0/null -> unbounded.
                keep_versions = body.get("keep_versions", DEFAULT_KEEP_VERSIONS)
                keep_versions = int(keep_versions) if keep_versions else None
                served = app.create_session(
                    body["edges"],
                    body["algorithm"],
                    name=body.get("name"),
                    source=int(body.get("source", 0)),
                    policy=body.get("policy", DeletePolicy.DAP.value),
                    engine=body.get("engine", "auto"),
                    num_engines=int(body.get("num_engines", 8)),
                    backend=body.get("backend", "thread"),
                    symmetric=bool(body.get("symmetric", False)),
                    num_vertices=int(body.get("num_vertices", 0)),
                    queue_bound=body.get("queue_bound"),
                    log_bound=body.get("log_bound"),
                    keep_versions=keep_versions,
                )
                if ctx is not None:
                    ctx.attrs["session"] = served.name
                    ctx.mark("apply")
                stats = served.stats()
                return "session", 201, {
                    "session": served.name,
                    "num_vertices": stats["num_vertices"],
                    "num_edges": stats["num_edges"],
                    "seq": stats["applied_seq"],
                }
            if path == "/shutdown":
                self.server_ref.request_shutdown()
                return "shutdown", 200, {"status": "draining"}
            if len(parts) == 3 and parts[0] == "sessions":
                name, action = parts[1], parts[2]
                if action == "ingest":
                    body = self._read_json()
                    if ctx is not None:
                        ctx.attrs["session"] = name
                        ctx.mark("parse")
                    return "ingest", 200, app.handle_ingest(name, body, ctx)
                if action == "update":
                    body = self._read_json()
                    if ctx is not None:
                        ctx.attrs["session"] = name
                        ctx.mark("parse")
                    return "update", 200, app.handle_update(name, body, ctx)
                if action == "close":
                    app.close_session(name)
                    return "session", 200, {"session": name, "closed": True}
        raise ServeError(404, "NO_ROUTE", f"no route {method} {path}")

    def do_GET(self):  # noqa: N802 (http.server API)
        self._route("GET")

    def do_HEAD(self):  # noqa: N802
        self._route("GET", head_only=True)

    def do_POST(self):  # noqa: N802
        self._route("POST")


def _parse_vertices(query: str) -> Optional[List[int]]:
    for part in query.split("&"):
        if part.startswith("vertices="):
            raw = part[len("vertices="):]
            if not raw:
                return []
            try:
                return [int(v) for v in raw.split(",")]
            except ValueError:
                raise ServeError(
                    400, "BAD_VERTEX", "vertices must be comma-separated ints"
                )
    return None


def _parse_version(query: str) -> Optional[int]:
    for part in query.split("&"):
        if part.startswith("version="):
            raw = part[len("version="):]
            try:
                return int(raw)
            except ValueError:
                raise ServeError(
                    400, "BAD_VERSION", "version must be an integer"
                )
    return None


class ServeServer:
    """The HTTP front end: ``ThreadingHTTPServer`` over a :class:`ServeApp`.

    Usage (also what ``repro serve`` does)::

        app = ServeApp(queue_bound=64)
        with ServeServer(app, port=8800) as server:
            server.serve_until_shutdown()   # Ctrl-C or POST /shutdown

    Requests are handled on per-connection threads; write handlers block
    on the per-session writer (bounded queue), read handlers return
    immediately from the published snapshot.
    """

    def __init__(self, app: ServeApp, port: int = 0, host: str = "127.0.0.1"):
        self.app = app
        self.host = host
        self._requested_port = port
        self._bound_port: Optional[int] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeServer":
        if self._server is not None:
            return self
        handler = type(
            "_BoundServeHandler",
            (_ServeHandler,),
            {"app": self.app, "server_ref": self},
        )
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._bound_port = self._server.server_address[1]
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Signal :meth:`serve_until_shutdown` to drain and stop."""
        self._shutdown_requested.set()

    def serve_until_shutdown(self, poll_s: float = 0.2) -> None:
        """Block until ``POST /shutdown`` or KeyboardInterrupt, then drain."""
        try:
            while not self._shutdown_requested.wait(poll_s):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful stop: close the listener, then drain every session."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._server = None
        self._thread = None
        self.app.close(drain=True)

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
