"""JetStream reproduction: event-driven streaming graph analytics.

Reproduces *JetStream: Graph Analytics on Streaming Data with Event-Driven
Hardware Accelerator* (MICRO 2021): the GraphPulse event-driven substrate,
JetStream's streaming insertion/deletion support with the VAP and DAP
optimizations, an architectural timing/energy model, the software baselines
(KickStarter, GraphBolt), and the full experiment harness.

Quickstart::

    from repro import DynamicGraph, JetStreamEngine, make_algorithm
    from repro.streams import StreamGenerator

    graph = DynamicGraph.from_edges([(0, 1, 2.0), (1, 2, 3.0)], 3)
    engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
    engine.initial_compute()
    stream = StreamGenerator(graph, seed=1)
    result = engine.apply_batch(stream.next_batch(1))
    print(result.states)
"""

from repro.algorithms import (
    Algorithm,
    AlgorithmKind,
    BFS,
    ConnectedComponents,
    PageRank,
    Adsorption,
    SSSP,
    SSWP,
    LinearSystemSolver,
    make_algorithm,
)
from repro.core import (
    AcceleratorConfig,
    SoftwareConfig,
    DeletePolicy,
    GraphPulseEngine,
    JetStreamEngine,
    StreamingResult,
)
from repro.graph import CSRGraph, DynamicGraph
from repro.streams import Edge, StreamGenerator, UpdateBatch

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "AlgorithmKind",
    "BFS",
    "ConnectedComponents",
    "PageRank",
    "Adsorption",
    "SSSP",
    "SSWP",
    "LinearSystemSolver",
    "make_algorithm",
    "AcceleratorConfig",
    "SoftwareConfig",
    "DeletePolicy",
    "GraphPulseEngine",
    "JetStreamEngine",
    "StreamingResult",
    "CSRGraph",
    "DynamicGraph",
    "Edge",
    "StreamGenerator",
    "UpdateBatch",
    "__version__",
]
