"""Synthetic stand-ins for the paper's five input graphs (Table 2).

The paper evaluates on Wikipedia (WK), Facebook (FB), LiveJournal (LJ),
UK-2002 (UK) and Twitter (TW). Those graphs are 45M–1.46B edges — far
beyond what a Python architectural model can sweep — and are anyway only
characterized in the paper by topology class:

* WK, UK — "narrow graphs with long paths" (web-crawl-like, high diameter)
* FB, LJ, TW — "large, highly connected networks" (social, low diameter,
  heavy-tailed degrees)

Each stand-in reproduces the class at laptop scale with the same *relative*
size ordering (TW largest, UK next, then LJ > FB ≈ WK). All are seeded and
deterministic. See DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph

Edge = Tuple[int, int, float]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic stand-in dataset."""

    key: str
    name: str
    paper_nodes: str
    paper_edges: str
    description: str
    num_vertices: int
    num_edges: int
    builder: Callable[["DatasetSpec", int], List[Edge]]

    def build_edges(self, seed: int = 0) -> List[Edge]:
        """Generate the (seeded) edge list for this dataset."""
        return self.builder(self, seed)


def _social(spec: DatasetSpec, seed: int) -> List[Edge]:
    edges = generators.rmat(spec.num_vertices, spec.num_edges, seed=seed)
    return generators.ensure_reachable_core(edges, spec.num_vertices, seed=seed + 1)


def _web(spec: DatasetSpec, seed: int) -> List[Edge]:
    edges = generators.long_path_web(spec.num_vertices, spec.num_edges, seed=seed)
    return generators.ensure_reachable_core(edges, spec.num_vertices, seed=seed + 1)


#: The five stand-ins, keyed the way the paper abbreviates them.
SPECS: Dict[str, DatasetSpec] = {
    "WK": DatasetSpec(
        key="WK",
        name="Wikipedia (stand-in)",
        paper_nodes="3.56M",
        paper_edges="45.03M",
        description="Wikipedia page links — narrow, long paths",
        num_vertices=6144,
        num_edges=36_864,
        builder=_web,
    ),
    "FB": DatasetSpec(
        key="FB",
        name="Facebook (stand-in)",
        paper_nodes="3.01M",
        paper_edges="47.33M",
        description="Facebook social network — highly connected",
        num_vertices=6144,
        num_edges=43_008,
        builder=_social,
    ),
    "LJ": DatasetSpec(
        key="LJ",
        name="LiveJournal (stand-in)",
        paper_nodes="4.84M",
        paper_edges="68.99M",
        description="LiveJournal social network — highly connected",
        num_vertices=8192,
        num_edges=57_344,
        builder=_social,
    ),
    "UK": DatasetSpec(
        key="UK",
        name="UK-2002 (stand-in)",
        paper_nodes="18.5M",
        paper_edges="298M",
        description=".uk domain web crawl — narrow, long paths",
        num_vertices=12_288,
        num_edges=73_728,
        builder=_web,
    ),
    "TW": DatasetSpec(
        key="TW",
        name="Twitter (stand-in)",
        paper_nodes="41.65M",
        paper_edges="1.46B",
        description="Twitter follower graph — highly connected, largest",
        num_vertices=16_384,
        num_edges=131_072,
        builder=_social,
    ),
}

#: Dataset ordering used across the paper's tables/figures.
ORDER = ["WK", "FB", "LJ", "UK", "TW"]


def load(key: str, seed: int = 0, symmetric: bool = False) -> DynamicGraph:
    """Build the stand-in dataset ``key`` as a :class:`DynamicGraph`."""
    spec = SPECS[key.upper()]
    edges = spec.build_edges(seed)
    if symmetric:
        dedup = {}
        for u, v, w in edges:
            if (v, u) not in dedup:
                dedup[(u, v)] = w
        graph = DynamicGraph(spec.num_vertices, symmetric=True)
        for (u, v), w in sorted(dedup.items()):
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, spec.num_vertices)


def load_csr(key: str, seed: int = 0) -> CSRGraph:
    """Build the stand-in dataset ``key`` as an immutable CSR snapshot."""
    return load(key, seed).snapshot()


def scaled_batch_size(key: str, paper_batch: int = 100_000) -> int:
    """Scale the paper's batch size to the stand-in graph size.

    The paper uses 100K-edge batches on graphs of 45M–1.46B edges, i.e. a
    batch is roughly 0.007%–0.2% of the edges. We keep the batch/graph edge
    ratio of the *paper's* graph so batch-size-relative effects are
    preserved.
    """
    spec = SPECS[key.upper()]
    paper_edges = {
        "WK": 45_030_000,
        "FB": 47_330_000,
        "LJ": 68_990_000,
        "UK": 298_000_000,
        "TW": 1_460_000_000,
    }[key.upper()]
    ratio = paper_batch / paper_edges
    # Keep the paper's batch:graph edge ratio exactly (floored at 16 so the
    # smallest batches still mix insertions and deletions); Fig. 13 sweeps
    # the absolute size anyway.
    return max(16, int(round(spec.num_edges * ratio)))


def table2_rows(seed: int = 0) -> List[Dict[str, str]]:
    """Rows for the Table 2 reproduction (paper scale vs stand-in scale)."""
    rows = []
    for key in ORDER:
        spec = SPECS[key]
        graph = load(key, seed)
        rows.append(
            {
                "graph": spec.name,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "standin_nodes": str(graph.num_vertices),
                "standin_edges": str(graph.num_edges),
                "description": spec.description,
            }
        )
    return rows
