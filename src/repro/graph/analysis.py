"""Graph statistics used to validate the dataset stand-ins.

DESIGN.md claims the stand-ins preserve the paper's topology classes:
WK/UK are "narrow graphs with long paths" (high effective diameter), while
FB/LJ/TW are "highly connected networks" (low diameter, heavy-tailed
degrees). These helpers quantify that, and the dataset tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass
class GraphProfile:
    """Summary statistics of one graph."""

    num_vertices: int
    num_edges: int
    max_out_degree: int
    mean_out_degree: float
    degree_skew: float
    effective_diameter: float
    reachable_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_out_degree": self.max_out_degree,
            "mean_out_degree": self.mean_out_degree,
            "degree_skew": self.degree_skew,
            "effective_diameter": self.effective_diameter,
            "reachable_fraction": self.reachable_fraction,
        }


def degree_distribution(csr: CSRGraph) -> np.ndarray:
    """Out-degree of every vertex."""
    return np.diff(csr.out_offsets)


def degree_skew(csr: CSRGraph) -> float:
    """Max-degree over mean-degree: ~1 for regular, large for power-law."""
    degrees = degree_distribution(csr)
    mean = degrees.mean() if degrees.size else 0.0
    return float(degrees.max() / mean) if mean else 0.0


def bfs_levels(csr: CSRGraph, root: int = 0) -> np.ndarray:
    """Hop distance from ``root`` (-1 = unreachable), array of ints."""
    levels = np.full(csr.num_vertices, -1, dtype=np.int64)
    levels[root] = 0
    frontier = [root]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in csr.out_neighbors(u):
                v = int(v)
                if levels[v] == -1:
                    levels[v] = depth
                    nxt.append(v)
        frontier = nxt
    return levels


def effective_diameter(
    csr: CSRGraph, root: int = 0, percentile: float = 90.0
) -> float:
    """The ``percentile``-th percentile of finite BFS depths from ``root``.

    The standard robust alternative to the exact diameter (which one
    stray path dominates).
    """
    levels = bfs_levels(csr, root)
    finite = levels[levels >= 0]
    if finite.size == 0:
        return 0.0
    return float(np.percentile(finite, percentile))


def reachable_fraction(csr: CSRGraph, root: int = 0) -> float:
    """Fraction of vertices reachable from ``root``."""
    levels = bfs_levels(csr, root)
    return float((levels >= 0).sum() / max(1, csr.num_vertices))


def component_sizes(csr: CSRGraph) -> List[int]:
    """Weakly connected component sizes, descending."""
    parent = list(range(csr.num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, _ in csr.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    counts: Dict[int, int] = {}
    for v in range(csr.num_vertices):
        root = find(v)
        counts[root] = counts.get(root, 0) + 1
    return sorted(counts.values(), reverse=True)


def profile(csr: CSRGraph, root: int = 0) -> GraphProfile:
    """Full :class:`GraphProfile` of a graph."""
    degrees = degree_distribution(csr)
    return GraphProfile(
        num_vertices=csr.num_vertices,
        num_edges=csr.num_edges,
        max_out_degree=int(degrees.max()) if degrees.size else 0,
        mean_out_degree=float(degrees.mean()) if degrees.size else 0.0,
        degree_skew=degree_skew(csr),
        effective_diameter=effective_diameter(csr, root),
        reachable_fraction=reachable_fraction(csr, root),
    )
