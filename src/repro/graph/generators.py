"""Seeded synthetic graph generators.

These substitute for the paper's downloaded datasets (Table 2): the
evaluation does not depend on the exact graphs, only on their topological
class ("narrow graphs with long paths" vs "large, highly connected
networks", §6.1). Every generator is deterministic given a seed.

All generators return plain edge lists ``[(u, v, w), ...]`` with no
duplicate directed edges, suitable for :class:`repro.graph.DynamicGraph`.
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

import numpy as np

Edge = Tuple[int, int, float]


def _weights(rng: np.random.Generator, count: int, weighted: bool) -> np.ndarray:
    if weighted:
        # Integer-ish distinct-leaning weights in [1, 64): keeps SSSP paths
        # well separated, which matters for the VAP optimization study.
        return rng.integers(1, 64, size=count).astype(np.float64)
    return np.ones(count, dtype=np.float64)


def rmat(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = True,
) -> List[Edge]:
    """Recursive-MATrix (Kronecker) power-law graph.

    The standard generator behind Graph500 and the social-network stand-ins
    (Facebook/LiveJournal/Twitter classes). ``a + b + c <= 1``; the
    remainder is the probability of the fourth quadrant.
    """
    if num_vertices < 2:
        raise ValueError("rmat needs at least 2 vertices")
    if not 0 < a + b + c <= 1:
        raise ValueError("quadrant probabilities must sum to at most 1")
    rng = np.random.default_rng(seed)
    scale = int(math.ceil(math.log2(num_vertices)))
    edges: Set[Tuple[int, int]] = set()
    probs = np.array([a, b, c, 1.0 - a - b - c])
    # Oversample: duplicates and out-of-range endpoints are discarded.
    attempts = 0
    max_attempts = 20 * num_edges + 100
    while len(edges) < num_edges and attempts < max_attempts:
        need = num_edges - len(edges)
        quadrants = rng.choice(4, size=(need, scale), p=probs)
        row_bit = (quadrants >= 2).astype(np.int64)
        col_bit = (quadrants % 2).astype(np.int64)
        powers = 1 << np.arange(scale - 1, -1, -1, dtype=np.int64)
        us = (row_bit * powers).sum(axis=1)
        vs = (col_bit * powers).sum(axis=1)
        for u, v in zip(us, vs):
            if u != v and u < num_vertices and v < num_vertices:
                edges.add((int(u), int(v)))
        attempts += need
    edge_arr = sorted(edges)
    w = _weights(rng, len(edge_arr), weighted)
    return [(u, v, float(wi)) for (u, v), wi in zip(edge_arr, w)]


def erdos_renyi(
    num_vertices: int, num_edges: int, seed: int = 0, weighted: bool = True
) -> List[Edge]:
    """Uniform random directed graph with exactly ``num_edges`` edges."""
    rng = np.random.default_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    max_possible = num_vertices * (num_vertices - 1)
    if num_edges > max_possible:
        raise ValueError("too many edges requested")
    while len(edges) < num_edges:
        need = num_edges - len(edges)
        us = rng.integers(0, num_vertices, size=2 * need + 8)
        vs = rng.integers(0, num_vertices, size=2 * need + 8)
        for u, v in zip(us, vs):
            if u != v:
                edges.add((int(u), int(v)))
                if len(edges) == num_edges:
                    break
    edge_arr = sorted(edges)
    w = _weights(rng, len(edge_arr), weighted)
    return [(u, v, float(wi)) for (u, v), wi in zip(edge_arr, w)]


def watts_strogatz(
    num_vertices: int,
    k: int = 4,
    rewire_p: float = 0.1,
    seed: int = 0,
    weighted: bool = True,
) -> List[Edge]:
    """Small-world ring lattice with random rewiring (directed both ways)."""
    if k % 2 or k <= 0:
        raise ValueError("k must be a positive even integer")
    rng = np.random.default_rng(seed)
    pairs: Set[Tuple[int, int]] = set()
    for u in range(num_vertices):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % num_vertices
            if rng.random() < rewire_p:
                v = int(rng.integers(0, num_vertices))
            if u != v:
                pairs.add((u, v))
                pairs.add((v, u))
    edge_arr = sorted(pairs)
    w = _weights(rng, len(edge_arr), weighted)
    return [(u, v, float(wi)) for (u, v), wi in zip(edge_arr, w)]


def long_path_web(
    num_vertices: int,
    num_edges: int,
    backbone_fraction: float = 0.45,
    seed: int = 0,
    weighted: bool = True,
) -> List[Edge]:
    """Web-crawl-like graph: long directed chains plus sparse cross links.

    Models the "narrow graphs with long paths" class (Wikipedia, UK-2002):
    a few long backbone chains (deep site hierarchies) connected by
    power-law cross edges. Diameter grows with ``backbone_fraction``.
    """
    rng = np.random.default_rng(seed)
    edges: Set[Tuple[int, int]] = set()
    n_backbone = max(2, int(num_vertices * backbone_fraction))
    # Several parallel chains over a shuffled vertex order.
    order = rng.permutation(num_vertices)
    chains = max(1, n_backbone // 512)
    chain_len = n_backbone // chains
    idx = 0
    for _ in range(chains):
        chain = order[idx : idx + chain_len]
        idx += chain_len
        for i in range(len(chain) - 1):
            edges.add((int(chain[i]), int(chain[i + 1])))
    # Power-law cross links for the remainder.
    remaining = max(0, num_edges - len(edges))
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    popularity = 1.0 / ranks
    popularity /= popularity.sum()
    attempts = 0
    while len(edges) < num_edges and attempts < 20 * remaining + 100:
        need = num_edges - len(edges)
        us = rng.integers(0, num_vertices, size=need + 8)
        vs = rng.choice(num_vertices, size=need + 8, p=popularity)
        for u, v in zip(us, vs):
            if u != v:
                edges.add((int(u), int(v)))
                if len(edges) >= num_edges:
                    break
        attempts += need
    edge_arr = sorted(edges)
    w = _weights(rng, len(edge_arr), weighted)
    return [(u, v, float(wi)) for (u, v), wi in zip(edge_arr, w)]


def grid_road(
    rows: int, cols: int, seed: int = 0, diagonal_p: float = 0.05
) -> List[Edge]:
    """Planar grid road network with weights ~ travel times (both ways)."""
    rng = np.random.default_rng(seed)
    edges: List[Edge] = []

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            if c + 1 < cols:
                w = float(rng.integers(1, 16))
                edges.append((u, vid(r, c + 1), w))
                edges.append((vid(r, c + 1), u, w))
            if r + 1 < rows:
                w = float(rng.integers(1, 16))
                edges.append((u, vid(r + 1, c), w))
                edges.append((vid(r + 1, c), u, w))
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_p:
                w = float(rng.integers(1, 24))
                edges.append((u, vid(r + 1, c + 1), w))
                edges.append((vid(r + 1, c + 1), u, w))
    return edges


def ensure_reachable_core(
    edges: List[Edge], num_vertices: int, root: int = 0, seed: int = 0
) -> List[Edge]:
    """Add minimal edges so that a large fraction of vertices is reachable
    from ``root``.

    Synthetic power-law digraphs can strand many vertices; queries rooted at
    ``root`` would then trivially ignore them, weakening the experiments.
    We stitch unreachable vertices to random reachable ones.
    """
    rng = np.random.default_rng(seed)
    out: dict = {}
    existing = set()
    for u, v, _ in edges:
        out.setdefault(u, []).append(v)
        existing.add((u, v))
    reachable = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for v in out.get(u, ()):
                if v not in reachable:
                    reachable.add(v)
                    nxt.append(v)
        frontier = nxt
    edges = list(edges)
    reachable_list = sorted(reachable)
    for v in range(num_vertices):
        if v not in reachable:
            u = int(rng.choice(reachable_list))
            if (u, v) not in existing:
                edges.append((u, v, float(rng.integers(1, 64))))
                existing.add((u, v))
            reachable.add(v)
            reachable_list.append(v)
    return edges


def largest_weakly_connected(edges: List[Edge], num_vertices: int) -> Tuple[List[Edge], int]:
    """Restrict to the largest weakly connected component, re-labelling ids.

    Returns the filtered/relabelled edge list and the new vertex count.
    """
    parent = list(range(num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, _ in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    sizes: dict = {}
    for v in range(num_vertices):
        sizes[find(v)] = sizes.get(find(v), 0) + 1
    big = max(sizes, key=sizes.get)
    keep = [v for v in range(num_vertices) if find(v) == big]
    relabel = {v: i for i, v in enumerate(keep)}
    new_edges = [
        (relabel[u], relabel[v], w) for u, v, w in edges if find(u) == big and find(v) == big
    ]
    return new_edges, len(keep)
