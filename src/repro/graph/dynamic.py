"""Mutable, versioned graph — the host-side graph store.

The paper (§4.7) leaves evolving-edge-list maintenance to a software graph
versioning framework on the host (e.g. GraphOne / Version Traveler) and has
the host hand the accelerator a fresh CSR pointer after every batch.
:class:`DynamicGraph` plays that role here: it applies
:class:`repro.streams.UpdateBatch` mutations, bumps a version counter, and
emits immutable :class:`~repro.graph.csr.CSRGraph` snapshots.

Two snapshot flavours exist because accumulative deletion (§3.5, Fig. 5)
needs an *intermediate* graph in which every mutated source vertex is turned
into a sink (all its out-edges dropped) to break cyclic re-propagation.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.csr import CSRGraph

Edge = Tuple[int, int, float]


class GraphMutationError(ValueError):
    """Raised for invalid mutations (missing edge delete, duplicate insert)."""


def build_symmetric_graph(
    edges: Iterable[Edge],
    num_vertices: int = 0,
    on_conflict: str = "warn",
) -> "DynamicGraph":
    """Build a symmetric :class:`DynamicGraph` from a directed edge list.

    A symmetric graph mirrors every insertion, so an input that lists both
    ``(u, v)`` and ``(v, u)`` would double-insert; such reverse (and exact)
    duplicates collapse to one undirected edge, first occurrence wins. When
    a discarded duplicate carries a *different* weight the collapse is
    lossy — ``on_conflict`` selects the response: ``"warn"`` (default)
    emits a :class:`UserWarning`, ``"raise"`` raises
    :class:`GraphMutationError`, ``"silent"`` keeps the old quiet
    behaviour.

    ``num_vertices`` is a floor on the vertex count, for inputs whose
    trailing vertices have no edges.
    """
    if on_conflict not in ("warn", "raise", "silent"):
        raise ValueError(
            f"on_conflict must be 'warn', 'raise', or 'silent', "
            f"not {on_conflict!r}"
        )
    graph = DynamicGraph(num_vertices, symmetric=True)
    kept: Dict[Tuple[int, int], float] = {}
    for u, v, w in edges:
        key = (u, v) if u <= v else (v, u)
        w = float(w)
        if key in kept:
            if w != kept[key] and on_conflict != "silent":
                msg = (
                    f"duplicate edge {u}->{v} weight {w} conflicts with "
                    f"already-kept weight {kept[key]}; first occurrence wins"
                )
                if on_conflict == "raise":
                    raise GraphMutationError(msg)
                warnings.warn(msg, stacklevel=2)
            continue
        kept[key] = w
        graph.add_edge(u, v, w, _count_version=False)
    return graph


class DynamicGraph:
    """Adjacency-map graph supporting batched edge insertion and deletion.

    Parameters
    ----------
    num_vertices:
        Initial vertex count. Grows automatically when an inserted edge
        references a larger id (vertex addition is modelled as the first
        edge touching the vertex, per §2.1).
    symmetric:
        When true every mutation is mirrored, keeping the edge set
        symmetric. Used for Connected Components, whose tag/request
        propagation must travel both directions.
    """

    def __init__(self, num_vertices: int = 0, symmetric: bool = False):
        self.num_vertices = int(num_vertices)
        self.symmetric = bool(symmetric)
        self.version = 0
        self._out: Dict[int, Dict[int, float]] = {}
        self._in: Dict[int, Dict[int, float]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: int = 0, symmetric: bool = False
    ) -> "DynamicGraph":
        """Build a graph from an initial edge list (version 0)."""
        graph = cls(num_vertices, symmetric=symmetric)
        for u, v, w in edges:
            graph.add_edge(u, v, w, _count_version=False)
        return graph

    @classmethod
    def from_csr(cls, csr: CSRGraph, symmetric: bool = False) -> "DynamicGraph":
        """Build a dynamic graph mirroring a CSR snapshot."""
        return cls.from_edges(csr.edges(), csr.num_vertices, symmetric=symmetric)

    # ------------------------------------------------------------------
    # Single-edge mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, w: float = 1.0, _count_version: bool = True) -> None:
        """Insert directed edge ``u -> v`` (and mirror when symmetric)."""
        self._grow(max(u, v) + 1)
        self._insert_one(u, v, w)
        if self.symmetric and u != v:
            self._insert_one(v, u, w)
        if _count_version:
            self.version += 1

    def remove_edge(self, u: int, v: int, _count_version: bool = True) -> float:
        """Delete directed edge ``u -> v``; returns its weight."""
        w = self._remove_one(u, v)
        if self.symmetric and u != v:
            self._remove_one(v, u)
        if _count_version:
            self.version += 1
        return w

    def _insert_one(self, u: int, v: int, w: float) -> None:
        out_u = self._out.setdefault(u, {})
        if v in out_u:
            raise GraphMutationError(
                f"edge {u}->{v} already exists; model weight change as "
                "delete followed by insert (per paper §2.1)"
            )
        out_u[v] = float(w)
        self._in.setdefault(v, {})[u] = float(w)
        self._num_edges += 1

    def _remove_one(self, u: int, v: int) -> float:
        try:
            w = self._out[u].pop(v)
        except KeyError:
            raise GraphMutationError(f"cannot delete missing edge {u}->{v}") from None
        del self._in[v][u]
        self._num_edges -= 1
        return w

    def _grow(self, n: int) -> None:
        if n > self.num_vertices:
            self.num_vertices = n

    # ------------------------------------------------------------------
    # Batched mutation
    # ------------------------------------------------------------------
    def apply_batch(self, insertions: Iterable[Edge], deletions: Iterable[Tuple[int, int]]) -> None:
        """Apply a batch: deletions first, then insertions; bumps version.

        The order matches the engine's phase schedule (delete phase precedes
        insertion processing, Algorithm 5/6) and allows a weight change to be
        expressed as ``delete(u, v)`` + ``insert(u, v, w')`` in one batch.
        """
        for u, v in deletions:
            self.remove_edge(u, v, _count_version=False)
        for u, v, w in insertions:
            self.add_edge(u, v, w, _count_version=False)
        self.version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """True if edge ``u -> v`` is present."""
        return v in self._out.get(u, ())

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of ``u -> v``; raises ``KeyError`` if absent."""
        return self._out[u][v]

    def out_degree(self, u: int) -> int:
        """Current out-degree of ``u``."""
        return len(self._out.get(u, ()))

    def in_degree(self, v: int) -> int:
        """Current in-degree of ``v``."""
        return len(self._in.get(v, ()))

    def out_edges(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target, weight)`` pairs for ``u``'s out-edges."""
        return iter(self._out.get(u, {}).items())

    def in_edges(self, v: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(source, weight)`` pairs for ``v``'s in-edges."""
        return iter(self._in.get(v, {}).items())

    @property
    def num_edges(self) -> int:
        """Number of directed edges currently stored."""
        return self._num_edges

    def edges(self) -> Iterator[Edge]:
        """Yield every directed edge ``(u, v, w)``."""
        for u, targets in self._out.items():
            for v, w in targets.items():
                yield u, v, w

    # ------------------------------------------------------------------
    # Snapshots for the accelerator
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Immutable CSR snapshot of the current version."""
        return CSRGraph(self.num_vertices, self.edges())

    def snapshot_with_sinks(self, sink_vertices: Set[int]) -> CSRGraph:
        """CSR snapshot with all out-edges of ``sink_vertices`` removed.

        This is the *intermediate graph* of Fig. 5: mutated sources become
        complete sinks so their stale contributions can be drained without
        cyclic re-propagation. The paper notes this is cheap in hardware
        (edge-pointer adjustment); here we materialize a filtered snapshot.
        """
        edges = [e for e in self.edges() if e[0] not in sink_vertices]
        return CSRGraph(self.num_vertices, edges)


class DeltaVersionStore:
    """Delta-encoded graph version history (Version Traveler substitute).

    Stores one base edge list plus per-version deltas (insertions and
    deletions), reconstructing any retained version on demand — the
    memory-efficient end of the versioning spectrum, versus
    :class:`GraphVersionStore`'s full snapshots. §4.7 allows either: the
    accelerator only needs a CSR view of the requested version.
    """

    def __init__(self, graph: DynamicGraph):
        self.graph = graph
        self._base_version = graph.version
        self._base_edges: List[Edge] = sorted(graph.edges())
        self._base_vertices = graph.num_vertices
        #: version -> (insertions, deletion keys), ordered.
        self._deltas: List[Tuple[int, List[Edge], List[Tuple[int, int]]]] = []

    def record_batch(
        self, insertions: Iterable[Edge], deletions: Iterable[Tuple[int, int]]
    ) -> None:
        """Record the delta that produced the graph's *current* version.

        Call right after ``graph.apply_batch(insertions, deletions)``.
        """
        self._deltas.append(
            (self.graph.version, list(insertions), list(deletions))
        )

    def versions(self) -> List[int]:
        """All reconstructible versions, oldest first."""
        return [self._base_version] + [v for v, _, _ in self._deltas]

    def reconstruct(self, version: int) -> CSRGraph:
        """Rebuild the CSR snapshot of ``version`` from base + deltas."""
        if version == self._base_version:
            return CSRGraph(self._base_vertices, self._base_edges)
        edges: Dict[Tuple[int, int], float] = {
            (u, v): w for u, v, w in self._base_edges
        }
        num_vertices = self._base_vertices
        found = False
        for delta_version, insertions, deletions in self._deltas:
            for key in deletions:
                edges.pop(key, None)
            for u, v, w in insertions:
                edges[(u, v)] = w
                num_vertices = max(num_vertices, u + 1, v + 1)
            if delta_version == version:
                found = True
                break
        if not found:
            raise KeyError(f"version {version} not recorded")
        return CSRGraph(
            num_vertices, [(u, v, w) for (u, v), w in sorted(edges.items())]
        )

    def delta_bytes(self) -> int:
        """Approximate storage of the delta log (16 B per record)."""
        return sum(
            16 * (len(ins) + len(dels)) for _, ins, dels in self._deltas
        )


class GraphVersionStore:
    """Retains CSR snapshots per version (Version Traveler substitute).

    The accelerator model only ever needs the latest snapshot plus, during
    accumulative deletion, the matching intermediate graph — but keeping the
    history around supports the temporal-analysis example and lets tests
    diff versions.
    """

    def __init__(self, graph: DynamicGraph, capacity: Optional[int] = None):
        self.graph = graph
        self.capacity = capacity
        self._versions: List[Tuple[int, CSRGraph]] = []
        self.record()

    def record(self) -> CSRGraph:
        """Snapshot the current graph version and remember it."""
        snap = self.graph.snapshot()
        self._versions.append((self.graph.version, snap))
        if self.capacity is not None and len(self._versions) > self.capacity:
            self._versions.pop(0)
        return snap

    def latest(self) -> CSRGraph:
        """Most recently recorded snapshot."""
        return self._versions[-1][1]

    def get(self, version: int) -> CSRGraph:
        """Snapshot recorded for ``version``; raises ``KeyError`` if evicted."""
        for ver, snap in self._versions:
            if ver == version:
                return snap
        raise KeyError(f"version {version} not retained")

    def versions(self) -> List[int]:
        """Versions currently retained, oldest first."""
        return [ver for ver, _ in self._versions]

    def __len__(self) -> int:
        return len(self._versions)
