"""Mutable, versioned graph — the array-native host-side graph store.

The paper (§4.7) leaves evolving-edge-list maintenance to a software graph
versioning framework on the host (e.g. GraphOne / Version Traveler) and has
the host hand the accelerator a fresh CSR pointer after every batch.
:class:`DynamicGraph` plays that role here: it applies
:class:`repro.streams.UpdateBatch` mutations, bumps a version counter, and
emits immutable :class:`~repro.graph.csr.CSRGraph` snapshots.

Storage is a structure of arrays in the GraphOne style: each direction
keeps one globally sorted int64 *composite key* array (``src << shift |
dst`` for the out-direction, ``dst << shift | src`` for the in-direction),
a parallel weight array, and per-vertex offsets — i.e. the CSR arrays
themselves, maintained incrementally. A Python dict keyed by ``(u, v)``
mirrors the live edge set for O(1) membership/weight queries and mutation
validation; single-edge mutations only touch the dict and are folded into
the arrays lazily (copy-on-write splice) when a snapshot or adjacency
query needs them. Splice cost scales with ``batch + E`` memcpy (one
vectorized compress/insert pass) rather than the old ``O(E log E)``
Python-iterate-and-lexsort rebuild, and the per-batch Python cost scales
with the batch alone.

Because the key arrays are kept in exactly the order
:func:`repro.graph.csr._build_csr` produces (sorted by source then target,
resp. target then source), a snapshot is a zero-sort view: the offsets and
weights are handed to :meth:`CSRGraph._from_parts` directly and the
target/source columns are recovered with one mask each. Snapshots are
copy-on-write safe — every flush allocates fresh arrays — and cached per
mutation state, so back-to-back ``snapshot()`` calls (the streaming
orchestrator takes one before and one after each batch) cost nothing.

Two snapshot flavours exist because accumulative deletion (§3.5, Fig. 5)
needs an *intermediate* graph in which every mutated source vertex is
turned into a sink (all its out-edges dropped) to break cyclic
re-propagation; :meth:`snapshot_with_sinks` builds it with boolean edge
masks instead of a full Python-filtered rebuild.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, _build_csr

Edge = Tuple[int, int, float]


class GraphMutationError(ValueError):
    """Raised for invalid mutations (missing edge delete, duplicate insert)."""


def build_symmetric_graph(
    edges: Iterable[Edge],
    num_vertices: int = 0,
    on_conflict: str = "warn",
) -> "DynamicGraph":
    """Build a symmetric :class:`DynamicGraph` from a directed edge list.

    A symmetric graph mirrors every insertion, so an input that lists both
    ``(u, v)`` and ``(v, u)`` would double-insert; such reverse (and exact)
    duplicates collapse to one undirected edge, first occurrence wins. When
    a discarded duplicate carries a *different* weight the collapse is
    lossy — ``on_conflict`` selects the response: ``"warn"`` (default)
    emits a :class:`UserWarning`, ``"raise"`` raises
    :class:`GraphMutationError`, ``"silent"`` keeps the old quiet
    behaviour.

    ``num_vertices`` is a floor on the vertex count, for inputs whose
    trailing vertices have no edges.
    """
    if on_conflict not in ("warn", "raise", "silent"):
        raise ValueError(
            f"on_conflict must be 'warn', 'raise', or 'silent', "
            f"not {on_conflict!r}"
        )
    graph = DynamicGraph(num_vertices, symmetric=True)
    kept: Dict[Tuple[int, int], float] = {}
    for u, v, w in edges:
        key = (u, v) if u <= v else (v, u)
        w = float(w)
        if key in kept:
            if w != kept[key] and on_conflict != "silent":
                msg = (
                    f"duplicate edge {u}->{v} weight {w} conflicts with "
                    f"already-kept weight {kept[key]}; first occurrence wins"
                )
                if on_conflict == "raise":
                    raise GraphMutationError(msg)
                warnings.warn(msg, stacklevel=2)
            continue
        kept[key] = w
        graph.add_edge(u, v, w, _count_version=False)
    return graph


class _DirectedCSR:
    """One direction of the incremental dual-CSR store.

    ``keys`` is a globally sorted int64 array of ``major << shift | minor``
    composite keys (major = the CSR grouping vertex), ``weights`` the
    parallel edge weights, ``offsets`` the per-major CSR offsets. All
    updates are copy-on-write: a splice allocates fresh arrays, so CSR
    snapshots holding the previous arrays stay valid.
    """

    __slots__ = ("keys", "weights", "offsets")

    def __init__(self, num_vertices: int):
        self.keys = np.empty(0, dtype=np.int64)
        self.weights = np.empty(0, dtype=np.float64)
        self.offsets = np.zeros(num_vertices + 1, dtype=np.int64)

    def rebuild(
        self,
        shift: int,
        majors: np.ndarray,
        minors: np.ndarray,
        weights: np.ndarray,
        num_vertices: int,
    ) -> None:
        """Bulk (re)build from unsorted parallel arrays."""
        keys = (majors.astype(np.int64) << shift) | minors.astype(np.int64)
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.weights = np.asarray(weights, dtype=np.float64)[order]
        counts = np.bincount(majors, minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self.offsets = offsets

    def grow(self, num_vertices: int) -> None:
        """Extend the offsets to cover newly created (isolated) vertices."""
        missing = num_vertices + 1 - len(self.offsets)
        if missing > 0:
            tail = np.full(missing, self.offsets[-1], dtype=np.int64)
            self.offsets = np.concatenate([self.offsets, tail])

    def rekey(self, old_shift: int, new_shift: int) -> None:
        """Widen the composite-key stride (vertex-capacity growth).

        Keys stay sorted: the mapping is monotone in (major, minor).
        """
        majors = self.keys >> old_shift
        minors = self.keys - (majors << old_shift)
        self.keys = (majors << new_shift) | minors

    def splice(
        self,
        shift: int,
        del_keys: np.ndarray,
        ins_keys: np.ndarray,
        ins_weights: np.ndarray,
    ) -> None:
        """Remove ``del_keys`` and merge ``ins_keys`` (both sorted).

        Every deleted key must be present and every inserted key absent
        (the caller's dict index guarantees it). One vectorized
        compress-plus-merge pass; the offsets are updated from the touched
        majors' degree deltas, so the Python-level cost is O(batch) and
        the array cost one memcpy of each direction.
        """
        keys, weights = self.keys, self.weights
        if len(del_keys):
            pos = np.searchsorted(keys, del_keys)
            keep = np.ones(len(keys), dtype=bool)
            keep[pos] = False
            keys, weights = keys[keep], weights[keep]
        if len(ins_keys):
            pos = np.searchsorted(keys, ins_keys)
            keys = np.insert(keys, pos, ins_keys)
            weights = np.insert(weights, pos, ins_weights)
        self.keys, self.weights = keys, weights

        delta = np.zeros(len(self.offsets), dtype=np.int64)
        if len(ins_keys):
            np.add.at(delta, (ins_keys >> shift) + 1, 1)
        if len(del_keys):
            np.subtract.at(delta, (del_keys >> shift) + 1, 1)
        self.offsets = self.offsets + np.cumsum(delta)


class DynamicGraph:
    """Array-native graph supporting batched edge insertion and deletion.

    Parameters
    ----------
    num_vertices:
        Initial vertex count. Grows automatically when an inserted edge
        references a larger id (vertex addition is modelled as the first
        edge touching the vertex, per §2.1).
    symmetric:
        When true every mutation is mirrored, keeping the edge set
        symmetric. Used for Connected Components, whose tag/request
        propagation must travel both directions.
    incremental_snapshots:
        When true (default) ``snapshot()`` maintains the CSR arrays by
        splicing the touched adjacency runs; when false every snapshot is
        a from-scratch rebuild (:meth:`rebuild_snapshot`) — the
        pre-incremental behaviour, kept as the benchmark comparator and
        fuzz oracle.
    """

    def __init__(
        self,
        num_vertices: int = 0,
        symmetric: bool = False,
        incremental_snapshots: bool = True,
    ):
        self.num_vertices = int(num_vertices)
        self.symmetric = bool(symmetric)
        self.incremental_snapshots = bool(incremental_snapshots)
        self.version = 0
        #: Live directed edge set: ``(u, v) -> weight``. The source of
        #: truth for membership; the arrays lag behind until a flush.
        self._index: Dict[Tuple[int, int], float] = {}
        self._shift = self._shift_for(self.num_vertices)
        self._out = _DirectedCSR(self.num_vertices)  # major=src, minor=dst
        self._in = _DirectedCSR(self.num_vertices)  # major=dst, minor=src
        #: Directed edges mutated since the last flush.
        self._touched: Set[Tuple[int, int]] = set()
        #: Monotone mutation stamp (version alone misses
        #: ``_count_version=False`` edits); keys the snapshot cache.
        self._mutations = 0
        self._snapshot_cache: Optional[Tuple[int, CSRGraph]] = None
        #: Host-side store instrumentation (exposed via
        #: :meth:`store_stats` and the host session facade).
        self._stats = {
            "batches_applied": 0,
            "edges_spliced": 0,
            "flushes": 0,
            "snapshot_builds": 0,
            "snapshot_cache_hits": 0,
            "full_rebuilds": 0,
        }

    @staticmethod
    def _shift_for(num_vertices: int) -> int:
        """Composite-key stride: smallest power of two >= num_vertices."""
        return max(1, int(num_vertices - 1).bit_length()) if num_vertices > 1 else 1

    @property
    def _capacity(self) -> int:
        return 1 << self._shift

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: int = 0, symmetric: bool = False
    ) -> "DynamicGraph":
        """Build a graph from an initial edge list (version 0)."""
        graph = cls(num_vertices, symmetric=symmetric)
        for u, v, w in edges:
            graph.add_edge(u, v, w, _count_version=False)
        return graph

    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        wgt: np.ndarray,
        num_vertices: int = 0,
        symmetric: bool = False,
    ) -> "DynamicGraph":
        """Bulk-build from parallel arrays (no per-edge Python mutation).

        Semantics match :meth:`from_edges`: duplicate directed edges (after
        symmetric mirroring) raise :class:`GraphMutationError`, vertex
        count grows to cover the largest referenced id.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        wgt = np.asarray(wgt, dtype=np.float64)
        if len(src) and (src.min() < 0 or dst.min() < 0):
            raise GraphMutationError("vertex ids must be non-negative")
        n = int(num_vertices)
        if len(src):
            n = max(n, int(src.max()) + 1, int(dst.max()) + 1)
        if symmetric and len(src):
            mirror = src != dst  # self-loops are their own mirror
            src = np.concatenate([src, dst[mirror]])
            dst = np.concatenate([dst, src[: len(mirror)][mirror]])
            wgt = np.concatenate([wgt, wgt[mirror]])
        graph = cls(n, symmetric=symmetric)
        shift = graph._shift
        keys = (src << shift) | dst
        if len(np.unique(keys)) != len(keys):
            raise GraphMutationError(
                "duplicate edge in bulk load; model weight change as "
                "delete followed by insert (per paper §2.1)"
            )
        graph._out.rebuild(shift, src, dst, wgt, n)
        graph._in.rebuild(shift, dst, src, wgt, n)
        graph._index = {
            (int(u), int(v)): float(w) for u, v, w in zip(src, dst, wgt)
        }
        return graph

    @classmethod
    def from_csr(cls, csr: CSRGraph, symmetric: bool = False) -> "DynamicGraph":
        """Build a dynamic graph mirroring a CSR snapshot."""
        src, dst, wgt = csr.edge_arrays()
        return cls.from_arrays(
            src, dst, wgt, csr.num_vertices, symmetric=symmetric
        )

    # ------------------------------------------------------------------
    # Single-edge mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, w: float = 1.0, _count_version: bool = True) -> None:
        """Insert directed edge ``u -> v`` (and mirror when symmetric)."""
        if u < 0 or v < 0:
            raise GraphMutationError("vertex ids must be non-negative")
        self._grow(max(u, v) + 1)
        self._insert_one(u, v, w)
        if self.symmetric and u != v:
            self._insert_one(v, u, w)
        if _count_version:
            self.version += 1

    def remove_edge(self, u: int, v: int, _count_version: bool = True) -> float:
        """Delete directed edge ``u -> v``; returns its weight."""
        w = self._remove_one(u, v)
        if self.symmetric and u != v:
            self._remove_one(v, u)
        if _count_version:
            self.version += 1
        return w

    def _insert_one(self, u: int, v: int, w: float) -> None:
        key = (u, v)
        if key in self._index:
            raise GraphMutationError(
                f"edge {u}->{v} already exists; model weight change as "
                "delete followed by insert (per paper §2.1)"
            )
        self._index[key] = float(w)
        self._touched.add(key)
        self._mutations += 1

    def _remove_one(self, u: int, v: int) -> float:
        try:
            w = self._index.pop((u, v))
        except KeyError:
            raise GraphMutationError(f"cannot delete missing edge {u}->{v}") from None
        self._touched.add((u, v))
        self._mutations += 1
        return w

    def _grow(self, n: int) -> None:
        if n > self.num_vertices:
            self.num_vertices = n
            self._mutations += 1

    # ------------------------------------------------------------------
    # Batched mutation
    # ------------------------------------------------------------------
    def apply_batch(self, insertions: Iterable[Edge], deletions: Iterable[Tuple[int, int]]) -> None:
        """Apply a batch: deletions first, then insertions; bumps version.

        The order matches the engine's phase schedule (delete phase precedes
        insertion processing, Algorithm 5/6) and allows a weight change to be
        expressed as ``delete(u, v)`` + ``insert(u, v, w')`` in one batch.
        """
        for u, v in deletions:
            self.remove_edge(u, v, _count_version=False)
        for u, v, w in insertions:
            self.add_edge(u, v, w, _count_version=False)
        self.version += 1
        self._stats["batches_applied"] += 1

    # ------------------------------------------------------------------
    # Lazy flush: fold dict-level mutations into the CSR arrays
    # ------------------------------------------------------------------
    def _sync_capacity(self) -> None:
        if self.num_vertices > self._capacity:
            new_shift = self._shift_for(self.num_vertices)
            self._out.rekey(self._shift, new_shift)
            self._in.rekey(self._shift, new_shift)
            self._shift = new_shift
        self._out.grow(self.num_vertices)
        self._in.grow(self.num_vertices)

    def _flush(self) -> None:
        """Splice all pending mutations into both CSR directions.

        Pending edits are net-resolved against the base arrays: an edge
        deleted and re-added with its old weight is a no-op, a weight
        change is one delete plus one insert. Python cost is O(touched);
        array cost is one compress/merge memcpy per direction.
        """
        self._sync_capacity()
        if not self._touched:
            return
        shift = self._shift
        t = len(self._touched)
        t_u = np.empty(t, dtype=np.int64)
        t_v = np.empty(t, dtype=np.int64)
        cur_has = np.empty(t, dtype=bool)
        cur_w = np.empty(t, dtype=np.float64)
        index = self._index
        for i, key in enumerate(self._touched):
            t_u[i], t_v[i] = key
            w = index.get(key)
            cur_has[i] = w is not None
            cur_w[i] = w if w is not None else 0.0

        out_keys = (t_u << shift) | t_v
        order = np.argsort(out_keys)
        t_u, t_v = t_u[order], t_v[order]
        out_keys, cur_has, cur_w = out_keys[order], cur_has[order], cur_w[order]

        base_keys = self._out.keys
        pos = np.searchsorted(base_keys, out_keys)
        guarded = np.minimum(pos, max(len(base_keys) - 1, 0))
        in_base = (
            (pos < len(base_keys)) & (base_keys[guarded] == out_keys)
            if len(base_keys)
            else np.zeros(t, dtype=bool)
        )
        base_w = (
            self._out.weights[guarded] if len(base_keys) else np.zeros(t)
        )

        changed = cur_w != base_w
        dels = in_base & (~cur_has | changed)
        ins = cur_has & (~in_base | changed)

        out_del = out_keys[dels]
        out_ins = out_keys[ins]
        ins_w = cur_w[ins]
        self._out.splice(shift, out_del, out_ins, ins_w)

        in_del = (t_v[dels] << shift) | t_u[dels]
        d_order = np.argsort(in_del)
        in_ins = (t_v[ins] << shift) | t_u[ins]
        i_order = np.argsort(in_ins)
        self._in.splice(shift, in_del[d_order], in_ins[i_order], ins_w[i_order])

        self._stats["flushes"] += 1
        self._stats["edges_spliced"] += int(dels.sum() + ins.sum())
        self._touched.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """True if edge ``u -> v`` is present."""
        return (u, v) in self._index

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of ``u -> v``; raises ``KeyError`` if absent."""
        return self._index[(u, v)]

    def out_degree(self, u: int) -> int:
        """Current out-degree of ``u``."""
        self._flush()
        return int(self._out.offsets[u + 1] - self._out.offsets[u])

    def in_degree(self, v: int) -> int:
        """Current in-degree of ``v``."""
        self._flush()
        return int(self._in.offsets[v + 1] - self._in.offsets[v])

    def out_edges(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target, weight)`` pairs for ``u``'s out-edges.

        Pairs arrive in CSR order (sorted by target id).
        """
        self._flush()
        start, stop = self._out.offsets[u], self._out.offsets[u + 1]
        mask = self._capacity - 1
        for i in range(start, stop):
            yield int(self._out.keys[i] & mask), float(self._out.weights[i])

    def in_edges(self, v: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(source, weight)`` pairs for ``v``'s in-edges.

        Pairs arrive in CSR order (sorted by source id).
        """
        self._flush()
        start, stop = self._in.offsets[v], self._in.offsets[v + 1]
        mask = self._capacity - 1
        for i in range(start, stop):
            yield int(self._in.keys[i] & mask), float(self._in.weights[i])

    @property
    def mutation_stamp(self) -> int:
        """Monotone counter bumped by every mutation (incl. vertex growth).

        Unlike :attr:`version` it also moves for ``_count_version=False``
        edits, so external caches (snapshots, the express lane's adjacency
        overlay) can key staleness on it exactly.
        """
        return self._mutations

    @property
    def num_edges(self) -> int:
        """Number of directed edges currently stored."""
        return len(self._index)

    def edges(self) -> Iterator[Edge]:
        """Yield every directed edge ``(u, v, w)`` in CSR order."""
        self._flush()
        keys, weights = self._out.keys, self._out.weights
        shift, mask = self._shift, self._capacity - 1
        for i in range(len(keys)):
            key = int(keys[i])
            yield key >> shift, key & mask, float(weights[i])

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live edge set as parallel ``(src, dst, wgt)`` arrays.

        Rows are in CSR (src, dst) order; the returned arrays are fresh
        (safe to mutate).
        """
        self._flush()
        src = self._out.keys >> self._shift
        dst = self._out.keys & (self._capacity - 1)
        return src, dst, self._out.weights.copy()

    def store_stats(self) -> Dict[str, int]:
        """Incremental-store instrumentation counters (copy)."""
        return dict(self._stats)

    # ------------------------------------------------------------------
    # Snapshots for the accelerator
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Immutable CSR snapshot of the current version.

        Incremental mode splices the pending mutations into the persistent
        key arrays and hands the offsets/weights to the snapshot directly
        (every flush is copy-on-write, so older snapshots stay isolated);
        repeated calls without intervening mutations hit a cache.
        """
        if not self.incremental_snapshots:
            return self.rebuild_snapshot()
        if (
            self._snapshot_cache is not None
            and self._snapshot_cache[0] == self._mutations
        ):
            self._stats["snapshot_cache_hits"] += 1
            return self._snapshot_cache[1]
        self._flush()
        mask = self._capacity - 1
        csr = CSRGraph._from_parts(
            self.num_vertices,
            len(self._index),
            self._out.offsets,
            self._out.keys & mask,
            self._out.weights,
            self._in.offsets,
            self._in.keys & mask,
            self._in.weights,
        )
        self._stats["snapshot_builds"] += 1
        self._snapshot_cache = (self._mutations, csr)
        return csr

    def rebuild_snapshot(self) -> CSRGraph:
        """From-scratch CSR rebuild (the pre-incremental snapshot path).

        Kept as the property-test oracle and the benchmark comparator:
        iterates every edge in Python and lets ``CSRGraph.__init__`` sort
        the full edge list, exactly like the old dict-of-dicts store.
        """
        self._stats["full_rebuilds"] += 1
        return CSRGraph(self.num_vertices, self.edges())

    def snapshot_with_sinks(self, sink_vertices: Set[int]) -> CSRGraph:
        """CSR snapshot with all out-edges of ``sink_vertices`` removed.

        This is the *intermediate graph* of Fig. 5: mutated sources become
        complete sinks so their stale contributions can be drained without
        cyclic re-propagation. The paper notes this is cheap in hardware
        (edge-pointer adjustment); here it is two boolean edge masks over
        the maintained arrays — no Python per-edge filtering.
        """
        self._flush()
        n = self.num_vertices
        shift, mask = self._shift, self._capacity - 1
        is_sink = np.zeros(n, dtype=bool)
        sinks = [v for v in sink_vertices if 0 <= v < n]
        if sinks:
            is_sink[np.fromiter(sinks, dtype=np.int64, count=len(sinks))] = True

        out_keep = ~is_sink[self._out.keys >> shift]
        out_keys = self._out.keys[out_keep]
        out_weights = self._out.weights[out_keep]
        counts = np.diff(self._out.offsets).copy()
        counts[is_sink] = 0
        out_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=out_offsets[1:])

        in_keep = ~is_sink[self._in.keys & mask]
        in_keys = self._in.keys[in_keep]
        in_weights = self._in.weights[in_keep]
        in_counts = np.bincount(in_keys >> shift, minlength=n)
        in_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_offsets[1:])

        return CSRGraph._from_parts(
            n,
            len(out_keys),
            out_offsets,
            out_keys & mask,
            out_weights,
            in_offsets,
            in_keys & mask,
            in_weights,
        )


@dataclass
class CommonSlice:
    """A version set decomposed into a shared prefix plus per-version adds.

    ``common_edges`` is the directed edge set present *with the same
    weight* in every requested version; ``additions[v]`` are the edges of
    version ``v`` outside that set. By construction
    ``common_edges + additions[v]`` is exactly version ``v``'s edge set,
    so any monotonic selective query can converge on the common graph once
    and extend per version by pure insertions (CommonGraph work sharing).
    """

    #: Requested versions, ascending.
    versions: List[int]
    #: Directed edges shared by every version (sorted ``(u, v)`` order).
    common_edges: List[Edge]
    #: Vertex count of the common graph (minimum over the versions).
    common_vertices: int
    #: version -> edges of that version not in ``common_edges``.
    additions: Dict[int, List[Edge]]
    #: version -> that version's vertex count.
    vertices: Dict[int, int]


class DeltaVersionStore:
    """Delta-encoded graph version history (Version Traveler substitute).

    Stores one base edge list plus per-version deltas (insertions and
    deletions), reconstructing any retained version on demand — the
    memory-efficient end of the versioning spectrum, versus
    :class:`GraphVersionStore`'s full snapshots. §4.7 allows either: the
    accelerator only needs a CSR view of the requested version.

    Reconstruction rolls forward from the last reconstructed version when
    the requested one is newer, instead of replaying the full delta log
    from base every time.

    ``keep_versions`` bounds retention for long-running services: when
    more than that many versions are reconstructible, the oldest deltas
    fold into the base edge list and their versions become unreachable
    (``KeyError`` — surfaced as ``VERSION_EVICTED`` over HTTP). ``None``
    (default) retains everything.
    """

    def __init__(self, graph: DynamicGraph, keep_versions: Optional[int] = None):
        if keep_versions is not None and keep_versions < 1:
            raise ValueError("keep_versions must be >= 1 (or None)")
        self.graph = graph
        self.keep_versions = keep_versions
        self._base_version = graph.version
        #: Base edge set as a dict so retention folds are O(delta), not
        #: O(E log E) — a long-running serve session evicts one delta per
        #: write once the bound is reached, so the fold is on the hot path.
        self._base_edges: Dict[Tuple[int, int], float] = {
            (u, v): w for u, v, w in graph.edges()
        }
        self._base_vertices = graph.num_vertices
        #: version -> (insertions, deletion keys), ordered.
        self._deltas: List[Tuple[int, List[Edge], List[Tuple[int, int]]]] = []
        #: Last reconstructed state: (version, edge dict, num_vertices).
        self._cursor: Optional[
            Tuple[int, Dict[Tuple[int, int], float], int]
        ] = None
        self._evicted_versions = 0

    def record_batch(
        self, insertions: Iterable[Edge], deletions: Iterable[Tuple[int, int]]
    ) -> None:
        """Record the delta that produced the graph's *current* version.

        Call right after ``graph.apply_batch(insertions, deletions)`` with
        the same *logical* edges; on symmetric graphs the mirrors the
        mutation added implicitly are expanded here, so reconstructions
        stay symmetric.
        """
        ins = list(insertions)
        dels = list(deletions)
        if self.graph.symmetric:
            ins = [
                d
                for u, v, w in ins
                for d in (((u, v, w), (v, u, w)) if u != v else ((u, v, w),))
            ]
            dels = [
                d
                for u, v in dels
                for d in (((u, v), (v, u)) if u != v else ((u, v),))
            ]
        self._deltas.append((self.graph.version, ins, dels))
        self._enforce_retention()

    def versions(self) -> List[int]:
        """All reconstructible versions, oldest first."""
        return [self._base_version] + [v for v, _, _ in self._deltas]

    def _edges_at(
        self, version: int
    ) -> Tuple[Dict[Tuple[int, int], float], int]:
        """Edge dict + vertex count of ``version`` (cursor-accelerated)."""
        if version == self._base_version:
            return dict(self._base_edges), self._base_vertices
        if version not in (v for v, _, _ in self._deltas):
            raise KeyError(f"version {version} not recorded")
        if self._cursor is not None and self._cursor[0] <= version:
            start_version, edges, num_vertices = self._cursor
            edges = dict(edges)
        else:
            start_version = self._base_version
            edges = dict(self._base_edges)
            num_vertices = self._base_vertices
        for delta_version, insertions, deletions in self._deltas:
            if delta_version <= start_version:
                continue
            if delta_version > version:
                break
            for key in deletions:
                edges.pop(key, None)
            for u, v, w in insertions:
                edges[(u, v)] = w
                num_vertices = max(num_vertices, u + 1, v + 1)
        self._cursor = (version, edges, num_vertices)
        return dict(edges), num_vertices

    def reconstruct(self, version: int) -> CSRGraph:
        """Rebuild the CSR snapshot of ``version`` from base + deltas.

        Monotone access patterns (the common replay loop) are O(delta) per
        call: the store keeps the edge dict of the last reconstructed
        version and rolls forward from it when the requested version is
        newer, falling back to a from-base replay otherwise. Raises
        ``KeyError`` for versions never recorded or already evicted by the
        retention bound.
        """
        edges, num_vertices = self._edges_at(version)
        return CSRGraph(
            num_vertices, [(u, v, w) for (u, v), w in sorted(edges.items())]
        )

    def common_slice(self, versions: Iterable[int]) -> CommonSlice:
        """Decompose ``versions`` into a common graph + per-version adds.

        The common edge set keeps every directed edge that appears in all
        requested versions *with the same weight* (a weight change makes
        the edge version-specific on both sides). Raises ``KeyError`` if
        any version is unrecorded or evicted.
        """
        vers = sorted({int(v) for v in versions})
        if not vers:
            raise ValueError("versions must be non-empty")
        per_version: Dict[int, Tuple[Dict[Tuple[int, int], float], int]] = {}
        for ver in vers:
            per_version[ver] = self._edges_at(ver)
        first_edges, _ = per_version[vers[0]]
        common: Dict[Tuple[int, int], float] = dict(first_edges)
        for ver in vers[1:]:
            edges, _ = per_version[ver]
            common = {
                key: w
                for key, w in common.items()
                if edges.get(key) == w
            }
        additions = {
            ver: [
                (u, v, w)
                for (u, v), w in sorted(per_version[ver][0].items())
                if common.get((u, v)) != w
            ]
            for ver in vers
        }
        return CommonSlice(
            versions=vers,
            common_edges=[(u, v, w) for (u, v), w in sorted(common.items())],
            common_vertices=min(n for _, n in per_version.values()),
            additions=additions,
            vertices={ver: per_version[ver][1] for ver in vers},
        )

    def _enforce_retention(self) -> None:
        """Fold oldest deltas into the base until the bound is met."""
        if self.keep_versions is None:
            return
        while len(self._deltas) + 1 > self.keep_versions:
            version, insertions, deletions = self._deltas.pop(0)
            for key in deletions:
                self._base_edges.pop(key, None)
            for u, v, w in insertions:
                self._base_edges[(u, v)] = w
                self._base_vertices = max(
                    self._base_vertices, u + 1, v + 1
                )
            self._base_version = version
            self._evicted_versions += 1
            # A cursor parked on a folded version would alias the new base;
            # drop it rather than reason about partial replays.
            if self._cursor is not None and self._cursor[0] <= version:
                self._cursor = None

    def delta_bytes(self) -> int:
        """Approximate storage of the delta log (16 B per record)."""
        return sum(
            16 * (len(ins) + len(dels)) for _, ins, dels in self._deltas
        )

    def stats(self) -> Dict[str, Optional[int]]:
        """Retention/footprint counters for ops surfaces.

        ``versions_held`` counts reconstructible versions (base + deltas);
        ``evicted_versions`` how many the retention bound has folded away.
        """
        held = self.versions()
        return {
            "versions_held": len(held),
            "oldest_version": held[0],
            "newest_version": held[-1],
            "delta_records": sum(
                len(ins) + len(dels) for _, ins, dels in self._deltas
            ),
            "delta_bytes": self.delta_bytes(),
            "evicted_versions": self._evicted_versions,
            "keep_versions": self.keep_versions,
            "base_edges": len(self._base_edges),
        }


class GraphVersionStore:
    """Retains CSR snapshots per version (Version Traveler substitute).

    The accelerator model only ever needs the latest snapshot plus, during
    accumulative deletion, the matching intermediate graph — but keeping the
    history around supports the temporal-analysis example and lets tests
    diff versions.
    """

    def __init__(self, graph: DynamicGraph, capacity: Optional[int] = None):
        self.graph = graph
        self.capacity = capacity
        self._versions: List[Tuple[int, CSRGraph]] = []
        self.record()

    def record(self) -> CSRGraph:
        """Snapshot the current graph version and remember it."""
        snap = self.graph.snapshot()
        self._versions.append((self.graph.version, snap))
        if self.capacity is not None and len(self._versions) > self.capacity:
            self._versions.pop(0)
        return snap

    def latest(self) -> CSRGraph:
        """Most recently recorded snapshot."""
        return self._versions[-1][1]

    def get(self, version: int) -> CSRGraph:
        """Snapshot recorded for ``version``; raises ``KeyError`` if evicted."""
        for ver, snap in self._versions:
            if ver == version:
                return snap
        raise KeyError(f"version {version} not retained")

    def versions(self) -> List[int]:
        """Versions currently retained, oldest first."""
        return [ver for ver, _ in self._versions]

    def __len__(self) -> int:
        return len(self._versions)
