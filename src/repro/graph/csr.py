"""Compressed Sparse Row graph storage.

GraphPulse/JetStream store the graph structure in CSR format (§4.7).
JetStream additionally requires *incoming*-edge access for the
re-approximation phase (request events travel along in-edges), so the
snapshot holds both an out-CSR and an in-CSR.

The class is immutable: mutation happens on
:class:`repro.graph.dynamic.DynamicGraph`, which emits fresh snapshots —
mirroring the paper's model where the host swaps a new CSR pointer into
accelerator memory after each batch.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

Edge = Tuple[int, int, float]

#: Bytes per vertex-state entry assumed by the locality helpers (a
#: double-precision value; the DAP variant widens this, handled by the
#: timing model, not here).
VERTEX_STATE_BYTES = 8

#: Bytes per CSR edge entry (4-byte target id + 4-byte weight).
EDGE_ENTRY_BYTES = 8


class CSRGraph:
    """Immutable directed graph in dual (out + in) CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(src, dst, weight)`` triples. Parallel edges are
        allowed by the storage but rejected by :class:`DynamicGraph`.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "out_offsets",
        "out_targets",
        "out_weights",
        "in_offsets",
        "in_sources",
        "in_weights",
    )

    def __init__(self, num_vertices: int, edges: Iterable[Edge]):
        edge_list = list(edges)
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = int(num_vertices)
        self.num_edges = len(edge_list)

        src = np.fromiter((e[0] for e in edge_list), dtype=np.int64, count=len(edge_list))
        dst = np.fromiter((e[1] for e in edge_list), dtype=np.int64, count=len(edge_list))
        wgt = np.fromiter((e[2] for e in edge_list), dtype=np.float64, count=len(edge_list))
        if len(edge_list) and (src.min() < 0 or dst.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        if len(edge_list) and (src.max() >= num_vertices or dst.max() >= num_vertices):
            raise ValueError("edge endpoint out of range")

        self.out_offsets, self.out_targets, self.out_weights = _build_csr(
            num_vertices, src, dst, wgt
        )
        self.in_offsets, self.in_sources, self.in_weights = _build_csr(
            num_vertices, dst, src, wgt
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edges: Sequence[Edge], num_vertices: int = None) -> "CSRGraph":
        """Build a graph from an edge list, inferring the vertex count."""
        edges = list(edges)
        if num_vertices is None:
            num_vertices = 0
            for u, v, _ in edges:
                num_vertices = max(num_vertices, u + 1, v + 1)
        return cls(num_vertices, edges)

    @classmethod
    def from_arrays(
        cls, num_vertices: int, src: np.ndarray, dst: np.ndarray, wgt: np.ndarray
    ) -> "CSRGraph":
        """Build a graph from parallel ``(src, dst, weight)`` arrays.

        The array-native equivalent of ``CSRGraph(num_vertices, edges)``:
        same validation and the same deterministic ``(src, dst)`` ordering,
        without materialising Python tuples.
        """
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        wgt = np.asarray(wgt, dtype=np.float64)
        if src.shape != dst.shape or src.shape != wgt.shape:
            raise ValueError("src/dst/wgt arrays must have equal length")
        if len(src) and (src.min() < 0 or dst.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        if len(src) and (src.max() >= num_vertices or dst.max() >= num_vertices):
            raise ValueError("edge endpoint out of range")
        return cls._from_parts(
            int(num_vertices),
            len(src),
            *_build_csr(num_vertices, src, dst, wgt),
            *_build_csr(num_vertices, dst, src, wgt),
        )

    @classmethod
    def _from_parts(
        cls,
        num_vertices: int,
        num_edges: int,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_weights: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_weights: np.ndarray,
    ) -> "CSRGraph":
        """Trusted constructor from prebuilt CSR arrays (no validation).

        Used by the incremental :class:`~repro.graph.dynamic.DynamicGraph`
        store, whose spliced arrays are maintained in exactly the
        ``_build_csr`` order, and by :meth:`reversed`. Callers own the
        invariants: offsets monotone, targets sorted per source, both
        directions describing the same edge multiset.
        """
        graph = object.__new__(cls)
        graph.num_vertices = int(num_vertices)
        graph.num_edges = int(num_edges)
        graph.out_offsets = out_offsets
        graph.out_targets = out_targets
        graph.out_weights = out_weights
        graph.in_offsets = in_offsets
        graph.in_sources = in_sources
        graph.in_weights = in_weights
        return graph

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        return int(self.out_offsets[u + 1] - self.out_offsets[u])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        return int(self.in_offsets[v + 1] - self.in_offsets[v])

    def out_edges(self, u: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target, weight)`` for each outgoing edge of ``u``."""
        start, stop = self.out_offsets[u], self.out_offsets[u + 1]
        for i in range(start, stop):
            yield int(self.out_targets[i]), float(self.out_weights[i])

    def in_edges(self, v: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(source, weight)`` for each incoming edge of ``v``."""
        start, stop = self.in_offsets[v], self.in_offsets[v + 1]
        for i in range(start, stop):
            yield int(self.in_sources[i]), float(self.in_weights[i])

    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of the outgoing edges of ``u`` as an array view."""
        return self.out_targets[self.out_offsets[u] : self.out_offsets[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of the incoming edges of ``v`` as an array view."""
        return self.in_sources[self.in_offsets[v] : self.in_offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True if a directed edge ``u -> v`` exists (binary search)."""
        start, stop = self.out_offsets[u], self.out_offsets[u + 1]
        i = start + np.searchsorted(self.out_targets[start:stop], v)
        return bool(i < stop and self.out_targets[i] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v`` (first match); raises if absent.

        Targets are sorted per source by ``_build_csr``, so the leftmost
        binary-search hit is the same "first match" the old linear scan
        returned (parallel edges keep their lexsort order).
        """
        start, stop = self.out_offsets[u], self.out_offsets[u + 1]
        i = start + np.searchsorted(self.out_targets[start:stop], v)
        if i < stop and self.out_targets[i] == v:
            return float(self.out_weights[i])
        raise KeyError(f"no edge {u} -> {v}")

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The edge set as parallel ``(src, dst, weight)`` arrays.

        Array-native replacement for :meth:`edges` on hot paths; rows are
        in CSR order (sorted by source, then target). ``dst``/``weight``
        are views of the CSR arrays — treat all three as read-only.
        """
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self.out_offsets),
        )
        return src, self.out_targets, self.out_weights

    def share_out_arrays(self, arena) -> dict:
        """Copy the out-CSR arrays into shared segments of ``arena``.

        Returns ``{"offsets", "out_targets", "out_weights"}`` segments —
        keyed to match the shard kernels' context — for the process-parallel
        sharded backend. The in-CSR stays private to the host: workers only
        expand out-edges.
        """
        return {
            "offsets": arena.from_array(self.out_offsets),
            "out_targets": arena.from_array(self.out_targets),
            "out_weights": arena.from_array(self.out_weights),
        }

    def edges(self) -> Iterator[Edge]:
        """Yield every edge as ``(src, dst, weight)`` in CSR order."""
        for u in range(self.num_vertices):
            start, stop = self.out_offsets[u], self.out_offsets[u + 1]
            for i in range(start, stop):
                yield u, int(self.out_targets[i]), float(self.out_weights[i])

    def reversed(self) -> "CSRGraph":
        """Graph with every edge direction flipped.

        The reversed out-CSR *is* this graph's in-CSR (both are built by
        the same ``_build_csr`` sort), so this is an O(1) view swap.
        """
        return CSRGraph._from_parts(
            self.num_vertices,
            self.num_edges,
            self.in_offsets,
            self.in_sources,
            self.in_weights,
            self.out_offsets,
            self.out_targets,
            self.out_weights,
        )

    def symmetrized(self) -> "CSRGraph":
        """Graph with each edge present in both directions (for CC).

        Duplicate ``(u, v)`` rows collapse to the first occurrence and a
        mirror is added only where absent, with the forward weight — the
        same first-occurrence-wins semantics as the old dict construction,
        computed with sorted-key membership instead of per-edge Python.
        """
        src, dst, wgt = self.edge_arrays()
        n = max(self.num_vertices, 1)
        key = src * n + dst  # sorted: edge_arrays yields CSR (src, dst) order
        if len(key):
            keep = np.ones(len(key), dtype=bool)
            np.not_equal(key[1:], key[:-1], out=keep[1:])
            src, dst, wgt, key = src[keep], dst[keep], wgt[keep], key[keep]
        mirror_key = dst * n + src
        pos = np.searchsorted(key, mirror_key)
        present = np.zeros(len(mirror_key), dtype=bool)
        in_range = pos < len(key)
        present[in_range] = key[pos[in_range]] == mirror_key[in_range]
        missing = ~present
        return CSRGraph.from_arrays(
            self.num_vertices,
            np.concatenate([src, dst[missing]]),
            np.concatenate([dst, src[missing]]),
            np.concatenate([wgt, wgt[missing]]),
        )

    # ------------------------------------------------------------------
    # Locality helpers used by the architectural model
    # ------------------------------------------------------------------
    def vertex_page(self, v: int, page_bytes: int) -> int:
        """DRAM page index holding the state of vertex ``v``."""
        return (v * VERTEX_STATE_BYTES) // page_bytes

    def edge_pages(self, u: int, page_bytes: int) -> range:
        """Range of DRAM page indices holding the out-edge list of ``u``."""
        start = int(self.out_offsets[u]) * EDGE_ENTRY_BYTES
        stop = max(start + 1, int(self.out_offsets[u + 1]) * EDGE_ENTRY_BYTES)
        return range(start // page_bytes, (stop - 1) // page_bytes + 1)

    # ------------------------------------------------------------------
    # Dunder utilities
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and sorted(self.edges()) == sorted(other.edges())
        )

    def __hash__(self):  # CSRGraph is conceptually immutable but unhashable
        raise TypeError("CSRGraph is not hashable")


def _build_csr(
    num_vertices: int, src: np.ndarray, dst: np.ndarray, wgt: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build offsets/targets/weights arrays sorted by source then target."""
    if len(src) == 0:
        return (
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    order = np.lexsort((dst, src))
    src, dst, wgt = src[order], dst[order], wgt[order]
    counts = np.bincount(src, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, dst.astype(np.int64), wgt.astype(np.float64)


def edges_from_arrays(
    src: Sequence[int], dst: Sequence[int], wgt: Sequence[float]
) -> List[Edge]:
    """Zip parallel arrays into an edge list (convenience for generators)."""
    return [(int(u), int(v), float(w)) for u, v, w in zip(src, dst, wgt)]
