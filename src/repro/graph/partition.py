"""Edge-cut graph partitioning (PuLP substitute, §4.7 / §6).

GraphPulse/JetStream process one *slice* of a large graph at a time because
the on-chip coalescing queue holds one entry per vertex; events crossing
slices are spilled to off-chip memory. The paper slices with PuLP
(minimum-edge-cut, balanced). We provide a deterministic BFS-grown greedy
partitioner with the same contract: balanced vertex counts, heuristically
minimized edge cut.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass
class PartitionResult:
    """Outcome of partitioning a graph into slices."""

    num_slices: int
    assignment: np.ndarray  # vertex -> slice id
    slice_sizes: List[int]
    cut_edges: int
    total_edges: int
    #: Vertices of each slice, ascending (the queue maps a slice densely).
    members: List[np.ndarray] = field(default_factory=list)

    @property
    def cut_fraction(self) -> float:
        """Fraction of edges crossing slice boundaries."""
        if self.total_edges == 0:
            return 0.0
        return self.cut_edges / self.total_edges


def partition_graph(
    graph: CSRGraph, num_slices: int, balance_slack: float = 0.05
) -> PartitionResult:
    """Partition ``graph`` into ``num_slices`` balanced slices.

    BFS-grows each slice from the highest-degree unassigned seed, preferring
    frontier vertices with the most already-assigned neighbors in the
    current slice (greedy cut minimization), until the slice reaches its
    capacity ``ceil(n / k) * (1 + balance_slack)``.
    """
    n = graph.num_vertices
    if num_slices <= 0:
        raise ValueError("num_slices must be positive")
    if num_slices == 1 or n == 0:
        assignment = np.zeros(n, dtype=np.int64)
        return _finalize(graph, 1, assignment)

    capacity = int(np.ceil(n / num_slices) * (1 + balance_slack))
    assignment = np.full(n, -1, dtype=np.int64)
    degrees = np.diff(graph.out_offsets) + np.diff(graph.in_offsets)
    seed_order = np.argsort(-degrees, kind="stable")
    seed_cursor = 0

    for slice_id in range(num_slices):
        remaining = capacity if slice_id < num_slices - 1 else n
        size = 0
        queue: deque = deque()
        while size < remaining:
            if not queue:
                while seed_cursor < n and assignment[seed_order[seed_cursor]] != -1:
                    seed_cursor += 1
                if seed_cursor >= n:
                    break
                queue.append(int(seed_order[seed_cursor]))
            v = queue.popleft()
            if assignment[v] != -1:
                continue
            assignment[v] = slice_id
            size += 1
            neighbors = list(graph.out_neighbors(v)) + list(graph.in_neighbors(v))
            for u in neighbors:
                if assignment[u] == -1:
                    queue.append(int(u))
    # Any stragglers (isolated vertices) go to the lightest slice.
    sizes = [int((assignment == s).sum()) for s in range(num_slices)]
    for v in range(n):
        if assignment[v] == -1:
            lightest = int(np.argmin(sizes))
            assignment[v] = lightest
            sizes[lightest] += 1
    return _finalize(graph, num_slices, assignment)


def _finalize(graph: CSRGraph, num_slices: int, assignment: np.ndarray) -> PartitionResult:
    src, dst, _ = graph.edge_arrays()
    cut = int(np.count_nonzero(assignment[src] != assignment[dst]))
    members = [np.flatnonzero(assignment == s) for s in range(num_slices)]
    return PartitionResult(
        num_slices=num_slices,
        assignment=assignment,
        slice_sizes=[int(m.size) for m in members],
        cut_edges=cut,
        total_edges=graph.num_edges,
        members=members,
    )


def extend_assignment(
    assignment: np.ndarray, num_vertices: int, num_slices: int = 0
) -> np.ndarray:
    """Deterministically extend ``assignment`` to cover ``num_vertices``.

    Vertices created mid-stream have no edges in the partitioned snapshot,
    so there is nothing for the edge-cut heuristic to optimize; each new
    vertex simply joins the currently lightest slice (lowest slice id on
    ties). The rule is a pure function of the existing assignment, so every
    holder of the same base assignment — the engine's slice map, the
    sharded queue group, a staged :class:`PartitionResult` — extends to the
    same result regardless of when growth is observed.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    n = assignment.shape[0]
    if num_vertices <= n:
        return assignment
    if num_slices <= 0:
        num_slices = int(assignment.max()) + 1 if assignment.size else 1
    sizes = np.bincount(assignment, minlength=num_slices).astype(np.int64)
    extended = np.empty(num_vertices, dtype=np.int64)
    extended[:n] = assignment
    for v in range(n, num_vertices):
        lightest = int(np.argmin(sizes))
        extended[v] = lightest
        sizes[lightest] += 1
    return extended


def extend_partition(result: PartitionResult, num_vertices: int) -> PartitionResult:
    """A :class:`PartitionResult` covering ``num_vertices`` vertices.

    Growth keeps the original slice structure and applies the
    :func:`extend_assignment` rule; ``cut_edges``/``total_edges`` still
    describe the snapshot that was partitioned (new vertices carry no edges
    at extension time — §4.7's repartitioning drift is measured separately
    by :func:`repartition_report`).
    """
    if num_vertices <= result.assignment.shape[0]:
        return result
    assignment = extend_assignment(result.assignment, num_vertices, result.num_slices)
    members = [np.flatnonzero(assignment == s) for s in range(result.num_slices)]
    return PartitionResult(
        num_slices=result.num_slices,
        assignment=assignment,
        slice_sizes=[int(m.size) for m in members],
        cut_edges=result.cut_edges,
        total_edges=result.total_edges,
        members=members,
    )


def slices_required(num_vertices: int, queue_capacity: int) -> int:
    """Number of slices needed so each slice fits the on-chip queue."""
    if queue_capacity <= 0:
        raise ValueError("queue_capacity must be positive")
    return max(1, -(-num_vertices // queue_capacity))


def repartition_report(
    graph: CSRGraph, assignments: Sequence[np.ndarray]
) -> Dict[str, float]:
    """Compare cut fractions of successive assignments (evolving graphs).

    §4.7 notes slices drift from optimal as the graph evolves and suggests
    periodic repartitioning; this helper quantifies the drift for the
    examples and tests.
    """
    src, dst, _ = graph.edge_arrays()
    fractions = []
    for assignment in assignments:
        cut = int(np.count_nonzero(assignment[src] != assignment[dst]))
        fractions.append(cut / max(1, graph.num_edges))
    return {
        "first_cut_fraction": fractions[0] if fractions else 0.0,
        "last_cut_fraction": fractions[-1] if fractions else 0.0,
        "max_cut_fraction": max(fractions) if fractions else 0.0,
    }
