"""Edge-list I/O.

Plain-text (one ``src dst [weight]`` triple per line, ``#`` comments) and a
compact binary format. Streaming update files interleave ``a`` (add) and
``d`` (delete) records, matching the batch files used by software streaming
frameworks such as KickStarter.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.streams import Edge, UpdateBatch

PathLike = Union[str, Path]

_BINARY_MAGIC = b"JSG1"
_EDGE_STRUCT = struct.Struct("<qqd")


def write_edge_list(path: PathLike, edges: Iterable[Tuple[int, int, float]]) -> int:
    """Write a plain-text edge list; returns the number of edges written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# src dst weight\n")
        for u, v, w in edges:
            handle.write(f"{u} {v} {w:g}\n")
            count += 1
    return count


def read_edge_list(path: PathLike) -> List[Tuple[int, int, float]]:
    """Read a plain-text edge list (weight defaults to 1.0)."""
    edges: List[Tuple[int, int, float]] = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{lineno}: expected 'src dst [weight]'")
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
            edges.append((u, v, w))
    return edges


def write_binary_edges(path: PathLike, edges: Iterable[Tuple[int, int, float]]) -> int:
    """Write the compact binary edge format; returns the edge count."""
    edges = list(edges)
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(struct.pack("<q", len(edges)))
        for u, v, w in edges:
            handle.write(_EDGE_STRUCT.pack(u, v, w))
    return len(edges)


def read_binary_edges(path: PathLike) -> List[Tuple[int, int, float]]:
    """Read the compact binary edge format."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a JetStream binary edge file")
        (count,) = struct.unpack("<q", handle.read(8))
        edges = []
        for _ in range(count):
            u, v, w = _EDGE_STRUCT.unpack(handle.read(_EDGE_STRUCT.size))
            edges.append((int(u), int(v), float(w)))
    return edges


def write_update_stream(path: PathLike, batches: Iterable[UpdateBatch]) -> int:
    """Write a stream of update batches; returns the batch count.

    Format: ``batch`` separator lines, then ``a src dst weight`` /
    ``d src dst`` records.
    """
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for batch in batches:
            handle.write("batch\n")
            for edge in batch.insertions:
                handle.write(f"a {edge.u} {edge.v} {edge.w:g}\n")
            for edge in batch.deletions:
                handle.write(f"d {edge.u} {edge.v}\n")
            count += 1
    return count


def read_update_stream(path: PathLike) -> List[UpdateBatch]:
    """Read a stream of update batches written by :func:`write_update_stream`."""
    batches: List[UpdateBatch] = []
    insertions: List[Edge] = []
    deletions: List[Edge] = []
    started = False

    def flush() -> None:
        nonlocal insertions, deletions
        batches.append(UpdateBatch(insertions=insertions, deletions=deletions))
        insertions, deletions = [], []

    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line == "batch":
                if started:
                    flush()
                started = True
                continue
            parts = line.split()
            if not started:
                raise ValueError(f"{path}:{lineno}: record before first 'batch'")
            if parts[0] == "a" and len(parts) == 4:
                insertions.append(Edge(int(parts[1]), int(parts[2]), float(parts[3])))
            elif parts[0] == "d" and len(parts) == 3:
                deletions.append(Edge(int(parts[1]), int(parts[2]), 0.0))
            else:
                raise ValueError(f"{path}:{lineno}: bad record {line!r}")
    if started:
        flush()
    return batches
