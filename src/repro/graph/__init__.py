"""Graph substrates: CSR storage, dynamic graphs, generators, datasets,
partitioning, and edge-list I/O.

The accelerator (``repro.core``) consumes :class:`~repro.graph.csr.CSRGraph`
snapshots produced by :class:`~repro.graph.dynamic.DynamicGraph`, which plays
the role of the host-side graph-versioning framework described in §4.7 of the
paper.
"""

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import (
    CommonSlice,
    DeltaVersionStore,
    DynamicGraph,
    GraphVersionStore,
)
from repro.graph import analysis
from repro.graph import generators
from repro.graph import datasets
from repro.graph.partition import partition_graph, PartitionResult

__all__ = [
    "CSRGraph",
    "CommonSlice",
    "DeltaVersionStore",
    "DynamicGraph",
    "GraphVersionStore",
    "analysis",
    "generators",
    "datasets",
    "partition_graph",
    "PartitionResult",
]
