"""Synchronous (BSP) vertex-centric substrate for the software baselines.

Both KickStarter and GraphBolt are built over Ligra-style shared-memory BSP
processing (§7): per-iteration frontiers, push-mode edge relaxation with
atomics, and a barrier between iterations. This module provides that
substrate with :class:`~repro.core.metrics.SoftwareWork` counting so the
cost model can price each run on the Table 1 software platform.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.algorithms.base import AlgorithmKind
from repro.core.metrics import SoftwareWork
from repro.graph.csr import CSRGraph


class BSPEngine:
    """Frontier-based synchronous engine with work accounting."""

    def __init__(self, algorithm):
        self.algorithm = algorithm

    # ------------------------------------------------------------------
    # Selective (monotonic) computation
    # ------------------------------------------------------------------
    def run_selective(
        self,
        csr: CSRGraph,
        states: np.ndarray,
        frontier: Set[int],
        work: SoftwareWork,
        dependency: np.ndarray = None,
        level: np.ndarray = None,
    ) -> None:
        """Push-mode BSP relaxation until the frontier empties.

        Mutates ``states`` (and the optional KickStarter ``dependency`` /
        ``level`` arrays) in place; counts one barrier per iteration, one
        atomic + random read per relaxation attempt.
        """
        algorithm = self.algorithm
        if algorithm.kind is not AlgorithmKind.SELECTIVE:
            raise ValueError("run_selective requires a selective algorithm")
        propagate = algorithm.propagate
        reduce_ = algorithm.reduce
        while frontier:
            work.iterations += 1
            # Dense (Ligra-style) frontier representation: each iteration
            # scans the full vertex-sized bitmap to build the frontier.
            work.vertex_reads_sequential += csr.num_vertices
            next_frontier: Set[int] = set()
            for u in sorted(frontier):
                value = states[u]
                start, stop = csr.out_offsets[u], csr.out_offsets[u + 1]
                work.edges_traversed += int(stop - start)
                for i in range(start, stop):
                    v = int(csr.out_targets[i])
                    candidate = propagate(value, float(csr.out_weights[i]), None)
                    work.vertex_reads_random += 1
                    work.atomics += 1
                    if reduce_(states[v], candidate) != states[v]:
                        states[v] = candidate
                        work.vertex_writes += 1
                        if dependency is not None:
                            dependency[v] = u
                        if level is not None:
                            level[v] = level[u] + 1
                        next_frontier.add(v)
            frontier = next_frontier

    # ------------------------------------------------------------------
    # Accumulative (delta) computation
    # ------------------------------------------------------------------
    def run_accumulative(
        self,
        csr: CSRGraph,
        states: np.ndarray,
        deltas: np.ndarray,
        work: SoftwareWork,
        bookkeeping_bytes_per_vertex: int = 0,
    ) -> None:
        """Synchronous Jacobi delta iteration until all deltas die out.

        ``deltas`` holds the per-vertex correction injected this run; each
        iteration applies the live deltas to the states and forwards them
        through the propagation operator, exactly the synchronous
        counterpart of the event-driven accumulation.
        """
        algorithm = self.algorithm
        if algorithm.kind is not AlgorithmKind.ACCUMULATIVE:
            raise ValueError("run_accumulative requires an accumulative algorithm")
        threshold = algorithm.propagation_threshold
        propagate = algorithm.propagate
        from repro.algorithms.base import SourceContext

        degrees = np.diff(csr.out_offsets)
        weight_sums = np.zeros(csr.num_vertices)
        if csr.num_edges:
            cumulative = np.concatenate(([0.0], np.cumsum(csr.out_weights)))
            weight_sums = cumulative[csr.out_offsets[1:]] - cumulative[csr.out_offsets[:-1]]

        live = {int(v) for v in np.flatnonzero(np.abs(deltas) > threshold)}
        while live:
            work.iterations += 1
            work.vertex_reads_sequential += csr.num_vertices
            next_deltas = np.zeros_like(deltas)
            for u in sorted(live):
                delta = deltas[u]
                states[u] += delta
                work.vertex_writes += 1
                start, stop = csr.out_offsets[u], csr.out_offsets[u + 1]
                work.edges_traversed += int(stop - start)
                ctx = SourceContext(int(degrees[u]), float(weight_sums[u]))
                for i in range(start, stop):
                    v = int(csr.out_targets[i])
                    share = propagate(delta, float(csr.out_weights[i]), ctx)
                    work.vertex_reads_random += 1
                    work.atomics += 1
                    next_deltas[v] += share
                deltas[u] = 0.0
            if bookkeeping_bytes_per_vertex:
                work.bookkeeping_bytes += bookkeeping_bytes_per_vertex * len(live)
            deltas = next_deltas
            live = {int(v) for v in np.flatnonzero(np.abs(deltas) > threshold)}


def run_pull_refinement(
    algorithm,
    csr: CSRGraph,
    states: np.ndarray,
    base: np.ndarray,
    seeds: Iterable[int],
    work: SoftwareWork,
    bookkeeping_bytes_per_vertex: int = 0,
    max_iterations: int = 100_000,
) -> None:
    """GraphBolt-style dependency-driven refinement (pull mode).

    Each iteration re-*aggregates* every vertex whose inputs changed: the
    vertex re-reads **all** its in-edges and recomputes its value from its
    neighbors' current states plus its ``base`` (teleport/injection) term.
    Changed vertices schedule their out-neighbors for the next iteration.
    This is the synchronous Gauss–Jacobi refinement GraphBolt's aggregation
    dependency tracking performs — and the reason its per-batch cost is
    dominated by random in-edge reads rather than pushed deltas.
    """
    from repro.algorithms.base import SourceContext

    threshold = algorithm.propagation_threshold
    degrees = np.diff(csr.out_offsets)
    weight_sums = np.zeros(csr.num_vertices)
    if csr.num_edges:
        cumulative = np.concatenate(([0.0], np.cumsum(csr.out_weights)))
        weight_sums = cumulative[csr.out_offsets[1:]] - cumulative[csr.out_offsets[:-1]]

    changed: Set[int] = {int(v) for v in seeds}
    iteration = 0
    while changed and iteration < max_iterations:
        iteration += 1
        work.iterations += 1
        # Dense aggregation-state pass over the per-iteration history.
        work.vertex_reads_sequential += csr.num_vertices
        next_changed: Set[int] = set()
        updates = []
        for v in sorted(changed):
            total = base[v]
            start, stop = csr.in_offsets[v], csr.in_offsets[v + 1]
            work.edges_traversed += int(stop - start)
            for i in range(start, stop):
                u = int(csr.in_sources[i])
                work.vertex_reads_random += 1
                ctx = SourceContext(int(degrees[u]), float(weight_sums[u]))
                total += algorithm.propagate(
                    float(states[u]), float(csr.in_weights[i]), ctx
                )
            updates.append((v, total))
        for v, total in updates:
            if abs(total - states[v]) > threshold:
                states[v] = total
                work.vertex_writes += 1
                work.atomics += 1
                start, stop = csr.out_offsets[v], csr.out_offsets[v + 1]
                for i in range(start, stop):
                    next_changed.add(int(csr.out_targets[i]))
        if bookkeeping_bytes_per_vertex:
            work.bookkeeping_bytes += bookkeeping_bytes_per_vertex * len(changed)
        changed = next_changed


def neighbors_pull(
    csr: CSRGraph, v: int, work: SoftwareWork
) -> Iterable[Tuple[int, float]]:
    """Read every in-edge of ``v`` (KickStarter's neighbor re-read pattern).

    Counts the random reads the paper attributes to KickStarter's
    re-approximation ("this approach generates many memory reads with a
    random access pattern", §3.4).
    """
    sources: List[Tuple[int, float]] = []
    start, stop = csr.in_offsets[v], csr.in_offsets[v + 1]
    work.edges_traversed += int(stop - start)
    for i in range(start, stop):
        work.vertex_reads_random += 1
        sources.append((int(csr.in_sources[i]), float(csr.in_weights[i])))
    return sources
