"""Cold-start GraphPulse baseline (the "GP" rows of Table 3).

The straightforward way to handle a streaming update on a static-graph
accelerator: apply the batch to the graph, then recompute the query from
scratch. JetStream's headline claim is the 13× average advantage of
incremental reuse over exactly this (§6.2), so the baseline runs on the
*same* accelerator model with the *same* timing configuration — only the
algorithmic reuse differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.core.engine import GraphPulseEngine
from repro.core.metrics import RunMetrics
from repro.graph.dynamic import DynamicGraph
from repro.streams import UpdateBatch


@dataclass
class ColdStartResult:
    """Outcome of one cold-start evaluation."""

    states: np.ndarray
    metrics: RunMetrics
    graph_version: int


class GraphPulseColdStart:
    """Re-evaluates the full query after every batch."""

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
    ):
        if algorithm.needs_symmetric and not graph.symmetric:
            raise ValueError(f"{algorithm.name} requires a symmetric graph")
        self.graph = graph
        self.algorithm = algorithm
        self.engine = GraphPulseEngine(algorithm, config)
        self.history: List[ColdStartResult] = []

    def initial_compute(self) -> ColdStartResult:
        """Static evaluation of the current graph."""
        return self._recompute()

    def apply_batch(self, batch: UpdateBatch) -> ColdStartResult:
        """Apply the batch, then recompute from scratch."""
        batch.validate()
        self.graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [(e.u, e.v) for e in batch.deletions],
        )
        return self._recompute()

    def _recompute(self) -> ColdStartResult:
        compute = self.engine.compute(self.graph.snapshot())
        result = ColdStartResult(
            states=compute.states,
            metrics=compute.metrics,
            graph_version=self.graph.version,
        )
        self.history.append(result)
        return result
