"""KickStarter baseline: trimmed approximations for streaming graphs.

Re-implements the algorithm of Vora et al. (ASPLOS 2017) as the paper
characterizes it (§2.2, §3.4, §5.2, Fig. 10):

* per-vertex *value + dependency* tracking, with dependencies approximated
  by **levels** (depth in the computation) rather than exact sources;
* on deletion, **trimming**: a vertex whose value could have come through a
  deleted edge is re-approximated by re-reading *all* its in-neighbors
  (random reads + atomics — the inefficiency JetStream's request events
  eliminate), and the tag is propagated to its value/level-dependent
  children;
* afterwards, BSP recomputation from the trimmed set and insertion targets.

The value+level dependence test is *conservative*: any in-neighbor whose
propagated value equals the vertex value at a smaller level counts as a
potential parent, so ties over-tag — exactly why JetStream's exact-source
DAP resets fewer vertices (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.base import AlgorithmKind
from repro.baselines.bsp import BSPEngine, neighbors_pull
from repro.core.metrics import SoftwareWork
from repro.graph.dynamic import DynamicGraph
from repro.streams import UpdateBatch

Edge = Tuple[int, int, float]


@dataclass
class KickStarterResult:
    """Outcome of one KickStarter run (initial or per batch)."""

    states: np.ndarray
    work: SoftwareWork
    trimmed: List[int] = field(default_factory=list)

    @property
    def vertices_reset(self) -> int:
        """Vertices whose approximation was trimmed (Fig. 10 metric)."""
        return len(self.trimmed)


class KickStarter:
    """Streaming engine for selective/monotonic algorithms."""

    def __init__(self, graph: DynamicGraph, algorithm):
        if algorithm.kind is not AlgorithmKind.SELECTIVE:
            raise ValueError("KickStarter supports selective algorithms only")
        if algorithm.needs_symmetric and not graph.symmetric:
            raise ValueError(f"{algorithm.name} requires a symmetric graph")
        self.graph = graph
        self.algorithm = algorithm
        self.bsp = BSPEngine(algorithm)
        self.states: Optional[np.ndarray] = None
        self.dependency: Optional[np.ndarray] = None
        self.level: Optional[np.ndarray] = None
        self.history: List[KickStarterResult] = []

    # ------------------------------------------------------------------
    def initial_compute(self) -> KickStarterResult:
        """Full BSP evaluation building the value/level dependency data."""
        csr = self.graph.snapshot()
        n = csr.num_vertices
        algorithm = self.algorithm
        self.states = np.full(n, algorithm.identity, dtype=np.float64)
        self.dependency = np.full(n, -1, dtype=np.int64)
        self.level = np.zeros(n, dtype=np.int64)
        work = SoftwareWork()
        frontier: Set[int] = set()
        for v, payload in algorithm.initial_events(csr):
            if algorithm.reduce(self.states[v], payload) != self.states[v]:
                self.states[v] = payload
                frontier.add(v)
        self.bsp.run_selective(
            csr, self.states, frontier, work, self.dependency, self.level
        )
        result = KickStarterResult(states=self.states.copy(), work=work)
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> KickStarterResult:
        """Trim, re-approximate, and incrementally recompute."""
        if self.states is None:
            raise RuntimeError("call initial_compute() before apply_batch()")
        batch.validate()
        algorithm = self.algorithm
        work = SoftwareWork()
        old_csr = self.graph.snapshot()

        deletions = self._directed(batch.deletions, weights_from_graph=True)
        insertions = self._directed(batch.insertions, weights_from_graph=False)

        # --- Phase 1: tag & trim (value + level dependence) ------------
        # ``in_question`` holds vertices awaiting re-approximation; a vertex
        # may be re-tagged after resolution if a source it was approximated
        # from degrades later (values only move toward Identity during
        # trimming, so this terminates).
        trimmed_set: Set[int] = set()
        trimmed: List[int] = []
        in_question: Set[int] = set()
        worklist: List[int] = []
        for u, v, w in deletions:
            work.vertex_reads_random += 2
            if self._depends(u, v, w):
                if v not in in_question:
                    in_question.add(v)
                    worklist.append(v)

        # Mutate the graph before re-approximation so trimmed vertices
        # re-read only surviving in-edges.
        self.graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [(e.u, e.v) for e in batch.deletions],
        )
        new_csr = self.graph.snapshot()
        self._grow(new_csr.num_vertices)

        # Levels from the previous convergence gate the re-approximation:
        # a trimmed vertex may only adopt a contribution from a neighbor at
        # a strictly smaller level, which makes cyclic self-support (two
        # stale vertices validating each other around a cycle) impossible.
        level_snapshot = self.level.copy()

        while worklist:
            v = worklist.pop()
            in_question.discard(v)
            old_value = self.states[v]
            new_value, parent, parent_level = self._approximate(
                new_csr, v, in_question, level_snapshot, work
            )
            work.atomics += 1
            self.states[v] = new_value
            self.dependency[v] = parent
            self.level[v] = parent_level + 1 if parent >= 0 else 0
            if v not in trimmed_set:
                trimmed_set.add(v)
                trimmed.append(v)
                work.vertices_reset += 1
            if new_value == old_value:
                # Approximation recovered the same value — children safe.
                continue
            # Tag children that may have depended on the old value.
            start, stop = old_csr.out_offsets[v], old_csr.out_offsets[v + 1]
            work.edges_traversed += int(stop - start)
            for i in range(start, stop):
                child = int(old_csr.out_targets[i])
                weight = float(old_csr.out_weights[i])
                work.vertex_reads_random += 1
                if child in in_question:
                    continue
                if (
                    algorithm.propagate(old_value, weight, None) == self.states[child]
                    and self.states[child] != algorithm.identity
                ):
                    in_question.add(child)
                    worklist.append(child)

        # --- Phase 2: incremental BSP recomputation --------------------
        # The level gate above may have denied a trimmed vertex a perfectly
        # valid contribution from a higher-level neighbor; that neighbor is
        # untrimmed and will never push. One ungated pull per trimmed
        # vertex is safe now — every live value is recoverable (at or below
        # its converged target), so pulled candidates can only be
        # recoverable too.
        for v in trimmed:
            for u, w in neighbors_pull(new_csr, v, work):
                candidate = algorithm.propagate(self.states[u], w, None)
                if algorithm.reduce(self.states[v], candidate) != self.states[v]:
                    self.states[v] = candidate
                    self.dependency[v] = u
                    self.level[v] = self.level[u] + 1
                    work.vertex_writes += 1

        frontier: Set[int] = set(trimmed)
        for u, v, w in insertions:
            candidate = algorithm.propagate(self.states[u], w, None)
            work.vertex_reads_random += 2
            work.atomics += 1
            if algorithm.reduce(self.states[v], candidate) != self.states[v]:
                self.states[v] = candidate
                self.dependency[v] = u
                self.level[v] = self.level[u] + 1
                frontier.add(v)
        for v in range(old_csr.num_vertices, new_csr.num_vertices):
            payload = algorithm.self_event(v)
            if payload is not None and algorithm.reduce(self.states[v], payload) != self.states[v]:
                self.states[v] = payload
                frontier.add(v)
        self.bsp.run_selective(
            new_csr, self.states, frontier, work, self.dependency, self.level
        )
        result = KickStarterResult(
            states=self.states.copy(), work=work, trimmed=trimmed
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def _depends(self, u: int, v: int, w: float) -> bool:
        """Value dependence test: could v's value have come via u→v?

        Pure value equality — strictly conservative (never misses a real
        dependence; over-tags on ties). KickStarter's level filter prunes
        some ties but levels go stale when a parent's value changes without
        changing the child's (e.g. SSWP), so we keep the safe test; the
        over-tagging it causes is exactly the Fig. 10 contrast with
        JetStream's exact-source DAP.
        """
        algorithm = self.algorithm
        if self.states[v] == algorithm.identity:
            return False
        return algorithm.propagate(self.states[u], w, None) == self.states[v]

    def _approximate(
        self,
        csr,
        v: int,
        in_question: Set[int],
        level_snapshot: np.ndarray,
        work: SoftwareWork,
    ) -> Tuple[float, int, int]:
        """Re-approximate ``v`` by reading all surviving in-neighbors.

        Safe sources are neighbors that are not currently in question AND
        sit at a strictly smaller level than ``v`` in the previous
        computation's dependency structure — the level gate is what rules
        out a cycle of stale vertices re-validating each other (the
        "trimmed approximations" rule of KickStarter). The vertex's own
        initial event (root value, CC self-label) also competes.
        """
        algorithm = self.algorithm
        best = algorithm.identity
        parent = -1
        parent_level = -1
        v_level = int(level_snapshot[v]) if v < level_snapshot.shape[0] else 0
        self_payload = algorithm.self_event(v)
        if self_payload is not None:
            best = self_payload
        for u, w in neighbors_pull(csr, v, work):
            if u in in_question:
                continue
            if u < level_snapshot.shape[0] and level_snapshot[u] >= v_level:
                continue
            candidate = algorithm.propagate(self.states[u], w, None)
            if algorithm.reduce(best, candidate) != best:
                best = candidate
                parent = u
                parent_level = int(level_snapshot[u]) if u < level_snapshot.shape[0] else 0
        return best, parent, parent_level

    def _directed(self, edges, weights_from_graph: bool) -> List[Edge]:
        out: List[Edge] = []
        for edge in edges:
            w = (
                self.graph.edge_weight(edge.u, edge.v)
                if weights_from_graph
                else edge.w
            )
            out.append((edge.u, edge.v, w))
            if self.graph.symmetric and edge.u != edge.v:
                out.append((edge.v, edge.u, w))
        return out

    def _grow(self, n: int) -> None:
        current = self.states.shape[0]
        if n <= current:
            return
        extra = n - current
        self.states = np.concatenate(
            [self.states, np.full(extra, self.algorithm.identity)]
        )
        self.dependency = np.concatenate(
            [self.dependency, np.full(extra, -1, dtype=np.int64)]
        )
        self.level = np.concatenate([self.level, np.zeros(extra, dtype=np.int64)])
