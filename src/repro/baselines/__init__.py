"""Comparison systems of the paper's evaluation (§6.1).

* :mod:`repro.baselines.graphpulse` — cold-start recomputation on the
  GraphPulse accelerator ("GP" rows of Table 3);
* :mod:`repro.baselines.kickstarter` — KickStarter's trimmed-approximation
  streaming for selective/monotonic algorithms ("KS" rows);
* :mod:`repro.baselines.graphbolt` — GraphBolt's dependency-driven
  synchronous incremental refinement for accumulative algorithms
  ("GB" rows);
* :mod:`repro.baselines.bsp` — the shared synchronous vertex-centric
  substrate with software work counting.

All three expose the same ``initial_compute()`` / ``apply_batch(batch)``
API as :class:`~repro.core.streaming.JetStreamEngine` so the experiment
harness can drive identical streams through every system.
"""

from repro.baselines.bsp import BSPEngine
from repro.baselines.kickstarter import KickStarter, KickStarterResult
from repro.baselines.graphbolt import GraphBolt, GraphBoltResult
from repro.baselines.graphpulse import GraphPulseColdStart, ColdStartResult

__all__ = [
    "BSPEngine",
    "KickStarter",
    "KickStarterResult",
    "GraphBolt",
    "GraphBoltResult",
    "GraphPulseColdStart",
    "ColdStartResult",
]
