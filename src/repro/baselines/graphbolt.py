"""GraphBolt baseline: dependency-driven synchronous incremental refinement.

Re-implements the behaviour of Mariappan & Vora (EuroSys 2019) for the
accumulative algorithms the paper compares on (PageRank, Adsorption):

* the initial evaluation is a synchronous delta iteration that also builds
  GraphBolt's *aggregation dependency history* (per-iteration aggregation
  values), whose maintenance traffic we charge as bookkeeping bytes;
* on a batch, per-edge corrections are computed against the converged
  state (removed contributions negative, added contributions positive,
  degree changes re-weighting every out-edge of a mutated source — the
  same math as JetStream's Fig. 5 expansion), then refined through
  synchronous BSP iterations with a barrier per iteration and dependency
  history updates per touched vertex.

The functional results are exact (same fixed point as the event-driven
engine); the *cost* differences — two barriers per iteration, history
maintenance, synchronous full-frontier sweeps — are what make GraphBolt
slower than JetStream in Table 3/Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.base import AlgorithmKind, SourceContext
from repro.baselines.bsp import BSPEngine
from repro.core.metrics import SoftwareWork
from repro.graph.dynamic import DynamicGraph
from repro.streams import UpdateBatch

#: Bytes of aggregation-history state GraphBolt maintains per live vertex
#: per iteration (value + iteration tag + frontier membership).
_HISTORY_BYTES_PER_VERTEX = 24


@dataclass
class GraphBoltResult:
    """Outcome of one GraphBolt run (initial or per batch)."""

    states: np.ndarray
    work: SoftwareWork


class GraphBolt:
    """Streaming engine for accumulative algorithms."""

    def __init__(self, graph: DynamicGraph, algorithm):
        if algorithm.kind is not AlgorithmKind.ACCUMULATIVE:
            raise ValueError("GraphBolt model supports accumulative algorithms only")
        self.graph = graph
        self.algorithm = algorithm
        self.bsp = BSPEngine(algorithm)
        self.states: Optional[np.ndarray] = None
        self.history: List[GraphBoltResult] = []

    # ------------------------------------------------------------------
    def initial_compute(self) -> GraphBoltResult:
        """Full synchronous evaluation, building the dependency history."""
        csr = self.graph.snapshot()
        algorithm = self.algorithm
        self.states = np.full(csr.num_vertices, algorithm.identity, dtype=np.float64)
        deltas = np.zeros(csr.num_vertices)
        for v, payload in algorithm.initial_events(csr):
            deltas[v] += payload
        work = SoftwareWork()
        self.bsp.run_accumulative(
            csr,
            self.states,
            deltas,
            work,
            bookkeeping_bytes_per_vertex=_HISTORY_BYTES_PER_VERTEX,
        )
        result = GraphBoltResult(states=self.states.copy(), work=work)
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> GraphBoltResult:
        """Compute per-edge corrections and refine synchronously."""
        if self.states is None:
            raise RuntimeError("call initial_compute() before apply_batch()")
        batch.validate()
        algorithm = self.algorithm
        work = SoftwareWork()
        old_csr = self.graph.snapshot()
        old_n = old_csr.num_vertices

        deletions = [
            (e.u, e.v, self.graph.edge_weight(e.u, e.v)) for e in batch.deletions
        ]
        insertions = [(e.u, e.v, e.w) for e in batch.insertions]

        # Mutated sources: degree-dependent propagation re-weights every
        # out-edge (same expansion as JetStream's Fig. 5).
        if algorithm.degree_dependent:
            modified: Set[int] = {u for u, _, _ in deletions}
            modified.update(u for u, _, _ in insertions if u < old_n)
        else:
            modified = set()

        # Corrections against the old structure (negative removals).
        corrections: List[Tuple[int, float]] = []
        deleted_keys = {(u, v) for u, v, _ in deletions}
        for u in sorted(modified):
            ctx = SourceContext.of(old_csr, u)
            for v, w in old_csr.out_edges(u):
                work.vertex_reads_random += 1
                corrections.append(
                    (v, -algorithm.propagate(float(self.states[u]), w, ctx))
                )
        if not algorithm.degree_dependent:
            for u, v, w in deletions:
                ctx = SourceContext.of(old_csr, u)
                work.vertex_reads_random += 1
                corrections.append(
                    (v, -algorithm.propagate(float(self.states[u]), w, ctx))
                )

        # Mutate, then positive re-additions against the new structure.
        self.graph.apply_batch(insertions, [(u, v) for u, v, _ in deletions])
        new_csr = self.graph.snapshot()
        self._grow(new_csr.num_vertices)
        if algorithm.degree_dependent:
            readd_sources = set(modified)
            readd_sources.update(
                u for u, _, _ in insertions if u >= old_n
            )
            for u in sorted(readd_sources):
                ctx = SourceContext.of(new_csr, u)
                for v, w in new_csr.out_edges(u):
                    work.vertex_reads_random += 1
                    corrections.append(
                        (v, algorithm.propagate(float(self.states[u]), w, ctx))
                    )
        else:
            for u, v, w in insertions:
                ctx = SourceContext.of(new_csr, u)
                work.vertex_reads_random += 1
                corrections.append(
                    (v, algorithm.propagate(float(self.states[u]), w, ctx))
                )
        for v in range(old_n, new_csr.num_vertices):
            payload = algorithm.seed_event_for_new_vertex(v)
            if payload is not None:
                corrections.append((v, payload))

        # Dependency-driven refinement: every vertex whose in-contributions
        # changed re-aggregates (pulls all in-edges); changes ripple
        # synchronously until the aggregation history is consistent again.
        base = np.zeros(new_csr.num_vertices)
        for v, payload in algorithm.initial_events(new_csr):
            base[v] += payload
        seeds = {v for v, _ in corrections}
        seeds.update(range(old_n, new_csr.num_vertices))
        from repro.baselines.bsp import run_pull_refinement

        run_pull_refinement(
            algorithm,
            new_csr,
            self.states,
            base,
            seeds,
            work,
            bookkeeping_bytes_per_vertex=_HISTORY_BYTES_PER_VERTEX,
        )
        result = GraphBoltResult(states=self.states.copy(), work=work)
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    def _grow(self, n: int) -> None:
        current = self.states.shape[0]
        if n > current:
            self.states = np.concatenate(
                [self.states, np.full(n - current, self.algorithm.identity)]
            )
