"""On-chip network (16×16 crossbar) contention model (§4.4).

The event-generation streams reach the queue bins through a crossbar: "32
generators of 8 processing engines share the input ports of the 16×16
crossbar, and the output ports are shared among the queue bins." Each port
moves one flit per cycle; an event needs ``ceil(event_bytes / flit_bytes)``
flits. With events hashed across bins, the transfer time of a round's
event traffic is bounded by the busiest output port; we model the expected
imbalance of hashing ``n`` events into ``p`` ports with a max-load factor.

This refines the flat ``inserts / ports`` bound the timing model uses by
default; :class:`~repro.sim.timing.AcceleratorTimingModel` consults it
when ``model_noc_contention`` is enabled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import AcceleratorConfig


@dataclass(frozen=True)
class NocEstimate:
    """Cycles for one round's event traffic through the crossbar."""

    flits: int
    balanced_cycles: float
    contended_cycles: float

    @property
    def contention_factor(self) -> float:
        """How much hashing imbalance inflates the balanced bound."""
        if self.balanced_cycles <= 0:
            return 1.0
        return self.contended_cycles / self.balanced_cycles


class CrossbarModel:
    """Port-contention estimate for event insertion traffic."""

    def __init__(self, config: AcceleratorConfig, event_bytes: int = None):
        self.config = config
        self.event_bytes = event_bytes or config.event_bytes_jetstream
        self.flits_per_event = max(
            1, math.ceil(self.event_bytes / config.noc_flit_bytes)
        )

    def round_cycles(self, events: int) -> NocEstimate:
        """Estimate the cycles to push ``events`` through the crossbar."""
        ports = self.config.noc_ports
        flits = events * self.flits_per_event
        balanced = flits / ports
        contended = balanced * self._max_load_factor(events, ports)
        return NocEstimate(
            flits=flits, balanced_cycles=balanced, contended_cycles=contended
        )

    @staticmethod
    def _max_load_factor(items: int, bins: int) -> float:
        """Expected max/mean load of hashing ``items`` into ``bins``.

        Uses the classic balls-into-bins asymptotic: for m >= n*ln(n) the
        maximum load is m/n + Θ(sqrt(m ln n / n)); for tiny m it approaches
        ln n / ln ln n. We interpolate with the sqrt term, which matches
        simulation well in the regime the engine operates in (hundreds to
        millions of events per round).
        """
        if items <= 0 or bins <= 1:
            return 1.0
        mean = items / bins
        if mean <= 0:
            return 1.0
        spread = math.sqrt(2.0 * mean * math.log(bins)) if mean > 1 else math.log(bins)
        return (mean + spread) / mean
