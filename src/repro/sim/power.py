"""Power and area model (CACTI 7 substitute, §6.3 / Table 4).

Analytic component model: each accelerator component gets a per-instance
static power, per-instance dynamic power, and total area derived from its
capacity/width, with the JetStream deltas over GraphPulse arising
*structurally* from the wider event encoding (GraphPulse 8 B events →
JetStream/DAP 14 B):

* the event **queue** keeps the same 64 MB of physical eDRAM, so its
  static power/area barely move (+1%); its dynamic energy per insert rises
  with event width but fewer events are live during sparse streaming
  rounds — net slightly negative (paper: -6%);
* the **network** (16×16 crossbar) scales with flit width → the large
  +78%/+84% deltas;
* **scratchpads/buffers** widen slightly; **processing logic** gains the
  reset/stream-reader/coalescer extensions (+40% dynamic, +51% area) but
  is dominated by the FP units, so the absolute overhead stays small.

Per-unit constants are fitted to the GraphPulse baseline implied by the
paper's Table 4 (22 nm ITRS-HP SRAM via CACTI); the JetStream column is
*computed* from the structural multipliers, reproducing the table's
values and deltas. The table's "Total power" column follows the paper's
arithmetic: ``(static + dynamic) per instance × count``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import AcceleratorConfig


@dataclass
class ComponentBudget:
    """Power/area budget of one component group.

    ``static_mw`` and ``dynamic_mw`` are per instance; ``area_mm2`` is the
    total across all ``count`` instances (matching the paper's columns).
    """

    name: str
    count: int
    static_mw: float
    dynamic_mw: float
    area_mm2: float

    @property
    def total_mw(self) -> float:
        """Total power across all instances."""
        return (self.static_mw + self.dynamic_mw) * self.count

    def delta_vs(self, other: "ComponentBudget") -> Dict[str, float]:
        """Relative deltas (fractions) against a baseline budget."""

        def rel(a: float, b: float) -> float:
            return (a - b) / b if b else 0.0

        return {
            "static": rel(self.static_mw, other.static_mw),
            "dynamic": rel(self.dynamic_mw, other.dynamic_mw),
            "total": rel(self.total_mw, other.total_mw),
            "area": rel(self.area_mm2, other.area_mm2),
        }


# Per-unit constants fitted to the GraphPulse baseline implied by Table 4.
_QUEUE_STATIC_MW_PER_MB = 115.8  # 1 MB eDRAM bank
_QUEUE_DYNAMIC_MW_PER_BANK = 22.0
_QUEUE_AREA_MM2_PER_MB = 2.969
_SCRATCHPAD_STATIC_MW_PER_KB = 0.175
_SCRATCHPAD_DYNAMIC_MW_PER_KB = 0.566
_SCRATCHPAD_AREA_MM2_PER_KB = 0.01262  # total across the 8 pads, per KB each
_NOC_STATIC_MW_PER_PORT_BYTE = 0.400
_NOC_DYNAMIC_MW_PER_PORT_BYTE = 0.0267
_NOC_AREA_MM2_PER_PORT_BYTE = 0.0242
_LOGIC_DYNAMIC_MW_PER_PIPE = 0.1607
_LOGIC_AREA_MM2_PER_PIPE = 0.0580
#: Structural multipliers of the JetStream extensions.
_JETSTREAM_QUEUE_STATIC_SCALE = 1.01  # wider rows/decode for flag bits
_JETSTREAM_QUEUE_AREA_SCALE = 1.01
#: Live-event density: JetStream's streaming rounds run a sparser queue
#: (most vertices already converged), cutting dynamic activity enough to
#: offset the wider event (paper: -6% net).
_JETSTREAM_QUEUE_ACTIVITY = 0.54
_JETSTREAM_SCRATCHPAD_DYNAMIC_SCALE = 1.06
_JETSTREAM_SCRATCHPAD_AREA_SCALE = 1.04
_JETSTREAM_LOGIC_DYNAMIC_SCALE = 1.40
_JETSTREAM_LOGIC_AREA_SCALE = 1.51


class PowerAreaModel:
    """Computes Table 4-style component budgets for both accelerators."""

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.config = config or AcceleratorConfig()

    # ------------------------------------------------------------------
    def budgets(self, jetstream: bool = True) -> List[ComponentBudget]:
        """Component budgets for JetStream (or the GraphPulse baseline)."""
        config = self.config
        event_bytes = (
            config.event_bytes_dap if jetstream else config.event_bytes_graphpulse
        )
        event_scale = event_bytes / config.event_bytes_graphpulse

        queue_mb = config.queue_bytes / (1024 * 1024)
        banks = max(1, int(queue_mb))  # 1 MB banks (64 in the Table 1 config)
        mb_per_bank = queue_mb / banks
        queue = ComponentBudget(
            name="Queue",
            count=banks,
            static_mw=_QUEUE_STATIC_MW_PER_MB
            * mb_per_bank
            * (_JETSTREAM_QUEUE_STATIC_SCALE if jetstream else 1.0),
            dynamic_mw=_QUEUE_DYNAMIC_MW_PER_BANK
            * mb_per_bank
            * (event_scale * _JETSTREAM_QUEUE_ACTIVITY if jetstream else 1.0),
            area_mm2=_QUEUE_AREA_MM2_PER_MB
            * queue_mb
            * (_JETSTREAM_QUEUE_AREA_SCALE if jetstream else 1.0),
        )

        pad_kb = config.scratchpad_bytes / 1024
        scratchpad = ComponentBudget(
            name="Scratchpad",
            count=config.num_processors,
            static_mw=_SCRATCHPAD_STATIC_MW_PER_KB * pad_kb,
            dynamic_mw=_SCRATCHPAD_DYNAMIC_MW_PER_KB
            * pad_kb
            * (_JETSTREAM_SCRATCHPAD_DYNAMIC_SCALE if jetstream else 1.0),
            area_mm2=_SCRATCHPAD_AREA_MM2_PER_KB
            * pad_kb
            * config.num_processors
            * (_JETSTREAM_SCRATCHPAD_AREA_SCALE if jetstream else 1.0),
        )

        port_bytes = config.noc_ports * event_bytes
        network = ComponentBudget(
            name="Network",
            count=1,
            static_mw=_NOC_STATIC_MW_PER_PORT_BYTE * port_bytes,
            dynamic_mw=_NOC_DYNAMIC_MW_PER_PORT_BYTE * port_bytes,
            area_mm2=_NOC_AREA_MM2_PER_PORT_BYTE * port_bytes,
        )

        pipes = config.num_processors
        logic = ComponentBudget(
            name="Proc. Logic",
            count=1,
            static_mw=0.0,
            dynamic_mw=_LOGIC_DYNAMIC_MW_PER_PIPE
            * pipes
            * (_JETSTREAM_LOGIC_DYNAMIC_SCALE if jetstream else 1.0),
            area_mm2=_LOGIC_AREA_MM2_PER_PIPE
            * pipes
            * (_JETSTREAM_LOGIC_AREA_SCALE if jetstream else 1.0),
        )
        return [queue, scratchpad, network, logic]

    # ------------------------------------------------------------------
    def total_power_mw(self, jetstream: bool = True) -> float:
        """Total accelerator power (mW)."""
        return sum(b.total_mw for b in self.budgets(jetstream))

    def total_area_mm2(self, jetstream: bool = True) -> float:
        """Total accelerator area (mm²)."""
        return sum(b.area_mm2 for b in self.budgets(jetstream))

    def table4(self) -> List[Dict[str, object]]:
        """Rows reproducing Table 4: JetStream budgets + deltas vs
        GraphPulse."""
        jet = self.budgets(jetstream=True)
        base = self.budgets(jetstream=False)
        rows: List[Dict[str, object]] = []
        for j, b in zip(jet, base):
            delta = j.delta_vs(b)
            rows.append(
                {
                    "component": j.name,
                    "count": j.count,
                    "static_mw": j.static_mw,
                    "static_delta": delta["static"],
                    "dynamic_mw": j.dynamic_mw,
                    "dynamic_delta": delta["dynamic"],
                    "total_mw": j.total_mw,
                    "total_delta": delta["total"],
                    "area_mm2": j.area_mm2,
                    "area_delta": delta["area"],
                }
            )
        total_jet_mw = sum(j.total_mw for j in jet)
        total_base_mw = sum(b.total_mw for b in base)
        total_jet_area = sum(j.area_mm2 for j in jet)
        total_base_area = sum(b.area_mm2 for b in base)
        rows.append(
            {
                "component": "Total",
                "count": 0,
                "static_mw": float("nan"),
                "static_delta": float("nan"),
                "dynamic_mw": float("nan"),
                "dynamic_delta": float("nan"),
                "total_mw": total_jet_mw,
                "total_delta": (total_jet_mw - total_base_mw) / total_base_mw,
                "area_mm2": total_jet_area,
                "area_delta": (total_jet_area - total_base_area) / total_base_area,
            }
        )
        return rows
