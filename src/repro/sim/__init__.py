"""Architectural models: timing, DRAM, power/area, software cost models.

The functional engines (:mod:`repro.core`) record per-round work vectors;
this package converts them into cycle/time/energy estimates for the
Table 1 hardware configuration, and converts the software baselines' work
counters into time on the Table 1 software platform.

See DESIGN.md §1 for why an event-level model substitutes for the paper's
SST/DRAMSim2 cycle-accurate simulation.
"""

from repro.sim.memory import DRAMModel, MemoryTraffic
from repro.sim.timing import AcceleratorTimingModel, TimingReport, PhaseTiming
from repro.sim.power import PowerAreaModel, ComponentBudget
from repro.sim.cost_models import SoftwareCostModel
from repro.sim.noc import CrossbarModel, NocEstimate

__all__ = [
    "DRAMModel",
    "MemoryTraffic",
    "AcceleratorTimingModel",
    "TimingReport",
    "PhaseTiming",
    "PowerAreaModel",
    "ComponentBudget",
    "SoftwareCostModel",
    "CrossbarModel",
    "NocEstimate",
]
