"""Event-level accelerator timing model (SST substitute).

Converts the per-round work vectors recorded by the functional engines into
cycles on the Table 1 JetStream configuration. Each scheduler round (§4.3)
is bounded by whichever unit saturates:

* the 8 event-processing pipelines (1 event/cycle each, §4.4);
* the 32 event-generation streams walking edge lists;
* the queue insertion path through the 16×16 crossbar plus coalescer;
* the DRAM channels (see :mod:`repro.sim.memory`).

Rounds are separated by a scheduler barrier ("the scheduler waits for the
processors to idle before starting a new round"); phases add a setup cost
and, for streaming phases, the Stream Reader's batch fetch (§4.5).

The model is deterministic and linear in the number of rounds — the reason
it can sweep the full experiment grid where a Python cycle-accurate
pipeline model could not (see DESIGN.md §1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import AcceleratorConfig
from repro.core.metrics import PhaseStats, RunMetrics
from repro.sim.memory import DRAMModel


@dataclass
class PhaseTiming:
    """Cycle breakdown of one execution phase."""

    name: str
    rounds: int
    compute_cycles: float = 0.0
    generation_cycles: float = 0.0
    queue_cycles: float = 0.0
    memory_cycles: float = 0.0
    barrier_cycles: float = 0.0
    setup_cycles: float = 0.0
    total_cycles: float = 0.0

    @property
    def bound(self) -> str:
        """Which unit bounds this phase most often (diagnostic)."""
        parts = {
            "compute": self.compute_cycles,
            "generation": self.generation_cycles,
            "queue": self.queue_cycles,
            "memory": self.memory_cycles,
        }
        return max(parts, key=parts.get)


@dataclass
class TimingReport:
    """Cycle/time estimate for a whole engine run."""

    phases: List[PhaseTiming] = field(default_factory=list)
    clock_ghz: float = 1.0

    @property
    def total_cycles(self) -> float:
        return sum(p.total_cycles for p in self.phases)

    @property
    def time_ms(self) -> float:
        """Wall-clock estimate in milliseconds."""
        return self.total_cycles / (self.clock_ghz * 1e9) * 1e3

    @property
    def time_us(self) -> float:
        """Wall-clock estimate in microseconds."""
        return self.total_cycles / (self.clock_ghz * 1e9) * 1e6

    def summary(self) -> Dict[str, float]:
        """Flat diagnostic dictionary.

        Phase keys carry the phase's position (``phase_2_reevaluation``) so
        runs whose schedule visits the same phase name twice — e.g. the
        two-phase accumulative flow's repeated ``reevaluation`` — keep one
        entry per phase instead of silently collapsing onto one key.
        """
        out: Dict[str, float] = {
            "total_cycles": self.total_cycles,
            "time_ms": self.time_ms,
        }
        for index, p in enumerate(self.phases):
            out[f"phase_{index}_{p.name}"] = p.total_cycles
        return out


class AcceleratorTimingModel:
    """Turns :class:`~repro.core.metrics.RunMetrics` into cycle estimates.

    ``model_noc_contention`` replaces the flat queue-insertion bound with
    the crossbar hashing-imbalance estimate of
    :class:`repro.sim.noc.CrossbarModel`.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        model_noc_contention: bool = False,
    ):
        self.config = config or AcceleratorConfig()
        self.dram = DRAMModel(self.config)
        self._crossbar = None
        if model_noc_contention:
            from repro.sim.noc import CrossbarModel

            self._crossbar = CrossbarModel(self.config)

    # ------------------------------------------------------------------
    def run_time(
        self, metrics: RunMetrics, stream_records: int = 0
    ) -> TimingReport:
        """Timing for a full run.

        ``stream_records`` is the number of edge-update records the Stream
        Reader must fetch from memory before streaming phases (§4.5).
        """
        report = TimingReport(clock_ghz=self.config.clock_ghz)
        stream_cycles = self._stream_reader_cycles(stream_records)
        first_streaming_phase = True
        for phase in metrics.phases:
            timing = self.phase_time(phase)
            if phase.name != "initial" and first_streaming_phase:
                timing.setup_cycles += stream_cycles
                timing.total_cycles += stream_cycles
                first_streaming_phase = False
            report.phases.append(timing)
        return report

    def phase_time(self, phase: PhaseStats) -> PhaseTiming:
        """Timing for one phase: sum of per-round bounds plus barriers."""
        config = self.config
        processors = config.num_processors * config.processor_issue_per_cycle
        generators = config.num_processors * config.generation_streams_per_processor
        insert_ports = min(config.queue_insert_ports, config.noc_ports)

        timing = PhaseTiming(name=phase.name, rounds=phase.num_rounds)
        for work in phase.rounds:
            compute = math.ceil(work.events_processed / processors)
            compute += config.pipeline_latency_cycles if work.events_processed else 0
            generation = math.ceil(work.edges_read / generators)
            if self._crossbar is not None:
                queue = self._crossbar.round_cycles(work.queue_inserts).contended_cycles
            else:
                queue = math.ceil(work.queue_inserts / insert_ports)
            queue += config.coalescer_latency_cycles if work.queue_inserts else 0
            memory = self.dram.service_cycles(self.dram.traffic_of(work))
            round_cycles = max(compute, generation, queue, memory)
            timing.compute_cycles += compute
            timing.generation_cycles += generation
            timing.queue_cycles += queue
            timing.memory_cycles += memory
            timing.barrier_cycles += config.round_barrier_cycles
            timing.total_cycles += round_cycles + config.round_barrier_cycles
        timing.setup_cycles += config.phase_setup_cycles
        timing.total_cycles += config.phase_setup_cycles
        return timing

    # ------------------------------------------------------------------
    def _stream_reader_cycles(self, records: int) -> float:
        """Stream Reader fetch of the update batch from main memory.

        Whole cycles: a transfer occupying a fraction of a DRAM burst slot
        still consumes the full cycle.
        """
        if records <= 0:
            return 0.0
        bytes_needed = records * self.config.stream_record_bytes
        return float(math.ceil(bytes_needed / self.config.dram_bytes_per_cycle()))

    # ------------------------------------------------------------------
    def energy_mj(self, metrics: RunMetrics, power_w: float) -> float:
        """Energy estimate (mJ) given a total power draw.

        Used for the ~13× energy-efficiency claim of §6.3: shorter
        processing at essentially equal power.
        """
        report = self.run_time(metrics)
        return power_w * report.time_ms  # W * ms = mJ
