"""Off-chip DRAM channel model (DRAMSim2 substitute).

Models the properties the paper's results actually depend on:

* aggregate channel bandwidth (4 × 17 GB/s DDR3, Table 1);
* cache-line (64 B) transfer granularity — the source of the Fig. 11
  utilization gap: sparse JetStream events consume few bytes of each line
  they force across the pins;
* row-buffer (page) locality — batched, vertex-sorted accesses hit open
  pages (§4.2: "processing the events in one row of the queue within a
  short period provides a high spatial locality").

The functional engines report *unique lines* and *unique pages* per
processing batch; this model turns them into transfer cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AcceleratorConfig
from repro.core.metrics import RoundWork


@dataclass(frozen=True)
class MemoryTraffic:
    """Byte/page traffic of one scheduler round."""

    line_bytes: int
    spill_bytes: int
    pages_opened: int

    @property
    def total_bytes(self) -> int:
        """All bytes crossing the pins this round."""
        return self.line_bytes + self.spill_bytes


class DRAMModel:
    """Converts round traffic into DRAM service cycles."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    def traffic_of(self, work: RoundWork) -> MemoryTraffic:
        """Extract the round's off-chip traffic from its work vector."""
        lines = work.vertex_lines + work.edge_lines
        return MemoryTraffic(
            line_bytes=lines * self.config.dram_line_bytes,
            spill_bytes=work.spill_bytes,
            pages_opened=work.dram_pages,
        )

    def service_cycles(self, traffic: MemoryTraffic) -> float:
        """Cycles to service the round's traffic.

        Bandwidth term: bytes over aggregate channel bandwidth. Latency
        term: row activations, overlapped across channels (each channel
        pipelines its own activations with transfers, so only the
        per-channel activation stream adds latency).
        """
        config = self.config
        bandwidth_cycles = traffic.total_bytes / config.dram_bytes_per_cycle()
        activation_cycles = (
            traffic.pages_opened * config.dram_page_miss_cycles / config.dram_channels
        )
        # Transfers overlap activations; the channel is busy for whichever
        # stream dominates, plus a fraction of the other.
        return max(bandwidth_cycles, activation_cycles) + 0.25 * min(
            bandwidth_cycles, activation_cycles
        )

    def utilization(self, bytes_used: int, bytes_transferred: int) -> float:
        """Fig. 11 metric: useful bytes over transferred bytes."""
        if bytes_transferred <= 0:
            return 0.0
        return min(1.0, bytes_used / bytes_transferred)
