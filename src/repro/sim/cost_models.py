"""Software-platform cost model for the baseline frameworks (§6.1).

The baseline re-implementations (:mod:`repro.baselines`) are *functional*:
they execute KickStarter's and GraphBolt's algorithms and count the work
that dominates their runtime on the Table 1 software platform (36-core i9,
24 MB L2, 4×DDR4). This model converts those counters into wall-clock
estimates.

Cost constants and their provenance
-----------------------------------

* ``random_access_ns`` — a dependent random DRAM access on a loaded
  multi-socket-class server is 60–100 ns; graph frameworks hide part of it
  with MLP, so the *effective* cost lands near 35–45 ns. KickStarter's
  neighbor re-reads and pull-mode gathers pay this.
* ``atomic_op_ns`` — contended CAS/fetch-add ~10–20 ns (the paper singles
  out KickStarter's atomics for resetting vertex values).
* ``edge_traverse_ns`` / ``vertex_work_ns`` — streaming sequential work at
  a few bytes/cycle/core.
* ``barrier_us`` — an OpenMP-style barrier across 36 threads is 5–30 µs;
  BSP systems pay it once or twice per iteration.
* ``parallel_efficiency`` — graph workloads scale sublinearly (memory
  bound); 0.4–0.6 of linear at 36 cores is typical of published Ligra/
  GraphBolt scaling curves.

These magnitudes reproduce the paper's *shape*: the accelerator wins ~18×
on equal algorithmic work and the gap widens at small batches where the
software frameworks' fixed per-batch costs (barriers, full-frontier scans)
dominate. Absolute milliseconds are not the target (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SoftwareConfig
from repro.core.metrics import SoftwareWork


@dataclass
class SoftwareTimeReport:
    """Wall-clock estimate with per-term breakdown (ns totals)."""

    serial_ns: float
    parallel_ns: float
    total_ms: float
    terms: Dict[str, float]


class SoftwareCostModel:
    """Converts :class:`~repro.core.metrics.SoftwareWork` into time."""

    def __init__(self, config: Optional[SoftwareConfig] = None):
        self.config = config or SoftwareConfig()

    def time_report(self, work: SoftwareWork) -> SoftwareTimeReport:
        """Detailed estimate for one framework run."""
        config = self.config
        terms = {
            "random_reads": work.vertex_reads_random * config.random_access_ns,
            "sequential_reads": work.vertex_reads_sequential * config.cached_access_ns,
            "vertex_writes": work.vertex_writes * config.vertex_work_ns,
            "edges": work.edges_traversed * config.edge_traverse_ns,
            "atomics": work.atomics * config.atomic_op_ns,
            "bookkeeping": work.bookkeeping_bytes
            / max(1.0, config.dram_channels * config.dram_channel_gbps)
            if work.bookkeeping_bytes
            else 0.0,
        }
        parallel_ns = sum(terms.values()) / self.config.effective_cores()
        serial_ns = (
            work.iterations * config.barrier_us * 1e3
            + config.per_batch_overhead_us * 1e3
        )
        total_ms = (serial_ns + parallel_ns) / 1e6
        return SoftwareTimeReport(
            serial_ns=serial_ns,
            parallel_ns=parallel_ns,
            total_ms=total_ms,
            terms=terms,
        )

    def time_ms(self, work: SoftwareWork) -> float:
        """Wall-clock estimate in milliseconds."""
        return self.time_report(work).total_ms
