"""Host-side co-processor API (§4.1).

The paper's accelerator "is designed to work alongside a host as an
ASIC/FPGA-based co-processor with dedicated DRAM memory": the host
allocates and initializes the graph and initial events in accelerator
memory via a provided API, kicks off computation, is alerted on completion,
and reads the state back. :class:`Accelerator` reproduces that programming
model as the highest-level entry point of the library:

    accel = Accelerator()
    session = accel.load_graph(edges)
    session.configure(algorithm="sssp", source=0)
    session.run()                       # initial evaluation
    session.push_updates(insertions=[(2, 0, 1.0)], deletions=[(0, 1)])
    session.run()                       # incremental re-evaluation
    distances = session.read_results()

The facade also tracks the host<->accelerator transfer volumes (graph CSR
upload, batch records, result read-back) the way a driver would, exposing
them through :meth:`Session.transfer_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig
from repro.core.policies import DeletePolicy
from repro.core.fastpath import EXPRESS_STAT_KEYS, ExpressLane, ExpressResult
from repro.core.streaming import (
    JetStreamEngine,
    MultiVersionResult,
    StreamingResult,
    evaluate_at_versions,
)
from repro.graph.csr import EDGE_ENTRY_BYTES, VERTEX_STATE_BYTES
from repro.graph.dynamic import DeltaVersionStore, DynamicGraph, build_symmetric_graph
from repro.obs.metrics import REGISTRY as METRICS
from repro.obs.tracer import NULL_TRACER
from repro.streams import Edge, UpdateBatch

EdgeTuple = Tuple[int, int, float]


class HostApiError(RuntimeError):
    """Raised when the host protocol is violated (e.g. run before load)."""


@dataclass
class TransferStats:
    """Host <-> accelerator DMA volumes (bytes)."""

    graph_uploads: int = 0
    update_records: int = 0
    results_read: int = 0

    @property
    def total(self) -> int:
        return self.graph_uploads + self.update_records + self.results_read


class Session:
    """One query session on the accelerator."""

    def __init__(self, accelerator: "Accelerator", graph: DynamicGraph):
        self._accelerator = accelerator
        self._graph = graph
        self._engine: Optional[JetStreamEngine] = None
        self._pending: Optional[UpdateBatch] = None
        self._last_result: Optional[StreamingResult] = None
        self._express: Optional[ExpressLane] = None
        self._version_store: Optional[DeltaVersionStore] = None
        self._engine_opts = {"engine": "auto", "num_engines": 8, "backend": "thread"}
        self._closed = False
        self.transfers = TransferStats()
        # Initial CSR upload: out + in structures plus vertex states.
        upload = 2 * graph.num_edges * EDGE_ENTRY_BYTES
        upload += graph.num_vertices * VERTEX_STATE_BYTES
        self._record_transfer("graph_uploads", upload)

    @property
    def tracer(self):
        """The accelerator's observability hook (NULL_TRACER when off)."""
        return self._accelerator.tracer

    def _record_transfer(self, direction: str, nbytes: int) -> None:
        setattr(self.transfers, direction, getattr(self.transfers, direction) + nbytes)
        tracer = self._accelerator.tracer
        if tracer.enabled:
            tracer.event("transfer", direction=direction, bytes=nbytes)
        if METRICS.enabled:
            METRICS.record_transfer(direction, nbytes)

    # ------------------------------------------------------------------
    def configure(
        self,
        algorithm: str,
        source: int = 0,
        policy: DeletePolicy = DeletePolicy.DAP,
        engine: str = "auto",
        num_engines: int = 8,
        backend: str = "thread",
        **algorithm_kwargs,
    ) -> "Session":
        """Bind the application (Reduce/Propagate pair) to the session.

        ``engine`` selects the event substrate: ``auto`` (default) uses the
        vectorized SoA kernels when the algorithm supports them, ``scalar``
        forces the boxed-event reference path, ``vectorized`` requires the
        array hooks and raises otherwise, and ``sharded`` runs
        ``num_engines`` parallel engines over graph slices (Table 1, §4.7)
        with results bit-identical to ``vectorized``. With
        ``engine="sharded"``, ``backend`` picks the execution substrate:
        ``"thread"`` (default) or ``"process"`` (one worker process per
        pool slot over shared-memory state arrays).

        Reconfiguring an already-run session starts a fresh query: the next
        :meth:`run` is an initial evaluation on the current graph, and
        :meth:`read_results` is refused until it happens. A staged
        (un-run) batch blocks reconfiguration — run or it would be lost.
        """
        if self._closed:
            raise HostApiError(
                "session is closed; open a new one with load_graph()"
            )
        if self._pending is not None:
            raise HostApiError(
                "cannot reconfigure with a staged update batch; run() it "
                "first (the batch would otherwise be silently dropped)"
            )
        algo = make_algorithm(algorithm, source=source, **algorithm_kwargs)
        if algo.needs_symmetric and not self._graph.symmetric:
            raise HostApiError(
                f"{algorithm} needs a symmetric graph; pass symmetric=True "
                "to Accelerator.load_graph"
            )
        if self._engine is not None:
            self._engine.close()
        self._engine = JetStreamEngine(
            self._graph,
            algo,
            config=self._accelerator.config,
            policy=policy,
            engine=engine,
            num_engines=num_engines,
            backend=backend,
            tracer=self._accelerator.tracer,
        )
        self._engine_opts = {
            "engine": engine,
            "num_engines": num_engines,
            "backend": backend,
        }
        # A new engine has no results: drop the previous query's state so
        # run() performs the initial evaluation instead of demanding a
        # batch for an engine that never ran initial_compute().
        self._last_result = None
        self._express = None
        return self

    def enable_versioning(
        self, keep_versions: Optional[int] = None
    ) -> "Session":
        """Start recording graph versions for time-travel queries.

        From this point every applied batch (:meth:`run`) and express
        single (:meth:`apply_update`) is logged as a delta in a
        :class:`~repro.graph.dynamic.DeltaVersionStore`, making historical
        versions reconstructible and enabling
        :meth:`run_at_versions`. ``keep_versions`` bounds retention (older
        versions fold into the base and report ``KeyError`` — the serve
        layer surfaces that as ``VERSION_EVICTED``); ``None`` keeps all.
        Re-enabling rebases the store on the current version.
        """
        if self._closed:
            raise HostApiError("session is closed")
        self._version_store = DeltaVersionStore(
            self._graph, keep_versions=keep_versions
        )
        return self

    @property
    def version_store(self) -> Optional[DeltaVersionStore]:
        """The delta version store (None until :meth:`enable_versioning`)."""
        return self._version_store

    def push_updates(
        self,
        insertions: Sequence[EdgeTuple] = (),
        deletions: Sequence[Tuple[int, int]] = (),
    ) -> "Session":
        """Stage a batch of streaming updates for the next :meth:`run`."""
        if self._pending is not None:
            raise HostApiError("a batch is already staged; run() it first")
        self._pending = UpdateBatch(
            insertions=[Edge(u, v, w) for u, v, w in insertions],
            deletions=[Edge(u, v) for u, v in deletions],
        )
        self._record_transfer(
            "update_records",
            self._pending.size * self._accelerator.config.stream_record_bytes,
        )
        return self

    def run(self) -> StreamingResult:
        """Run the accelerator: initial evaluation, or the staged batch."""
        if self._engine is None:
            raise HostApiError("configure() the session before run()")
        if self._last_result is None:
            self._last_result = self._engine.initial_compute()
        else:
            if self._pending is None:
                raise HostApiError("no staged updates; push_updates() first")
            batch, self._pending = self._pending, None
            self._last_result = self._engine.apply_batch(batch)
            # The host swaps a fresh CSR pointer after each batch (§4.7).
            self._record_transfer("graph_uploads", 2 * batch.size * EDGE_ENTRY_BYTES)
            if self._version_store is not None:
                self._version_store.record_batch(
                    [(e.u, e.v, e.w) for e in batch.insertions],
                    [(e.u, e.v) for e in batch.deletions],
                )
        return self._last_result

    def run_at_versions(
        self, v_lo: int, v_hi: Optional[int] = None
    ) -> MultiVersionResult:
        """Evaluate the configured query at every retained version in range.

        Reconstructs the snapshots ``v_lo..v_hi`` (inclusive; ``v_hi``
        defaults to the current version) via the delta version store,
        extracts their common edge set, converges the query on it *once*,
        and fans out one addition-only pass per version — the CommonGraph
        work-sharing conversion amortized across snapshots. Selective
        algorithms share the prefix; accumulative ones fall back to
        independent cold evaluations (``result.shared`` says which
        happened). Requires :meth:`enable_versioning` and a configured
        session.
        """
        if self._closed:
            raise HostApiError("session is closed")
        if self._engine is None:
            raise HostApiError("configure() the session before run_at_versions()")
        if self._version_store is None:
            raise HostApiError(
                "enable_versioning() before run_at_versions() — no version "
                "history is being recorded"
            )
        if self._pending is not None:
            raise HostApiError(
                "a batch is staged; run() it before run_at_versions()"
            )
        if v_hi is None:
            v_hi = self._graph.version
        versions = [
            v for v in self._version_store.versions() if v_lo <= v <= v_hi
        ]
        if not versions:
            raise HostApiError(
                f"no retained versions in [{v_lo}, {v_hi}]; retained: "
                f"{self._version_store.versions()}"
            )
        result = evaluate_at_versions(
            self._version_store,
            self._engine.algorithm,
            versions,
            config=self._accelerator.config,
            tracer=self._accelerator.tracer,
            **self._engine_opts,
        )
        for ver in result.versions:
            self._record_transfer(
                "results_read",
                result.states[ver].shape[0] * VERTEX_STATE_BYTES,
            )
        return result

    def apply_update(
        self, u: int, v: int, w: float = 1.0, op: str = "insert"
    ) -> ExpressResult:
        """Apply one edge update on the express lane (sub-batch latency).

        Classifies the insert/delete against the converged state: safe
        updates are absorbed with an O(degree) check and at most one state
        write; unsafe ones transparently run as a single-edge batch on the
        engine. Requires a converged state — :meth:`configure` *and* an
        initial :meth:`run` must have happened — and refuses to overtake a
        staged batch (the stream order would silently invert).
        """
        if self._engine is None:
            raise HostApiError("configure() the session before apply_update()")
        if self._last_result is None:
            raise HostApiError(
                "apply_update() needs a converged state to classify "
                "against; run() the initial evaluation first"
            )
        if self._pending is not None:
            raise HostApiError(
                "a batch is staged; run() it before apply_update() "
                "(the single update would overtake the batch in the stream)"
            )
        if self._express is None:
            self._express = ExpressLane(self._engine)
        self._record_transfer(
            "update_records", self._accelerator.config.stream_record_bytes
        )
        result = self._express.apply(u, v, w, op)
        if self._version_store is not None:
            # Both express paths (safe absorb and engine fallthrough) bump
            # the graph version by one; log the single as a delta so
            # time-travel reads see express traffic too.
            if result.op == "insert":
                self._version_store.record_batch([(u, v, w)], [])
            else:
                self._version_store.record_batch([], [(u, v)])
        tracer = self._accelerator.tracer
        if tracer.enabled:
            # Safe updates produce no run span; this event is their trace
            # footprint (and, at root level, it picks up any active span
            # links such as the serving request id).
            tracer.event(
                "express",
                op=result.op,
                safe=result.safe,
                reason=result.reason,
                latency_s=result.latency_s,
                classify_s=result.classify_s,
            )
        if result.engine_result is not None:
            self._last_result = result.engine_result
            # The fallthrough ran as a one-edge batch on the engine, which
            # swaps a fresh CSR pointer exactly like run() does — mirror its
            # per-batch upload record so transfer accounting stays identical
            # between the two paths for the same update.
            self._record_transfer("graph_uploads", 2 * EDGE_ENTRY_BYTES)
        return result

    def express_stats(self) -> dict:
        """Express-lane counters: safe applies, fallthroughs, resyncs."""
        if self._express is None:
            return {key: 0 for key in EXPRESS_STAT_KEYS}
        return dict(self._express.stats)

    def read_results(self) -> np.ndarray:
        """DMA the converged vertex states back to the host."""
        if self._last_result is None:
            raise HostApiError("nothing computed yet; run() first")
        states = self._engine.query_result()
        self._record_transfer("results_read", states.shape[0] * VERTEX_STATE_BYTES)
        return states

    def transfer_stats(self) -> TransferStats:
        """Cumulative host<->accelerator transfer volumes."""
        return self.transfers

    def graph_store_stats(self) -> dict:
        """Counters of the host-side dynamic graph store.

        Exposes :meth:`repro.graph.dynamic.DynamicGraph.store_stats` —
        batches applied, array splices, lazy flushes, snapshot builds and
        cache hits, full rebuilds — so a driver can verify the incremental
        snapshot path is actually engaged for its update pattern. With
        :meth:`enable_versioning` active, a ``version_store`` sub-dict
        reports retention counters (versions held, delta bytes, evictions).
        """
        stats = self._graph.store_stats()
        if self._version_store is not None:
            stats["version_store"] = self._version_store.stats()
        return stats

    @property
    def graph(self) -> DynamicGraph:
        """The session's evolving graph (host-side master copy)."""
        return self._graph

    @property
    def last_result(self) -> Optional[StreamingResult]:
        """The most recent run's result record."""
        return self._last_result

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the session."""
        return self._closed

    def close(self) -> None:
        """Release the session and deregister it from the accelerator.

        Idempotent. A long-running host opens and closes many sessions
        over its lifetime; deregistering here is what keeps
        ``Accelerator.sessions`` from leaking every engine/graph ever
        opened. A closed session refuses further protocol calls the same
        way an unconfigured one does.
        """
        if self._closed:
            return
        self._closed = True
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        self._express = None
        self._accelerator._deregister(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Accelerator:
    """The co-processor as the host driver sees it.

    ``tracer`` (a :class:`repro.obs.Tracer`) threads the observability
    layer through every session's engine and records host DMA transfers
    as trace events; the default :data:`NULL_TRACER` keeps it all off.
    """

    def __init__(self, config: Optional[AcceleratorConfig] = None, tracer=None):
        self.config = config or AcceleratorConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.sessions: List[Session] = []

    def load_graph(
        self,
        edges: Iterable[EdgeTuple],
        num_vertices: int = 0,
        symmetric: bool = False,
    ) -> Session:
        """Allocate and upload a graph, returning a fresh session."""
        if symmetric:
            graph = build_symmetric_graph(edges, num_vertices)
        else:
            graph = DynamicGraph.from_edges(edges, num_vertices)
        session = Session(self, graph)
        self.sessions.append(session)
        return session

    def _deregister(self, session: Session) -> None:
        """Drop a closed session from the registry (close() calls this)."""
        try:
            self.sessions.remove(session)
        except ValueError:
            pass  # already deregistered (double close, or external removal)

    def close(self) -> None:
        """Release every open session (tolerates already-closed ones)."""
        for session in list(self.sessions):
            session.close()

    def __enter__(self) -> "Accelerator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
