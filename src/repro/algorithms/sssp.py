"""Single-Source Shortest Path in the event-driven model (Algorithm 1)."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    Algorithm,
    AlgorithmKind,
    SourceContext,
    classify_monotonic_update,
)


class SSSP(Algorithm):
    """Shortest path distances from ``source``.

    * ``identity`` = +inf (unreachable / initial value);
    * ``reduce`` = min (keep the shortest incoming path);
    * ``propagate`` = state + edge weight;
    * monotonic direction: decreasing (smaller is more progressed).
    """

    name = "sssp"
    kind = AlgorithmKind.SELECTIVE
    identity = math.inf
    reduce_ufunc = np.minimum

    def __init__(self, source: int = 0):
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = int(source)

    def reduce(self, a: float, b: float) -> float:
        return a if a <= b else b

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        return value + weight

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        if self.source >= graph.num_vertices:
            raise ValueError(
                f"source {self.source} outside graph of {graph.num_vertices} vertices"
            )
        return [(self.source, 0.0)]

    def self_event(self, v: int) -> Optional[float]:
        return 0.0 if v == self.source else None

    def more_progressed(self, a: float, b: float) -> bool:
        return a < b

    def classify_update(self, view, u, v, w, op):
        # Distances only shrink; with positive weights every supporting
        # predecessor is strictly closer, so the generic monotonic rules
        # apply unmodified.
        return classify_monotonic_update(self, view, u, v, w, op)

    def propagate_arrays(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return values + weights

    def more_progressed_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a < b

    def self_events_arrays(self, vertices):
        mask = vertices == self.source
        return mask, np.where(mask, 0.0, 0.0)
