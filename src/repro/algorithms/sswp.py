"""Single-Source Widest Path (maximum bottleneck capacity) — event-driven."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    Algorithm,
    AlgorithmKind,
    SourceContext,
    classify_monotonic_update,
)


class SSWP(Algorithm):
    """Widest-path capacity from ``source``.

    * ``identity`` = 0 (no path);
    * ``reduce`` = max (keep the widest incoming path);
    * ``propagate`` = min(state, edge weight) — the bottleneck narrows;
    * monotonic direction: increasing (larger is more progressed).

    The source itself has unbounded capacity (+inf).
    """

    name = "sswp"
    kind = AlgorithmKind.SELECTIVE
    identity = 0.0
    reduce_ufunc = np.maximum

    def __init__(self, source: int = 0):
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = int(source)

    def reduce(self, a: float, b: float) -> float:
        return a if a >= b else b

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        return value if value <= weight else weight

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        if self.source >= graph.num_vertices:
            raise ValueError(
                f"source {self.source} outside graph of {graph.num_vertices} vertices"
            )
        return [(self.source, math.inf)]

    def self_event(self, v: int) -> Optional[float]:
        return math.inf if v == self.source else None

    def more_progressed(self, a: float, b: float) -> bool:
        return a > b

    def classify_update(self, view, u, v, w, op):
        # Widths plateau (min(x, w) == x whenever w >= x), so equal-width
        # cycles can sustain a spurious fixed point after a delete; the
        # generic rules' *strict*-supporter requirement is load bearing
        # here — an equal-width witness is never accepted.
        return classify_monotonic_update(self, view, u, v, w, op)

    def propagate_arrays(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.minimum(values, weights)

    def more_progressed_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a > b

    def self_events_arrays(self, vertices):
        mask = vertices == self.source
        return mask, np.where(mask, math.inf, 0.0)
