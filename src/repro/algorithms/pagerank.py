"""Incremental (delta) PageRank — the Maiter/DAIC formulation (§3.1).

The accumulative form satisfies the Reordering and Simplification
properties: vertex state is the *sum* of deltas received, every received
delta is forwarded scaled by ``alpha / out_degree``, and the converged state
solves the (unnormalized) PageRank fixed point

    r(v) = (1 - alpha) + alpha * sum_{u -> v} r(u) / out_degree(u).

Dangling vertices simply absorb their mass (no redistribution), matching
the delta formulation. Edge mutation changes ``out_degree`` and hence every
out-edge contribution of the source — the ``degree_dependent`` flag makes
the streaming engine apply the Fig. 5 sink construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, AlgorithmKind, SourceContext


class PageRank(Algorithm):
    """Delta-accumulative PageRank.

    Parameters
    ----------
    alpha:
        Damping factor (paper convention: teleport mass ``1 - alpha``).
    tolerance:
        Deltas below this magnitude are not propagated (termination).
    """

    name = "pagerank"
    kind = AlgorithmKind.ACCUMULATIVE
    identity = 0.0
    degree_dependent = True
    reduce_ufunc = np.add
    ctx_needs_weight_sums = False

    def __init__(self, alpha: float = 0.85, tolerance: float = 1e-6):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly between 0 and 1")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.alpha = float(alpha)
        self.propagation_threshold = float(tolerance)

    def reduce(self, a: float, b: float) -> float:
        return a + b

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        if ctx.out_degree == 0:
            return 0.0
        return self.alpha * value / ctx.out_degree

    def propagation_factor(self, ctx: SourceContext) -> float:
        if ctx.out_degree == 0:
            return 0.0
        return self.alpha / ctx.out_degree

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        teleport = 1.0 - self.alpha
        return [(v, teleport) for v in range(graph.num_vertices)]

    def seed_event_for_new_vertex(self, v: int) -> Optional[float]:
        return 1.0 - self.alpha

    def initial_events_arrays(self, graph):
        n = graph.num_vertices
        return (
            np.arange(n, dtype=np.int64),
            np.full(n, 1.0 - self.alpha, dtype=np.float64),
        )

    def propagate_ctx_arrays(self, values, weights, out_degrees, out_weight_sums):
        # Same expression order as the scalar hook: (alpha * value) / degree.
        degrees = np.asarray(out_degrees, dtype=np.float64)
        out = np.zeros(len(values), dtype=np.float64)
        np.divide(self.alpha * values, degrees, out=out, where=degrees > 0)
        return out

    def propagation_factor_arrays(self, out_degrees, out_weight_sums):
        degrees = np.asarray(out_degrees, dtype=np.float64)
        out = np.zeros(len(degrees), dtype=np.float64)
        np.divide(self.alpha, degrees, out=out, where=degrees > 0)
        return out

    def seed_events_for_new_vertices(self, start, stop):
        return (
            np.arange(start, stop, dtype=np.int64),
            np.full(stop - start, 1.0 - self.alpha, dtype=np.float64),
        )
