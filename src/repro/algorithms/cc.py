"""Connected Components (label propagation by minimum id) — event-driven.

Every vertex seeds its own id; labels spread along (symmetrized) edges and
each vertex keeps the minimum label it has seen. Like BFS, CC settles large
clusters to one shared value, defeating VAP and motivating DAP (§5.2).

CC is the one application that needs an undirected view of the graph
(:attr:`needs_symmetric`): deleting an edge may split a component, and the
tag/request propagation must travel against the original edge direction.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    Algorithm,
    AlgorithmKind,
    SourceContext,
    classify_monotonic_update,
)


class ConnectedComponents(Algorithm):
    """Minimum-vertex-id component labels.

    * ``identity`` = +inf; ``reduce`` = min; ``propagate`` = state
      (labels pass through unchanged);
    * every vertex receives its own id as an initial event, and that same
      payload is its self event (re-injected if the vertex resets — without
      it a split-off component could never rediscover its new minimum).
    """

    name = "cc"
    kind = AlgorithmKind.SELECTIVE
    identity = math.inf
    needs_symmetric = True
    reduce_ufunc = np.minimum

    def reduce(self, a: float, b: float) -> float:
        return a if a <= b else b

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        return value

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        return [(v, float(v)) for v in range(graph.num_vertices)]

    def self_event(self, v: int) -> Optional[float]:
        return float(v)

    def seed_event_for_new_vertex(self, v: int) -> Optional[float]:
        return float(v)

    def more_progressed(self, a: float, b: float) -> bool:
        return a < b

    def classify_update(self, view, u, v, w, op):
        # Labels pass through unchanged, so an in-edge witness can never
        # be *strictly* more progressed than its target: the generic rules
        # collapse to "insert between equal labels / delete where each
        # endpoint carries its own minimum label" — everything else (a
        # potential merge or split) takes the engine path.
        return classify_monotonic_update(self, view, u, v, w, op)

    def propagate_arrays(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return values

    def more_progressed_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a < b

    def initial_events_arrays(self, graph):
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        return ids, ids.astype(np.float64)

    def self_events_arrays(self, vertices):
        return np.ones(len(vertices), dtype=bool), vertices.astype(np.float64)

    def seed_events_for_new_vertices(self, start, stop):
        ids = np.arange(start, stop, dtype=np.int64)
        return ids, ids.astype(np.float64)
