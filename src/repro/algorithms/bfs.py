"""Breadth-First Search (hop distance) — event-driven.

BFS is the paper's motivating case for the DAP optimization (§5.2): large
plateaus of vertices share the same level value, so value comparison (VAP)
cannot prune delete propagation, while source-dependency tracking can.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    Algorithm,
    AlgorithmKind,
    SourceContext,
    classify_monotonic_update,
)


class BFS(Algorithm):
    """Hop distance from ``source`` (edge weights are ignored).

    * ``identity`` = +inf; ``reduce`` = min; ``propagate`` = state + 1.
    """

    name = "bfs"
    kind = AlgorithmKind.SELECTIVE
    identity = math.inf
    reduce_ufunc = np.minimum

    def __init__(self, source: int = 0):
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = int(source)

    def reduce(self, a: float, b: float) -> float:
        return a if a <= b else b

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        return value + 1.0

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        if self.source >= graph.num_vertices:
            raise ValueError(
                f"source {self.source} outside graph of {graph.num_vertices} vertices"
            )
        return [(self.source, 0.0)]

    def self_event(self, v: int) -> Optional[float]:
        return 0.0 if v == self.source else None

    def more_progressed(self, a: float, b: float) -> bool:
        return a < b

    def classify_update(self, view, u, v, w, op):
        # Hop counts strictly increase along supports (state + 1), so a
        # supporting predecessor is always one level closer — the generic
        # strict-witness rescan is exact.
        return classify_monotonic_update(self, view, u, v, w, op)

    def propagate_arrays(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return values + 1.0

    def more_progressed_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a < b

    def self_events_arrays(self, vertices):
        mask = vertices == self.source
        return mask, np.where(mask, 0.0, 0.0)
