"""Linear equation solver as a DAIC application.

The paper notes that "many Linear Equation Solvers" satisfy the Reordering
and Simplification properties (§3.1). Concretely: solving

    x = b + M x        (M the weighted adjacency operator)

by Jacobi/asynchronous relaxation is delta-accumulative — each incoming
delta is added to the vertex state and forwarded scaled by the edge weight.
Convergence requires a contraction (‖M‖ < 1), which the constructor checks
via the column-sum bound on the graph handed to ``initial_events``.

Unlike PageRank/Adsorption, propagation here depends only on the edge
weight, *not* on the source's degree — so this application exercises the
non-degree-dependent accumulative deletion path (negative events only for
the actually deleted edges, no Fig. 5 sink expansion). An edge-weight
change is expressed as delete + insert, as everywhere else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, AlgorithmKind, SourceContext


class LinearSystemSolver(Algorithm):
    """Asynchronous Jacobi solver for ``x = b + M x`` over a graph.

    Parameters
    ----------
    constants:
        The ``b`` vector as a (possibly sparse) mapping vertex -> value.
        Missing vertices default to 0.
    tolerance:
        Deltas below this magnitude are not propagated.
    check_contraction:
        Verify the column-sum bound ``max_u sum_v |w(u, v)| < 1`` when the
        initial events are created. Streaming updates are *not* re-checked
        (the engine has no hook there); callers adding heavy edges are
        responsible for keeping the operator contractive.
    """

    name = "linear"
    kind = AlgorithmKind.ACCUMULATIVE
    identity = 0.0
    degree_dependent = False
    weight_scaled_propagation = True
    reduce_ufunc = np.add
    ctx_needs_weight_sums = False

    def __init__(
        self,
        constants: Optional[Dict[int, float]] = None,
        tolerance: float = 1e-9,
        check_contraction: bool = True,
    ):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.constants = dict(constants) if constants else {0: 1.0}
        self.propagation_threshold = float(tolerance)
        self.check_contraction = bool(check_contraction)

    def reduce(self, a: float, b: float) -> float:
        return a + b

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        return value * weight

    def propagation_factor(self, ctx: SourceContext) -> float:
        return 1.0

    def propagate_ctx_arrays(self, values, weights, out_degrees, out_weight_sums):
        return np.asarray(values, dtype=np.float64) * weights

    def propagation_factor_arrays(self, out_degrees, out_weight_sums):
        return np.ones(len(out_degrees), dtype=np.float64)

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        if self.check_contraction:
            self._assert_contractive(graph)
        events = []
        for v, value in sorted(self.constants.items()):
            if v >= graph.num_vertices:
                raise ValueError(f"constant vertex {v} outside graph")
            if value != 0.0:
                events.append((v, float(value)))
        return events

    def _assert_contractive(self, graph) -> None:
        worst = 0.0
        for u in range(graph.num_vertices):
            total = sum(abs(w) for _, w in graph.out_edges(u))
            worst = max(worst, total)
        if worst >= 1.0:
            raise ValueError(
                f"operator is not a contraction (max out-weight sum {worst:.3f} "
                ">= 1); the asynchronous solve would diverge"
            )


def reference_solve(csr, constants: Dict[int, float], tol: float = 1e-12):
    """Dense oracle: solve ``(I - M^T) x = b`` directly with numpy.

    ``M[u, v] = w(u -> v)`` contributes ``w * x[u]`` into ``x[v]``, i.e.
    ``x = b + M^T x`` in matrix convention.
    """
    import numpy as np

    n = csr.num_vertices
    matrix = np.eye(n)
    for u, v, w in csr.edges():
        matrix[v, u] -= w
    b = np.zeros(n)
    for v, value in constants.items():
        b[v] = value
    return np.linalg.solve(matrix, b)
