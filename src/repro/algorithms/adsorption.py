"""Adsorption (label/interest diffusion) — accumulative DAIC form.

Adsorption spreads an injected signal from labelled seed vertices across
weighted edges; each vertex's state is

    s(v) = p_inj * inj(v) + p_cont * sum_{u -> v} wbar(u, v) * s(u),

with ``wbar`` the edge weight normalized by the source's total out-weight.
Like PageRank it has an incremental delta form (§3.1 "PageRank and
Adsorption have incremental forms") where every received delta is forwarded
scaled by ``p_cont * w / out_weight_sum`` — and is therefore
``degree_dependent`` (total out-weight changes on mutation → Fig. 5 sink
construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, AlgorithmKind, SourceContext


class Adsorption(Algorithm):
    """Scalar adsorption with injected seed mass.

    Parameters
    ----------
    injections:
        Mapping of seed vertex -> injected signal. Defaults to injecting
        1.0 at vertex 0.
    p_inject, p_continue:
        Injection and continuation probabilities; ``p_continue < 1``
        guarantees geometric convergence.
    tolerance:
        Deltas below this magnitude are not propagated.
    """

    name = "adsorption"
    kind = AlgorithmKind.ACCUMULATIVE
    identity = 0.0
    degree_dependent = True
    reduce_ufunc = np.add

    def __init__(
        self,
        injections: Optional[Dict[int, float]] = None,
        p_inject: float = 0.25,
        p_continue: float = 0.70,
        tolerance: float = 1e-6,
    ):
        if p_inject <= 0 or p_continue <= 0 or p_inject + p_continue > 1.0:
            raise ValueError("require p_inject, p_continue > 0 and sum <= 1")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.injections = dict(injections) if injections else {0: 1.0}
        self.p_inject = float(p_inject)
        self.p_continue = float(p_continue)
        self.propagation_threshold = float(tolerance)

    def reduce(self, a: float, b: float) -> float:
        return a + b

    weight_scaled_propagation = True

    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        if ctx.out_weight_sum <= 0.0:
            return 0.0
        return self.p_continue * value * weight / ctx.out_weight_sum

    def propagation_factor(self, ctx: SourceContext) -> float:
        if ctx.out_weight_sum <= 0.0:
            return 0.0
        return self.p_continue / ctx.out_weight_sum

    def initial_events(self, graph) -> List[Tuple[int, float]]:
        events = []
        for v, mass in sorted(self.injections.items()):
            if v >= graph.num_vertices:
                raise ValueError(f"injection vertex {v} outside graph")
            events.append((v, self.p_inject * mass))
        return events

    def seed_event_for_new_vertex(self, v: int) -> Optional[float]:
        mass = self.injections.get(v)
        return self.p_inject * mass if mass is not None else None

    def propagate_ctx_arrays(self, values, weights, out_degrees, out_weight_sums):
        # Same expression order as the scalar hook:
        # ((p_continue * value) * weight) / out_weight_sum.
        sums = np.asarray(out_weight_sums, dtype=np.float64)
        out = np.zeros(len(values), dtype=np.float64)
        np.divide(
            (self.p_continue * values) * weights, sums, out=out, where=sums > 0.0
        )
        return out

    def propagation_factor_arrays(self, out_degrees, out_weight_sums):
        sums = np.asarray(out_weight_sums, dtype=np.float64)
        out = np.zeros(len(sums), dtype=np.float64)
        np.divide(self.p_continue, sums, out=out, where=sums > 0.0)
        return out
