"""Delta-accumulative (DAIC) graph algorithms for the event-driven model.

The paper evaluates six applications (§6.1):

* selective / monotonic (KickStarter class): Single-Source Shortest Path
  (SSSP), Single-Source Widest Path (SSWP), Breadth-First Search (BFS),
  Connected Components (CC);
* accumulative (GraphBolt class): incremental PageRank and Adsorption.

Each is expressed through the :class:`~repro.algorithms.base.Algorithm`
interface — ``Identity``, ``Reduce``, ``Propagate`` (§3.1, Algorithm 1) —
which the GraphPulse/JetStream engines consume unchanged.
"""

from repro.algorithms.base import (
    Algorithm,
    AlgorithmKind,
    SourceContext,
)
from repro.algorithms.sssp import SSSP
from repro.algorithms.sswp import SSWP
from repro.algorithms.bfs import BFS
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import PageRank
from repro.algorithms.adsorption import Adsorption
from repro.algorithms.linear import LinearSystemSolver


def make_algorithm(name: str, source: int = 0, **kwargs) -> Algorithm:
    """Construct an algorithm by its paper short name.

    ``name`` is one of ``sssp``, ``sswp``, ``bfs``, ``cc``, ``pagerank``
    (alias ``pr``), ``adsorption``. ``source`` seeds the rooted queries.
    """
    key = name.strip().lower()
    if key == "sssp":
        return SSSP(source, **kwargs)
    if key == "sswp":
        return SSWP(source, **kwargs)
    if key == "bfs":
        return BFS(source, **kwargs)
    if key == "cc":
        return ConnectedComponents(**kwargs)
    if key in ("pagerank", "pr"):
        return PageRank(**kwargs)
    if key == "linear":
        return LinearSystemSolver(**kwargs)
    if key == "adsorption":
        return Adsorption(**kwargs)
    raise ValueError(f"unknown algorithm {name!r}")


__all__ = [
    "Algorithm",
    "AlgorithmKind",
    "SourceContext",
    "SSSP",
    "SSWP",
    "BFS",
    "ConnectedComponents",
    "PageRank",
    "Adsorption",
    "LinearSystemSolver",
    "make_algorithm",
]
