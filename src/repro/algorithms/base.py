"""The DAIC ``Algorithm`` interface consumed by the engines.

GraphPulse's execution model (§3.1, Algorithm 1) requires the application to
supply:

* ``identity`` — the non-dominant value of ``Reduce`` and the initial vertex
  state;
* ``reduce(a, b)`` — order-insensitive combination of a vertex state with an
  incoming delta (the *Reordering Property*);
* ``propagate(value, weight, ctx)`` — the delta contributed over an outgoing
  edge;
* the initial event set.

JetStream additionally needs, for *selective* algorithms, a strict
progression order (``more_progressed``) used by the VAP optimization and by
the recoverable-approximation invariant (§3.2); and for *accumulative*
algorithms, whether propagation depends on the source's out-degree/weight
(which forces the Fig. 5 sink construction on mutation).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np


class AlgorithmKind(enum.Enum):
    """The two algorithm families JetStream serves (§2.2, §3.5)."""

    #: Vertex computation is a selection (min/max) over single-edge
    #: contributions; monotonic; served by tag-propagation deletion.
    SELECTIVE = "selective"
    #: Vertex state accumulates contributions (sum); served by
    #: negative-event deletion.
    ACCUMULATIVE = "accumulative"


@dataclass(frozen=True)
class SourceContext:
    """Out-edge context of a propagating vertex.

    Degree-dependent algorithms (PageRank divides by out-degree, Adsorption
    normalizes by total out-weight) need this to compute a propagated delta.
    The engine always fills it from the graph version the propagation is
    defined against (old graph for negations, new graph for re-insertions).
    """

    out_degree: int
    out_weight_sum: float

    @staticmethod
    def of(graph, u: int) -> "SourceContext":
        """Context of vertex ``u`` in ``graph`` (CSR or dynamic)."""
        total = 0.0
        degree = 0
        for _, w in graph.out_edges(u):
            total += w
            degree += 1
        return SourceContext(out_degree=degree, out_weight_sum=total)


#: Context used where degree does not matter (selective algorithms).
NULL_CONTEXT = SourceContext(out_degree=0, out_weight_sum=0.0)


class Algorithm(ABC):
    """Base class for DAIC applications.

    Subclasses set :attr:`name`, :attr:`kind`, :attr:`identity` and
    implement the abstract hooks. Selective algorithms must also implement
    :meth:`more_progressed`.
    """

    #: Paper short name (``sssp``, ``pagerank``, ...).
    name: str = "abstract"
    #: Selective or accumulative (determines the streaming delete flow).
    kind: AlgorithmKind = AlgorithmKind.SELECTIVE
    #: The Reduce identity; also the initial vertex value.
    identity: float = 0.0
    #: Whether the engine must run on a symmetrized edge set (CC).
    needs_symmetric: bool = False
    #: Whether ``propagate`` depends on :class:`SourceContext` — if so, edge
    #: mutation changes all out-edge contributions of the source and the
    #: accumulative delete flow applies the Fig. 5 sink construction.
    degree_dependent: bool = False
    #: Deltas with magnitude below this are not propagated (accumulative
    #: termination). Selective algorithms ignore it.
    propagation_threshold: float = 0.0

    # ------------------------------------------------------------------
    # DAIC hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def reduce(self, a: float, b: float) -> float:
        """Combine vertex state ``a`` with incoming delta ``b``."""

    @abstractmethod
    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        """Delta contributed over an out-edge.

        ``value`` is the source's state (selective) or the delta being
        forwarded (accumulative); ``weight`` the edge attribute; ``ctx`` the
        source's out-edge context.
        """

    @abstractmethod
    def initial_events(self, graph) -> List[Tuple[int, float]]:
        """The InitialEvents() set: ``(vertex, payload)`` pairs."""

    # ------------------------------------------------------------------
    # Streaming hooks
    # ------------------------------------------------------------------
    def self_event(self, v: int) -> Optional[float]:
        """Initial-event payload that must be re-injected if ``v`` resets.

        Resetting an impacted vertex erases contributions that arrived via
        *initial* events (the SSSP root's 0, a CC vertex's own label), which
        no neighbor can restore. The streaming engine re-injects this during
        re-approximation. ``None`` when ``v`` receives no initial event.
        """
        return None

    def seed_event_for_new_vertex(self, v: int) -> Optional[float]:
        """Initial payload owed to a vertex created mid-stream (e.g. the
        PageRank teleport mass). ``None`` when nothing is owed."""
        return None

    def more_progressed(self, a: float, b: float) -> bool:
        """True when ``a`` is *strictly* closer to convergence than ``b``.

        Selective algorithms progress monotonically from ``identity`` toward
        the converged value (§3.2); this is the order VAP prunes with.
        """
        raise NotImplementedError(f"{self.name} does not define a progression order")

    def should_propagate(self, delta: float) -> bool:
        """Whether a computed out-edge delta is worth sending."""
        if self.kind is AlgorithmKind.ACCUMULATIVE:
            return abs(delta) > self.propagation_threshold
        return True

    #: Accumulative fast path: when True the propagated delta is
    #: ``delta * propagation_factor(ctx) * weight``; when False the weight
    #: is ignored (``delta * propagation_factor(ctx)``). Lets the engine
    #: hoist the factor out of the per-edge loop.
    weight_scaled_propagation: bool = False

    def propagation_factor(self, ctx: SourceContext) -> float:
        """Per-source multiplier of the accumulative fast path.

        Must satisfy ``propagate(delta, w, ctx) ==
        delta * propagation_factor(ctx) * (w if weight_scaled_propagation
        else 1)`` for accumulative algorithms.
        """
        raise NotImplementedError(f"{self.name} has no linear propagation factor")

    # ------------------------------------------------------------------
    # Vectorized (structure-of-arrays) hooks
    # ------------------------------------------------------------------
    #: NumPy ufunc implementing ``reduce`` element-wise (``np.minimum``,
    #: ``np.maximum``, ``np.add``). ``None`` means the algorithm has no
    #: vectorized form and must run on the scalar engine.
    reduce_ufunc: Optional[np.ufunc] = None

    def propagate_arrays(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Vectorized ``propagate`` for selective algorithms.

        ``values[i]`` is the propagating state and ``weights[i]`` the edge
        weight of out-edge ``i``; must return the per-edge deltas, matching
        ``propagate(values[i], weights[i], NULL_CONTEXT)`` exactly.
        (Accumulative algorithms instead go through the linear
        :meth:`propagation_factor` fast path, which the vectorized engine
        evaluates with plain array arithmetic.)
        """
        raise NotImplementedError(f"{self.name} has no vectorized propagate")

    def more_progressed_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise :meth:`more_progressed` (selective algorithms)."""
        raise NotImplementedError(f"{self.name} has no vectorized progression order")

    @property
    def supports_vectorized(self) -> bool:
        """Whether the vectorized engine can run this algorithm."""
        if self.reduce_ufunc is None:
            return False
        if self.kind is AlgorithmKind.SELECTIVE:
            cls = type(self)
            return (
                cls.propagate_arrays is not Algorithm.propagate_arrays
                and cls.more_progressed_arrays is not Algorithm.more_progressed_arrays
            )
        # Accumulative algorithms vectorize through the linear fast path.
        return True

    def initial_events_arrays(self, graph) -> Tuple[np.ndarray, np.ndarray]:
        """InitialEvents() as ``(targets, payloads)`` arrays.

        The default materialises :meth:`initial_events`; algorithms whose
        initial set covers every vertex override this to skip the list.
        """
        events = self.initial_events(graph)
        n = len(events)
        targets = np.fromiter((v for v, _ in events), dtype=np.int64, count=n)
        payloads = np.fromiter((p for _, p in events), dtype=np.float64, count=n)
        return targets, payloads

    #: Whether :meth:`propagate_ctx_arrays` actually reads the
    #: ``out_weight_sums`` column. The streaming seed pipeline computes
    #: exact per-source weight sums with a per-run left fold (to stay
    #: bit-identical with :meth:`SourceContext.of`); algorithms whose
    #: context hooks ignore the sums clear this to skip that fold.
    ctx_needs_weight_sums: bool = True

    def propagate_ctx_arrays(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        out_degrees: np.ndarray,
        out_weight_sums: np.ndarray,
    ) -> np.ndarray:
        """Degree-aware vectorized ``propagate`` (streaming seed payloads).

        ``values[i]``/``weights[i]`` are the propagating state and edge
        weight, ``out_degrees[i]``/``out_weight_sums[i]`` the source's
        context in the graph version the propagation is priced against.
        Must match ``propagate(values[i], weights[i],
        SourceContext(out_degrees[i], out_weight_sums[i]))`` bit for bit.

        Selective algorithms ignore the context and reuse
        :meth:`propagate_arrays`; context-dependent accumulative
        algorithms (PageRank, Adsorption) override this, and the default
        falls back to an element-wise scalar loop so every algorithm can
        ride the array seed pipeline.
        """
        if (
            self.kind is AlgorithmKind.SELECTIVE
            and type(self).propagate_arrays is not Algorithm.propagate_arrays
        ):
            return self.propagate_arrays(values, weights)
        out = np.empty(len(values), dtype=np.float64)
        for i in range(len(values)):
            out[i] = self.propagate(
                float(values[i]),
                float(weights[i]),
                SourceContext(int(out_degrees[i]), float(out_weight_sums[i])),
            )
        return out

    def propagation_factor_arrays(
        self, out_degrees: np.ndarray, out_weight_sums: np.ndarray
    ) -> np.ndarray:
        """Per-vertex :meth:`propagation_factor` over context arrays.

        Used by the engine to build its propagation-factor table in one
        vectorized pass per graph bind; must match the scalar method
        exactly. The default is the element-wise loop.
        """
        out = np.empty(len(out_degrees), dtype=np.float64)
        for i in range(len(out_degrees)):
            out[i] = self.propagation_factor(
                SourceContext(int(out_degrees[i]), float(out_weight_sums[i]))
            )
        return out

    def self_events_arrays(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`self_event` over impacted vertices.

        Returns ``(mask, payloads)``: ``mask[i]`` is True where
        ``vertices[i]`` is owed a re-injected initial event, with its
        payload in ``payloads[i]``. Must match the scalar hook exactly.
        """
        n = len(vertices)
        mask = np.zeros(n, dtype=bool)
        payloads = np.zeros(n, dtype=np.float64)
        for i in range(n):
            payload = self.self_event(int(vertices[i]))
            if payload is not None:
                mask[i] = True
                payloads[i] = payload
        return mask, payloads

    def seed_events_for_new_vertices(
        self, start: int, stop: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`seed_event_for_new_vertex` over an id range.

        Returns ``(targets, payloads)`` for the vertices in
        ``range(start, stop)`` that are owed an initial payload.
        """
        targets: List[int] = []
        payloads: List[float] = []
        for v in range(start, stop):
            payload = self.seed_event_for_new_vertex(v)
            if payload is not None:
                targets.append(v)
                payloads.append(payload)
        return (
            np.asarray(targets, dtype=np.int64),
            np.asarray(payloads, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Result helpers
    # ------------------------------------------------------------------
    def values_close(self, a: float, b: float) -> bool:
        """Result comparison with the tolerance appropriate to the kind."""
        if self.kind is AlgorithmKind.ACCUMULATIVE:
            # Propagation-threshold truncation accumulates over long paths;
            # empirical worst-case error is a few hundred thresholds.
            scale = max(1.0, abs(a), abs(b))
            return abs(a - b) <= max(1e-6, 500.0 * self.propagation_threshold) * scale
        if a == b:
            return True
        import math

        return math.isinf(a) and math.isinf(b) and (a > 0) == (b > 0)

    def states_close(self, xs: Iterable[float], ys: Iterable[float]) -> bool:
        """Element-wise :meth:`values_close` over two state vectors."""
        return all(self.values_close(a, b) for a, b in zip(xs, ys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
