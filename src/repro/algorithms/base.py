"""The DAIC ``Algorithm`` interface consumed by the engines.

GraphPulse's execution model (§3.1, Algorithm 1) requires the application to
supply:

* ``identity`` — the non-dominant value of ``Reduce`` and the initial vertex
  state;
* ``reduce(a, b)`` — order-insensitive combination of a vertex state with an
  incoming delta (the *Reordering Property*);
* ``propagate(value, weight, ctx)`` — the delta contributed over an outgoing
  edge;
* the initial event set.

JetStream additionally needs, for *selective* algorithms, a strict
progression order (``more_progressed``) used by the VAP optimization and by
the recoverable-approximation invariant (§3.2); and for *accumulative*
algorithms, whether propagation depends on the source's out-degree/weight
(which forces the Fig. 5 sink construction on mutation).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np


#: Sentinel dependency for a vertex supported by its own initial/self
#: event rather than an in-edge. Matches ``repro.core.events.NO_SOURCE``
#: numerically but is defined here so the algorithm layer stays free of
#: core imports.
SELF_SUPPORT = -1


@dataclass(frozen=True)
class UpdateClassification:
    """Verdict of :meth:`Algorithm.classify_update` on one edge update.

    ``safe`` means the update provably cannot invalidate the converged
    state beyond the recorded ``new_state`` write, so the express lane may
    apply it with an O(degree) array touch; unsafe updates fall through to
    the full incremental engine. RisGraph-style classification (PAPERS.md).
    """

    safe: bool
    #: Short machine-readable tag naming the rule that fired (pinned by
    #: the fastpath goldens so refactors can't silently reclassify).
    reason: str
    #: The single ``(vertex, value)`` state write a safe improving insert
    #: performs; ``None`` when the converged state is untouched.
    new_state: Optional[Tuple[int, float]] = None
    #: ``(vertex, source)`` dependency-tree rewrites (DAP coherence).
    #: ``source == SELF_SUPPORT`` records support by the vertex's own
    #: initial event.
    dependency_updates: Tuple[Tuple[int, int], ...] = ()
    #: Adjacency entries examined while classifying (the O(degree) work).
    edges_scanned: int = 0
    #: Vertex-state reads performed while classifying.
    state_reads: int = 0


def classify_monotonic_update(algorithm, view, u, v, w, op) -> UpdateClassification:
    """Shared safe/unsafe classifier for selective (monotonic) algorithms.

    ``view`` provides the converged picture the decision is made against:
    ``num_vertices``, ``symmetric``, ``state(x)``, ``dependency(x)`` (or
    ``None`` when the policy does not track dependencies), ``out_edges(x)``
    and ``in_edges(x)`` iterators, and for deletes the directed edge set
    being removed.

    The rules (proofs sketched per case; ``mp`` is the strict progression
    order, ``prop`` the context-free propagate):

    * **insert, no improvement** — ``prop(state(u), w)`` does not beat
      ``state(v)`` in any mirrored direction: the converged state is
      already a fixed point of the larger graph. Safe, no write.
    * **insert, local improvement** — exactly one direction improves its
      target ``v`` to ``nv``, and no out-edge of ``v`` (including the
      mirror edge) improves *its* target under ``nv``: the improvement is
      absorbed in one write. Safe, writes ``state(v) = nv`` and
      ``dependency(v) = u``.
    * **delete, identity state** — the target never progressed; removing
      an in-edge cannot regress the bottom value. Safe.
    * **delete, non-support** — ``state(v)`` is strictly more progressed
      than the deleted edge's contribution, so the edge was not load
      bearing. Safe.
    * **delete, alternative strict support** — the contribution equals
      ``state(v)`` but the vertex keeps a witness: its own self event, or
      another in-edge ``(s, v)`` whose contribution equals ``state(v)``
      with ``state(s)`` *strictly* more progressed. Strictness is what
      rules out plateau cycles sustaining a spurious fixed point (e.g.
      an SSWP capacity loop feeding itself); an equal-value supporter is
      NOT accepted. Safe, rewrites ``dependency(v)`` to the witness.

    Everything else — cascading inserts, vertex growth, unsupported
    deletes, state inconsistencies — is unsafe and takes the engine path.
    """
    mp = algorithm.more_progressed
    prop = algorithm.propagate
    n = view.num_vertices
    reads = 0
    scanned = 0

    if u >= n or v >= n or u < 0 or v < 0:
        return UpdateClassification(False, "vertex-growth")

    mirrored = view.symmetric and u != v
    directed = [(u, v), (v, u)] if mirrored else [(u, v)]

    if op == "insert":
        improving = []
        cands = {}
        for a, b in directed:
            cand = prop(view.state(a), w, NULL_CONTEXT)
            reads += 2
            cands[(a, b)] = cand
            if mp(cand, view.state(b)):
                improving.append((a, b))
            elif mp(view.state(b), cand) or cand == view.state(b):
                pass
            else:
                # Incomparable values (NaN-like): leave it to the engine.
                return UpdateClassification(
                    False, "insert-incomparable", state_reads=reads
                )
        if not improving:
            return UpdateClassification(
                True, "insert-no-improvement", state_reads=reads
            )
        if len(improving) > 1:
            # Impossible at a genuine fixed point with sane weights;
            # defensively routed to the engine rather than reasoned about.
            return UpdateClassification(
                False, "insert-improves-both-endpoints", state_reads=reads
            )
        a, b = improving[0]
        nv = cands[(a, b)]
        # Would the improved value cascade past b? Scan b's out-edges in
        # the post-insert graph (the mirror edge joins them when symmetric).
        out = list(view.out_edges(b))
        if mirrored:
            out.append((a, w))
        for t, wt in out:
            scanned += 1
            out_cand = prop(nv, wt, NULL_CONTEXT)
            basis = nv if t == b else view.state(t)
            reads += 0 if t == b else 1
            if mp(out_cand, basis):
                return UpdateClassification(
                    False,
                    "insert-cascades",
                    edges_scanned=scanned,
                    state_reads=reads,
                )
        return UpdateClassification(
            True,
            "insert-local-improvement",
            new_state=(b, nv),
            dependency_updates=((b, a),),
            edges_scanned=scanned,
            state_reads=reads,
        )

    if op != "delete":
        raise ValueError(f"unknown update op {op!r}")

    removed = set(directed)
    dep_updates = []
    reason = "delete-non-support"
    for a, b in directed:
        state_b = view.state(b)
        reads += 1
        if state_b == algorithm.identity:
            # Never progressed: nothing for the delete to invalidate. A
            # stale dependency on the deleted edge is impossible (resets
            # clear it), so no defensive check is needed.
            continue
        cand = prop(view.state(a), w, NULL_CONTEXT)
        reads += 1
        if mp(cand, state_b):
            # The converged state is not a fixed point of the current
            # graph — never the lane's job to repair.
            return UpdateClassification(
                False, "delete-state-inconsistent", state_reads=reads
            )
        if mp(state_b, cand):
            dep = view.dependency(b)
            if dep is not None and dep == a:
                # A non-supporting edge recorded as the dependency means
                # the dependency tree is stale; let the engine re-derive.
                return UpdateClassification(
                    False, "delete-stale-dependency", state_reads=reads
                )
            continue
        # Equal contribution: the edge may be b's witness. Re-anchor on
        # the self event or another *strictly* more progressed in-edge.
        self_payload = algorithm.self_event(b)
        if self_payload is not None and self_payload == state_b:
            dep_updates.append((b, SELF_SUPPORT))
            reason = "delete-self-supported"
            continue
        witness = None
        for s, ws in view.in_edges(b):
            if (s, b) in removed:
                continue
            scanned += 1
            state_s = view.state(s)
            reads += 1
            if (
                prop(state_s, ws, NULL_CONTEXT) == state_b
                and mp(state_s, state_b)
            ):
                witness = s
                break
        if witness is None:
            return UpdateClassification(
                False,
                "delete-unsupported",
                edges_scanned=scanned,
                state_reads=reads,
            )
        dep_updates.append((b, witness))
        reason = "delete-rewitnessed"
    return UpdateClassification(
        True,
        reason,
        dependency_updates=tuple(dep_updates),
        edges_scanned=scanned,
        state_reads=reads,
    )


class AlgorithmKind(enum.Enum):
    """The two algorithm families JetStream serves (§2.2, §3.5)."""

    #: Vertex computation is a selection (min/max) over single-edge
    #: contributions; monotonic; served by tag-propagation deletion.
    SELECTIVE = "selective"
    #: Vertex state accumulates contributions (sum); served by
    #: negative-event deletion.
    ACCUMULATIVE = "accumulative"


@dataclass(frozen=True)
class SourceContext:
    """Out-edge context of a propagating vertex.

    Degree-dependent algorithms (PageRank divides by out-degree, Adsorption
    normalizes by total out-weight) need this to compute a propagated delta.
    The engine always fills it from the graph version the propagation is
    defined against (old graph for negations, new graph for re-insertions).
    """

    out_degree: int
    out_weight_sum: float

    @staticmethod
    def of(graph, u: int) -> "SourceContext":
        """Context of vertex ``u`` in ``graph`` (CSR or dynamic)."""
        total = 0.0
        degree = 0
        for _, w in graph.out_edges(u):
            total += w
            degree += 1
        return SourceContext(out_degree=degree, out_weight_sum=total)


#: Context used where degree does not matter (selective algorithms).
NULL_CONTEXT = SourceContext(out_degree=0, out_weight_sum=0.0)


class Algorithm(ABC):
    """Base class for DAIC applications.

    Subclasses set :attr:`name`, :attr:`kind`, :attr:`identity` and
    implement the abstract hooks. Selective algorithms must also implement
    :meth:`more_progressed`.
    """

    #: Paper short name (``sssp``, ``pagerank``, ...).
    name: str = "abstract"
    #: Selective or accumulative (determines the streaming delete flow).
    kind: AlgorithmKind = AlgorithmKind.SELECTIVE
    #: The Reduce identity; also the initial vertex value.
    identity: float = 0.0
    #: Whether the engine must run on a symmetrized edge set (CC).
    needs_symmetric: bool = False
    #: Whether ``propagate`` depends on :class:`SourceContext` — if so, edge
    #: mutation changes all out-edge contributions of the source and the
    #: accumulative delete flow applies the Fig. 5 sink construction.
    degree_dependent: bool = False
    #: Deltas with magnitude below this are not propagated (accumulative
    #: termination). Selective algorithms ignore it.
    propagation_threshold: float = 0.0

    # ------------------------------------------------------------------
    # DAIC hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def reduce(self, a: float, b: float) -> float:
        """Combine vertex state ``a`` with incoming delta ``b``."""

    @abstractmethod
    def propagate(self, value: float, weight: float, ctx: SourceContext) -> float:
        """Delta contributed over an out-edge.

        ``value`` is the source's state (selective) or the delta being
        forwarded (accumulative); ``weight`` the edge attribute; ``ctx`` the
        source's out-edge context.
        """

    @abstractmethod
    def initial_events(self, graph) -> List[Tuple[int, float]]:
        """The InitialEvents() set: ``(vertex, payload)`` pairs."""

    # ------------------------------------------------------------------
    # Streaming hooks
    # ------------------------------------------------------------------
    def self_event(self, v: int) -> Optional[float]:
        """Initial-event payload that must be re-injected if ``v`` resets.

        Resetting an impacted vertex erases contributions that arrived via
        *initial* events (the SSSP root's 0, a CC vertex's own label), which
        no neighbor can restore. The streaming engine re-injects this during
        re-approximation. ``None`` when ``v`` receives no initial event.
        """
        return None

    def seed_event_for_new_vertex(self, v: int) -> Optional[float]:
        """Initial payload owed to a vertex created mid-stream (e.g. the
        PageRank teleport mass). ``None`` when nothing is owed."""
        return None

    def classify_update(self, view, u: int, v: int, w: float, op: str) -> UpdateClassification:
        """Safe/unsafe verdict for a single edge update (express lane).

        The default is maximally conservative: every update is unsafe and
        takes the full engine path. Selective (monotonic) algorithms
        override this with :func:`classify_monotonic_update`; accumulative
        algorithms (PageRank, Adsorption) keep the default because a
        single edge shifts mass globally — no single-write application
        exists.
        """
        return UpdateClassification(False, "unclassified-algorithm")

    def more_progressed(self, a: float, b: float) -> bool:
        """True when ``a`` is *strictly* closer to convergence than ``b``.

        Selective algorithms progress monotonically from ``identity`` toward
        the converged value (§3.2); this is the order VAP prunes with.
        """
        raise NotImplementedError(f"{self.name} does not define a progression order")

    def should_propagate(self, delta: float) -> bool:
        """Whether a computed out-edge delta is worth sending."""
        if self.kind is AlgorithmKind.ACCUMULATIVE:
            return abs(delta) > self.propagation_threshold
        return True

    #: Accumulative fast path: when True the propagated delta is
    #: ``delta * propagation_factor(ctx) * weight``; when False the weight
    #: is ignored (``delta * propagation_factor(ctx)``). Lets the engine
    #: hoist the factor out of the per-edge loop.
    weight_scaled_propagation: bool = False

    def propagation_factor(self, ctx: SourceContext) -> float:
        """Per-source multiplier of the accumulative fast path.

        Must satisfy ``propagate(delta, w, ctx) ==
        delta * propagation_factor(ctx) * (w if weight_scaled_propagation
        else 1)`` for accumulative algorithms.
        """
        raise NotImplementedError(f"{self.name} has no linear propagation factor")

    # ------------------------------------------------------------------
    # Vectorized (structure-of-arrays) hooks
    # ------------------------------------------------------------------
    #: NumPy ufunc implementing ``reduce`` element-wise (``np.minimum``,
    #: ``np.maximum``, ``np.add``). ``None`` means the algorithm has no
    #: vectorized form and must run on the scalar engine.
    reduce_ufunc: Optional[np.ufunc] = None

    def propagate_arrays(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Vectorized ``propagate`` for selective algorithms.

        ``values[i]`` is the propagating state and ``weights[i]`` the edge
        weight of out-edge ``i``; must return the per-edge deltas, matching
        ``propagate(values[i], weights[i], NULL_CONTEXT)`` exactly.
        (Accumulative algorithms instead go through the linear
        :meth:`propagation_factor` fast path, which the vectorized engine
        evaluates with plain array arithmetic.)
        """
        raise NotImplementedError(f"{self.name} has no vectorized propagate")

    def more_progressed_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise :meth:`more_progressed` (selective algorithms)."""
        raise NotImplementedError(f"{self.name} has no vectorized progression order")

    @property
    def supports_vectorized(self) -> bool:
        """Whether the vectorized engine can run this algorithm."""
        if self.reduce_ufunc is None:
            return False
        if self.kind is AlgorithmKind.SELECTIVE:
            cls = type(self)
            return (
                cls.propagate_arrays is not Algorithm.propagate_arrays
                and cls.more_progressed_arrays is not Algorithm.more_progressed_arrays
            )
        # Accumulative algorithms vectorize through the linear fast path.
        return True

    def initial_events_arrays(self, graph) -> Tuple[np.ndarray, np.ndarray]:
        """InitialEvents() as ``(targets, payloads)`` arrays.

        The default materialises :meth:`initial_events`; algorithms whose
        initial set covers every vertex override this to skip the list.
        """
        events = self.initial_events(graph)
        n = len(events)
        targets = np.fromiter((v for v, _ in events), dtype=np.int64, count=n)
        payloads = np.fromiter((p for _, p in events), dtype=np.float64, count=n)
        return targets, payloads

    #: Whether :meth:`propagate_ctx_arrays` actually reads the
    #: ``out_weight_sums`` column. The streaming seed pipeline computes
    #: exact per-source weight sums with a per-run left fold (to stay
    #: bit-identical with :meth:`SourceContext.of`); algorithms whose
    #: context hooks ignore the sums clear this to skip that fold.
    ctx_needs_weight_sums: bool = True

    def propagate_ctx_arrays(
        self,
        values: np.ndarray,
        weights: np.ndarray,
        out_degrees: np.ndarray,
        out_weight_sums: np.ndarray,
    ) -> np.ndarray:
        """Degree-aware vectorized ``propagate`` (streaming seed payloads).

        ``values[i]``/``weights[i]`` are the propagating state and edge
        weight, ``out_degrees[i]``/``out_weight_sums[i]`` the source's
        context in the graph version the propagation is priced against.
        Must match ``propagate(values[i], weights[i],
        SourceContext(out_degrees[i], out_weight_sums[i]))`` bit for bit.

        Selective algorithms ignore the context and reuse
        :meth:`propagate_arrays`; context-dependent accumulative
        algorithms (PageRank, Adsorption) override this, and the default
        falls back to an element-wise scalar loop so every algorithm can
        ride the array seed pipeline.
        """
        if (
            self.kind is AlgorithmKind.SELECTIVE
            and type(self).propagate_arrays is not Algorithm.propagate_arrays
        ):
            return self.propagate_arrays(values, weights)
        out = np.empty(len(values), dtype=np.float64)
        for i in range(len(values)):
            out[i] = self.propagate(
                float(values[i]),
                float(weights[i]),
                SourceContext(int(out_degrees[i]), float(out_weight_sums[i])),
            )
        return out

    def propagation_factor_arrays(
        self, out_degrees: np.ndarray, out_weight_sums: np.ndarray
    ) -> np.ndarray:
        """Per-vertex :meth:`propagation_factor` over context arrays.

        Used by the engine to build its propagation-factor table in one
        vectorized pass per graph bind; must match the scalar method
        exactly. The default is the element-wise loop.
        """
        out = np.empty(len(out_degrees), dtype=np.float64)
        for i in range(len(out_degrees)):
            out[i] = self.propagation_factor(
                SourceContext(int(out_degrees[i]), float(out_weight_sums[i]))
            )
        return out

    def self_events_arrays(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`self_event` over impacted vertices.

        Returns ``(mask, payloads)``: ``mask[i]`` is True where
        ``vertices[i]`` is owed a re-injected initial event, with its
        payload in ``payloads[i]``. Must match the scalar hook exactly.
        """
        n = len(vertices)
        mask = np.zeros(n, dtype=bool)
        payloads = np.zeros(n, dtype=np.float64)
        for i in range(n):
            payload = self.self_event(int(vertices[i]))
            if payload is not None:
                mask[i] = True
                payloads[i] = payload
        return mask, payloads

    def seed_events_for_new_vertices(
        self, start: int, stop: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`seed_event_for_new_vertex` over an id range.

        Returns ``(targets, payloads)`` for the vertices in
        ``range(start, stop)`` that are owed an initial payload.
        """
        targets: List[int] = []
        payloads: List[float] = []
        for v in range(start, stop):
            payload = self.seed_event_for_new_vertex(v)
            if payload is not None:
                targets.append(v)
                payloads.append(payload)
        return (
            np.asarray(targets, dtype=np.int64),
            np.asarray(payloads, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Result helpers
    # ------------------------------------------------------------------
    def values_close(self, a: float, b: float) -> bool:
        """Result comparison with the tolerance appropriate to the kind."""
        if self.kind is AlgorithmKind.ACCUMULATIVE:
            # Propagation-threshold truncation accumulates over long paths;
            # empirical worst-case error is a few hundred thresholds.
            scale = max(1.0, abs(a), abs(b))
            return abs(a - b) <= max(1e-6, 500.0 * self.propagation_threshold) * scale
        if a == b:
            return True
        import math

        return math.isinf(a) and math.isinf(b) and (a > 0) == (b > 0)

    def states_close(self, xs: Iterable[float], ys: Iterable[float]) -> bool:
        """Element-wise :meth:`values_close` over two state vectors."""
        return all(self.values_close(a, b) for a, b in zip(xs, ys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
