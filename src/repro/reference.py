"""Reference implementations used as correctness oracles.

Classical textbook algorithms, independent of the event-driven machinery:
Dijkstra for SSSP, a max-bottleneck Dijkstra for SSWP, plain BFS,
union-find for CC, and fixed-point iteration for PageRank/Adsorption using
the same (unnormalized, non-redistributing) formulations the DAIC versions
converge to. Tests compare the engines against these on every graph state.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def sssp(csr: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra shortest-path distances (``inf`` = unreachable)."""
    dist = np.full(csr.num_vertices, math.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in csr.out_edges(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def sswp(csr: CSRGraph, source: int) -> np.ndarray:
    """Widest-path capacities (``0`` = unreachable, source = ``inf``)."""
    width = np.zeros(csr.num_vertices)
    width[source] = math.inf
    heap: List[Tuple[float, int]] = [(-math.inf, source)]
    while heap:
        neg_w, u = heapq.heappop(heap)
        cur = -neg_w
        if cur < width[u]:
            continue
        for v, w in csr.out_edges(u):
            cand = min(cur, w)
            if cand > width[v]:
                width[v] = cand
                heapq.heappush(heap, (-cand, v))
    return width


def bfs(csr: CSRGraph, source: int) -> np.ndarray:
    """Hop distances (``inf`` = unreachable)."""
    dist = np.full(csr.num_vertices, math.inf)
    dist[source] = 0.0
    frontier = [source]
    level = 0.0
    while frontier:
        level += 1.0
        nxt = []
        for u in frontier:
            for v in csr.out_neighbors(u):
                v = int(v)
                if dist[v] == math.inf:
                    dist[v] = level
                    nxt.append(v)
        frontier = nxt
    return dist


def connected_components(csr: CSRGraph) -> np.ndarray:
    """Minimum-vertex-id labels over the *undirected* closure of the edges."""
    parent = list(range(csr.num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, _ in csr.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    minimum: Dict[int, int] = {}
    for v in range(csr.num_vertices):
        root = find(v)
        minimum[root] = min(minimum.get(root, v), v)
    return np.array(
        [float(minimum[find(v)]) for v in range(csr.num_vertices)], dtype=np.float64
    )


def pagerank(
    csr: CSRGraph, alpha: float = 0.85, tol: float = 1e-12, max_iter: int = 100_000
) -> np.ndarray:
    """Unnormalized PageRank fixed point matching the DAIC formulation:

        r(v) = (1 - alpha) + alpha * sum_{u->v} r(u) / out_degree(u)

    (dangling mass is absorbed, no normalization).
    """
    n = csr.num_vertices
    ranks = np.full(n, 1.0 - alpha)
    degrees = np.diff(csr.out_offsets).astype(np.float64)
    for _ in range(max_iter):
        incoming = np.zeros(n)
        for u in range(n):
            if degrees[u] == 0:
                continue
            share = alpha * ranks[u] / degrees[u]
            start, stop = csr.out_offsets[u], csr.out_offsets[u + 1]
            np.add.at(incoming, csr.out_targets[start:stop], share)
        new_ranks = (1.0 - alpha) + incoming
        if np.abs(new_ranks - ranks).max() < tol:
            return new_ranks
        ranks = new_ranks
    return ranks


def adsorption(
    csr: CSRGraph,
    injections: Dict[int, float],
    p_inject: float = 0.25,
    p_continue: float = 0.70,
    tol: float = 1e-12,
    max_iter: int = 100_000,
) -> np.ndarray:
    """Scalar adsorption fixed point matching the DAIC formulation:

        s(v) = p_inject*inj(v) + p_continue * sum_{u->v} (w/W_out(u)) * s(u)
    """
    n = csr.num_vertices
    base = np.zeros(n)
    for v, mass in injections.items():
        base[v] = p_inject * mass
    weight_sums = np.zeros(n)
    for u in range(n):
        start, stop = csr.out_offsets[u], csr.out_offsets[u + 1]
        weight_sums[u] = csr.out_weights[start:stop].sum()
    state = base.copy()
    for _ in range(max_iter):
        incoming = np.zeros(n)
        for u in range(n):
            if weight_sums[u] <= 0:
                continue
            start, stop = csr.out_offsets[u], csr.out_offsets[u + 1]
            share = p_continue * state[u] / weight_sums[u]
            np.add.at(
                incoming, csr.out_targets[start:stop], share * csr.out_weights[start:stop]
            )
        new_state = base + incoming
        if np.abs(new_state - state).max() < tol:
            return new_state
        state = new_state
    return state


def compute_reference(algorithm, csr: CSRGraph) -> np.ndarray:
    """Dispatch on an :class:`~repro.algorithms.base.Algorithm` instance."""
    name = algorithm.name
    if name == "sssp":
        return sssp(csr, algorithm.source)
    if name == "sswp":
        return sswp(csr, algorithm.source)
    if name == "bfs":
        return bfs(csr, algorithm.source)
    if name == "cc":
        return connected_components(csr)
    if name == "pagerank":
        return pagerank(csr, alpha=algorithm.alpha)
    if name == "adsorption":
        return adsorption(
            csr,
            algorithm.injections,
            p_inject=algorithm.p_inject,
            p_continue=algorithm.p_continue,
        )
    raise ValueError(f"no reference for {name}")
