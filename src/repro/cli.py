"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``query``
    Static evaluation of an algorithm on an edge-list file (or a named
    dataset stand-in), printing the top results and accelerator timing.
``stream``
    Streaming evaluation: apply update batches (from a stream file or
    generated on the fly) and report per-batch incremental cost versus the
    cold-start alternative.
``datasets``
    Build and describe the Table 2 dataset stand-ins.
``experiments``
    Run the paper's tables/figures (delegates to
    :mod:`repro.experiments.runner`).
``trace``
    Inspect a saved JSONL run trace (``--trace`` output): ``summarize``
    renders the wall-clock vs. modeled-cycles correlation table,
    ``validate`` checks the file against the documented schema,
    ``export`` converts it to a Chrome/Perfetto trace-event file.
``metrics``
    Work with metrics snapshots (``--metrics`` output): ``dump`` prints a
    saved JSON snapshot as Prometheus text or JSON.
``bench``
    Performance trajectory tooling: ``check`` re-runs the benchmark
    suites and gates them against the committed ``BENCH_*.json``
    baselines.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.base import AlgorithmKind
from repro.core.engine import ENGINE_MODES, SHARD_BACKENDS
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import datasets, io
from repro.graph.dynamic import DynamicGraph, build_symmetric_graph
from repro.obs import (
    REGISTRY,
    REQUEST_LOG,
    JsonlSink,
    MemorySink,
    MetricsServer,
    ProgressSink,
    TraceData,
    Tracer,
    analyze_requests,
    correlate,
    read_trace,
    render_correlation,
    render_prometheus,
    render_request_table,
    summarize,
    validate_trace,
    write_chrome_trace,
)
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import StreamGenerator

ALGORITHM_CHOICES = ["sssp", "sswp", "bfs", "cc", "pagerank", "adsorption"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JetStream streaming graph analytics (MICRO 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="static query evaluation")
    _add_graph_args(query)
    _add_trace_args(query)
    query.add_argument("--top", type=int, default=10, help="results to print")
    query.add_argument(
        "--at-versions",
        type=int,
        metavar="N",
        help="multi-version mode: apply N seeded update batches with "
        "versioning enabled, then evaluate the query at every recorded "
        "version through one shared common-graph convergence "
        "(Session.run_at_versions)",
    )
    query.add_argument(
        "--batch-size",
        type=int,
        default=50,
        help="update batch size between versions (--at-versions mode)",
    )
    query.add_argument(
        "--insertion-ratio",
        type=float,
        default=0.5,
        help="insert share of each version's batch (--at-versions mode)",
    )
    query.add_argument(
        "--seed", type=int, default=0, help="stream seed (--at-versions mode)"
    )

    stream = sub.add_parser("stream", help="streaming evaluation")
    _add_graph_args(stream)
    _add_trace_args(stream)
    stream.add_argument("--batches", type=int, default=5)
    stream.add_argument("--batch-size", type=int, default=100)
    stream.add_argument("--insertion-ratio", type=float, default=0.7)
    stream.add_argument(
        "--policy",
        "--delete-policy",
        dest="policy",
        choices=[p.value for p in DeletePolicy],
        default=DeletePolicy.DAP.value,
        help="deletion policy: base/vap/dap recovery, or commongraph "
        "(deletion-to-addition conversion; selective algorithms only, "
        "accumulative ones fall through to DAP)",
    )
    stream.add_argument("--updates", help="update-stream file (see repro.graph.io)")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--compare-cold",
        action="store_true",
        help="also run cold-start GraphPulse on the same stream",
    )
    stream.add_argument(
        "--express",
        action="store_true",
        help="apply the stream as single updates through the express lane "
        "(safe/unsafe classification; batches x batch-size updates total)",
    )

    serve = sub.add_parser(
        "serve",
        help="long-running streaming service (JSON over HTTP)",
        description="Serve interleaved ingest batches, express updates, and "
        "snapshot-isolated reads to many concurrent clients; /metrics is "
        "mounted on the same port. POST /shutdown (or Ctrl-C) drains "
        "in-flight batches and exits.",
    )
    serve.add_argument("--port", type=int, default=8800, help="0 picks a free port")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--queue-bound",
        type=int,
        default=64,
        help="per-session ingest queue bound; writes past it get 429 QUEUE_FULL",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="leave the metrics registry disabled (scrape routes stay mounted)",
    )
    serve.add_argument(
        "--access-log",
        metavar="PATH",
        help="write one JSONL record per request with the full stage "
        "breakdown (see `repro trace requests`)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=50.0,
        help="requests at or above this latency enter the /debug/requests "
        "slow ring (default 50 ms)",
    )
    serve.add_argument(
        "--request-ring",
        type=int,
        default=64,
        help="slow-request ring capacity (oldest evicted first)",
    )
    serve.add_argument(
        "--log-bound",
        type=int,
        default=None,
        help="bound each session's applied-write log to the newest N "
        "entries (default: keep all; /sessions/<s>/log reports the "
        "dropped-prefix count)",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        help="write engine run spans to a JSONL trace with request_id "
        "span links (joinable via `repro trace requests --trace`); "
        "intended for single-session serving — the span stack is not "
        "isolated between concurrently-writing sessions",
    )
    preload = serve.add_mutually_exclusive_group()
    preload.add_argument("--edges", help="preload session 'default' from an edge list")
    preload.add_argument(
        "--dataset", choices=datasets.ORDER, help="preload from a Table 2 stand-in"
    )
    serve.add_argument("--algorithm", choices=ALGORITHM_CHOICES, default="sssp")
    serve.add_argument("--source", type=int, default=0)
    serve.add_argument(
        "--policy",
        "--delete-policy",
        dest="policy",
        choices=[p.value for p in DeletePolicy],
        default=DeletePolicy.DAP.value,
    )
    serve.add_argument("--engine", choices=ENGINE_MODES, default="auto")
    serve.add_argument("--num-engines", type=int, default=8)
    serve.add_argument("--backend", choices=SHARD_BACKENDS, default="thread")

    data = sub.add_parser("datasets", help="describe the dataset stand-ins")
    data.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiments", help="run the paper's tables/figures")
    exp.add_argument("--quick", action="store_true")
    exp.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser("trace", help="inspect a saved JSONL run trace")
    trace_sub = trace.add_subparsers(dest="action", required=True)
    trace_summ = trace_sub.add_parser(
        "summarize",
        help="render the per-phase wall-clock vs modeled-cycles table",
    )
    trace_summ.add_argument("path", help="JSONL trace written by --trace")
    trace_val = trace_sub.add_parser(
        "validate", help="check a trace file against the documented schema"
    )
    trace_val.add_argument("path", help="JSONL trace written by --trace")
    trace_exp = trace_sub.add_parser(
        "export",
        help="convert a trace for external viewers (chrome://tracing, Perfetto)",
    )
    trace_exp.add_argument("path", help="JSONL trace written by --trace")
    trace_exp.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        help="output format (chrome = Trace Event JSON for Perfetto)",
    )
    trace_exp.add_argument(
        "-o",
        "--output",
        help="output path (default: trace path with .chrome.json suffix)",
    )
    trace_req = trace_sub.add_parser(
        "requests",
        help="tail-latency attribution from a serve access log "
        "(repro serve --access-log)",
    )
    trace_req.add_argument("path", help="JSONL access log written by serve")
    trace_req.add_argument(
        "--trace",
        metavar="PATH",
        help="engine trace JSONL to join request_id span links against",
    )
    trace_req.add_argument(
        "--json",
        action="store_true",
        help="print the raw analysis as JSON instead of tables",
    )

    metrics = sub.add_parser("metrics", help="work with metrics snapshots")
    metrics_sub = metrics.add_subparsers(dest="action", required=True)
    metrics_dump = metrics_sub.add_parser(
        "dump", help="print a saved JSON snapshot (--metrics output)"
    )
    metrics_dump.add_argument("path", help="JSON snapshot written by --metrics")
    metrics_dump.add_argument(
        "--format",
        choices=["prometheus", "json"],
        default="prometheus",
        help="rendering: Prometheus text exposition (default) or JSON",
    )

    bench = sub.add_parser("bench", help="performance trajectory tooling")
    bench_sub = bench.add_subparsers(dest="action", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="re-run the benchmark suites and gate against BENCH_*.json",
    )
    bench_check.add_argument(
        "--quick",
        action="store_true",
        help="quick grids against benchmarks/baselines/*.quick.json",
    )
    bench_check.add_argument(
        "--suite",
        choices=[
            "engine",
            "trace",
            "stream",
            "sharded",
            "latency",
            "serve",
            "commongraph",
            "all",
        ],
        default="all",
        help="which benchmark suite(s) to run",
    )
    bench_check.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed relative events/s drop before a row regresses "
        "(default 0.30; event-count drift always fails)",
    )
    bench_check.add_argument(
        "--baseline-engine", help="override the engine-suite baseline path"
    )
    bench_check.add_argument(
        "--baseline-trace", help="override the trace-suite baseline path"
    )
    bench_check.add_argument(
        "--baseline-stream", help="override the stream-suite baseline path"
    )
    bench_check.add_argument(
        "--baseline-sharded", help="override the sharded-suite baseline path"
    )
    bench_check.add_argument(
        "--baseline-latency", help="override the latency-suite baseline path"
    )
    bench_check.add_argument(
        "--baseline-serve", help="override the serve-suite baseline path"
    )
    bench_check.add_argument(
        "--baseline-commongraph",
        help="override the commongraph-suite baseline path",
    )
    bench_check.add_argument(
        "--update-baselines",
        action="store_true",
        help="write this run's reports as the new baselines and exit",
    )
    bench_check.add_argument(
        "--no-fail",
        action="store_true",
        help="informational mode: print the table but always exit 0 "
        "(CI on shared runners)",
    )
    return parser


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--edges", help="edge-list file (src dst [weight])")
    source.add_argument(
        "--dataset", choices=datasets.ORDER, help="named Table 2 stand-in"
    )
    parser.add_argument(
        "--algorithm", choices=ALGORITHM_CHOICES, default="sssp"
    )
    parser.add_argument("--source", type=int, default=0, help="query root")
    parser.add_argument(
        "--engine",
        choices=ENGINE_MODES,
        default="auto",
        help="event substrate: auto picks the vectorized SoA kernels when "
        "the algorithm supports them; scalar forces the boxed-event "
        "reference path; sharded runs num-engines parallel graph slices",
    )
    parser.add_argument(
        "--num-engines",
        type=int,
        default=8,
        help="parallel engine count for --engine sharded (Table 1 default: 8)",
    )
    parser.add_argument(
        "--backend",
        choices=SHARD_BACKENDS,
        default="thread",
        help="--engine sharded execution backend: thread (persistent thread "
        "pool over heap arrays) or process (worker processes over "
        "shared-memory segments); results are bit-identical",
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL run trace (see `repro trace summarize`)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live phase/round progress on stderr",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON metrics snapshot after the run "
        "(see `repro metrics dump`)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="N",
        help="serve live Prometheus metrics on http://127.0.0.1:N/metrics "
        "while the run executes (0 picks a free port)",
    )


def _make_tracer(args):
    """Build the tracer requested by --trace/--progress.

    Returns ``(tracer, memory_sink)`` — both ``None`` when tracing is off.
    The memory sink mirrors the JSONL file so the post-run correlation
    table can be rendered without re-reading the trace from disk.
    """
    sinks: List = []
    memory = None
    if args.trace:
        sinks.append(JsonlSink(args.trace))
        memory = MemorySink()
        sinks.append(memory)
    if args.progress:
        sinks.append(ProgressSink())
    if not sinks:
        return None, None
    return Tracer(sinks), memory


def _finish_trace(tracer, memory, args) -> None:
    """Close the sinks and print the wall-clock/model correlation table."""
    if tracer is None:
        return
    tracer.close()
    if memory is not None:
        print(f"\ntrace written to {args.trace}")
        trace = TraceData.from_spans(memory.spans, memory.events)
        print(render_correlation(correlate(trace)))


def _start_metrics(args):
    """Enable the registry / scrape server for --metrics/--metrics-port.

    Returns ``(active, server)``; pass both to :func:`_finish_metrics`
    in a ``finally`` block.
    """
    active = bool(args.metrics) or args.metrics_port is not None
    server = None
    if active:
        REGISTRY.enable().reset()
    if args.metrics_port is not None:
        server = MetricsServer(REGISTRY, port=args.metrics_port).start()
        print(f"[metrics] serving {server.url}", file=sys.stderr)
    return active, server


def _finish_metrics(args, active, server) -> None:
    """Snapshot to --metrics if requested, then return to the off state."""
    if server is not None:
        server.stop()
    if not active:
        return
    if args.metrics:
        REGISTRY.dump_json(args.metrics)
        print(f"metrics snapshot written to {args.metrics}")
    REGISTRY.disable().reset()


def _load_graph(args) -> DynamicGraph:
    algorithm = make_algorithm(args.algorithm, source=args.source)
    if args.dataset:
        return datasets.load(args.dataset, symmetric=algorithm.needs_symmetric)
    edges = io.read_edge_list(args.edges)
    if algorithm.needs_symmetric:
        return build_symmetric_graph(edges)
    return DynamicGraph.from_edges(edges)


def _run_query_at_versions(args, graph, algorithm) -> int:
    """``repro query --at-versions N``: shared-prefix multi-version mode.

    Applies N seeded update batches through a versioned session, then
    evaluates the query at every recorded version with one common-graph
    convergence fanned out into per-version addition passes.
    """
    from repro.host import Accelerator

    accel = Accelerator()
    session = None
    try:
        edges = [
            (int(u), int(v), float(w)) for u, v, w in zip(*graph.edge_arrays())
        ]
        if algorithm.needs_symmetric:
            # load_graph re-mirrors; hand it each undirected edge once.
            edges = [(u, v, w) for u, v, w in edges if u <= v]
        session = accel.load_graph(
            edges, graph.num_vertices, symmetric=algorithm.needs_symmetric
        )
        session.configure(
            args.algorithm,
            source=args.source,
            engine=args.engine,
            num_engines=args.num_engines,
            backend=args.backend,
        )
        session.enable_versioning()
        session.run()
        generator = StreamGenerator(
            session.graph, seed=args.seed, insertion_ratio=args.insertion_ratio
        )
        for _ in range(args.at_versions):
            batch = generator.next_batch(args.batch_size)
            session.push_updates(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [(e.u, e.v) for e in batch.deletions],
            )
            session.run()
        result = session.run_at_versions(0)
        mode = (
            "shared common-graph prefix"
            if result.shared
            else "independent per-version evaluations (accumulative fallback)"
        )
        print(
            f"{args.algorithm} at versions "
            f"{result.versions[0]}..{result.versions[-1]} ({mode})"
        )
        if result.shared:
            print(
                f"common graph: {result.common_edges:,} edges, "
                f"{result.common_events:,} events (converged once)"
            )
        print(f"{'version':>8} {'vertices':>9} {'events':>9}")
        for ver in result.versions:
            print(
                f"{ver:>8} {result.states[ver].shape[0]:>9} "
                f"{result.per_version_events[ver]:>9}"
            )
        print(f"total events: {result.total_events:,}")
    finally:
        if session is not None:
            session.close()
        accel.close()
    return 0


def cmd_query(args) -> int:
    graph = _load_graph(args)
    algorithm = make_algorithm(args.algorithm, source=args.source)
    if args.at_versions:
        return _run_query_at_versions(args, graph, algorithm)
    tracer, memory = _make_tracer(args)
    metrics_on, server = _start_metrics(args)
    engine = JetStreamEngine(
        graph,
        algorithm,
        engine=args.engine,
        num_engines=args.num_engines,
        backend=args.backend,
        tracer=tracer,
    )
    started = time.time()
    try:
        result = engine.initial_compute()
    except BaseException:
        engine.close()
        if tracer is not None:
            tracer.close()
        _finish_metrics(args, metrics_on, server)
        raise
    elapsed = time.time() - started
    timing = AcceleratorTimingModel().run_time(result.metrics)
    print(
        f"{args.algorithm} on {graph.num_vertices} vertices / "
        f"{graph.num_edges} edges"
    )
    print(
        f"events processed: {result.metrics.events_processed:,}  "
        f"model time: {timing.time_us:.1f} us  (host wall: {elapsed:.2f} s)"
    )
    states = result.states
    if algorithm.kind is AlgorithmKind.ACCUMULATIVE:
        order = np.argsort(-states)[: args.top]
        print(f"top {args.top} vertices by value:")
        for v in order:
            print(f"  {int(v):>8}  {states[v]:.6g}")
    else:
        finite = np.flatnonzero(np.isfinite(states) & (states != algorithm.identity))
        order = finite[np.argsort(states[finite])][: args.top]
        print(f"{args.top} most progressed vertices:")
        for v in order:
            print(f"  {int(v):>8}  {states[v]:.6g}")
    engine.close()
    _finish_trace(tracer, memory, args)
    _finish_metrics(args, metrics_on, server)
    return 0


def cmd_stream(args) -> int:
    graph = _load_graph(args)
    algorithm = make_algorithm(args.algorithm, source=args.source)
    policy = DeletePolicy(args.policy)
    tracer, memory = _make_tracer(args)
    metrics_on, server = _start_metrics(args)
    engine = JetStreamEngine(
        graph,
        algorithm,
        policy=policy,
        engine=args.engine,
        num_engines=args.num_engines,
        backend=args.backend,
        tracer=tracer,
    )
    timing = AcceleratorTimingModel()

    cold = None
    if args.compare_cold:
        from repro.baselines import GraphPulseColdStart

        cold_args = argparse.Namespace(**vars(args))
        cold_graph = _load_graph(cold_args)
        cold = GraphPulseColdStart(cold_graph, make_algorithm(args.algorithm, source=args.source))

    try:
        initial = engine.initial_compute()
        if cold:
            cold.initial_compute()
        print(
            f"initial evaluation: {initial.metrics.events_processed:,} events, "
            f"{timing.run_time(initial.metrics).time_us:.1f} us"
        )

        if args.express:
            _run_express_stream(args, engine)
            engine.close()
            _finish_trace(tracer, memory, args)
            _finish_metrics(args, metrics_on, server)
            return 0

        if args.updates:
            batches = io.read_update_stream(args.updates)[: args.batches]
        else:
            generator = StreamGenerator(
                graph, seed=args.seed, insertion_ratio=args.insertion_ratio
            )
            batches = None  # generated lazily below

        header = f"{'batch':>5} {'size':>6} {'resets':>7} {'jet us':>10}"
        if cold:
            header += f" {'cold us':>10} {'advantage':>10}"
        print(header)
        for index in range(args.batches):
            if batches is not None:
                if index >= len(batches):
                    break
                batch = batches[index]
            else:
                batch = generator.next_batch(args.batch_size)
            result = engine.apply_batch(batch)
            jet_us = timing.run_time(result.metrics, stream_records=batch.size).time_us
            line = (
                f"{index:>5} {batch.size:>6} {result.vertices_reset:>7} {jet_us:>10.1f}"
            )
            if cold:
                cold_result = cold.apply_batch(batch)
                cold_us = timing.run_time(
                    cold_result.metrics, stream_records=batch.size
                ).time_us
                line += f" {cold_us:>10.1f} {cold_us / max(1e-9, jet_us):>9.1f}x"
            print(line)
    except BaseException:
        engine.close()
        if tracer is not None:
            tracer.close()
        _finish_metrics(args, metrics_on, server)
        raise
    engine.close()
    _finish_trace(tracer, memory, args)
    _finish_metrics(args, metrics_on, server)
    return 0


def _run_express_stream(args, engine) -> None:
    """``repro stream --express``: the stream as classified single updates.

    Applies ``batches x batch-size`` single-edge updates through the
    express lane, printing per-chunk latency percentiles and the
    safe/unsafe split; unsafe updates transparently run as one-edge
    engine batches.
    """
    import statistics

    from repro.core.fastpath import ExpressLane

    lane = ExpressLane(engine)
    singles = None
    if args.updates:
        singles = []
        for batch in io.read_update_stream(args.updates):
            for edge in batch.deletions:
                singles.append((edge.u, edge.v, edge.w, "delete"))
            for edge in batch.insertions:
                singles.append((edge.u, edge.v, edge.w, "insert"))
    else:
        generator = StreamGenerator(
            engine.graph, seed=args.seed, insertion_ratio=args.insertion_ratio
        )
        rng = np.random.default_rng(args.seed)

    print(f"{'updates':>8} {'safe':>6} {'unsafe':>7} {'p50 us':>9} {'max us':>9}")
    applied = 0
    for _ in range(args.batches):
        latencies: List[float] = []
        safe = 0
        for _ in range(args.batch_size):
            if singles is not None:
                if applied >= len(singles):
                    break
                u, v, w, op = singles[applied]
            else:
                # Batch composition rounds 0.7 to "always insert" at size 1;
                # draw the op per update instead to keep the stream mixed.
                want_insert = rng.random() < args.insertion_ratio
                single = generator.next_batch(
                    1, insertion_ratio=1.0 if want_insert else 0.0
                )
                if single.insertions:
                    edge, op = single.insertions[0], "insert"
                else:
                    edge, op = single.deletions[0], "delete"
                u, v, w = edge.u, edge.v, edge.w
            result = lane.apply(u, v, w, op)
            latencies.append(result.latency_s)
            safe += int(result.safe)
            applied += 1
        if not latencies:
            break
        print(
            f"{len(latencies):>8} {safe:>6} {len(latencies) - safe:>7} "
            f"{statistics.median(latencies) * 1e6:>9.1f} "
            f"{max(latencies) * 1e6:>9.1f}"
        )
    stats = lane.stats
    ratio = stats["safe_applied"] / applied if applied else 0.0
    print(
        f"express lane: {stats['safe_applied']} safe / "
        f"{stats['engine_fallthroughs']} engine fallthroughs "
        f"({ratio:.0%} safe)"
    )


def cmd_serve(args) -> int:
    """``repro serve``: run the long-running streaming service."""
    from repro.host import Accelerator
    from repro.serve import ServeApp, ServeServer

    if not args.no_metrics:
        REGISTRY.enable().reset()
    # Request tracing is always armed for the daemon (it powers
    # /debug/requests); the JSONL access log only flows when requested.
    REQUEST_LOG.configure(
        path=args.access_log,
        ring_size=args.request_ring,
        slow_threshold_s=args.slow_ms / 1e3,
    )
    tracer = None
    if args.trace:
        tracer = Tracer([JsonlSink(args.trace)])
        print(f"[serve] engine trace at {args.trace}", file=sys.stderr)
    app = ServeApp(
        accelerator=Accelerator(tracer=tracer) if tracer is not None else None,
        queue_bound=args.queue_bound,
        log_bound=args.log_bound,
    )
    if args.edges or args.dataset:
        if args.dataset:
            graph = datasets.load(
                args.dataset,
                symmetric=make_algorithm(
                    args.algorithm, source=args.source
                ).needs_symmetric,
            )
            edges = [
                (int(u), int(v), float(w))
                for u, v, w in zip(*graph.edge_arrays())
            ]
        else:
            edges = io.read_edge_list(args.edges)
        session = app.create_session(
            edges,
            args.algorithm,
            name="default",
            source=args.source,
            policy=args.policy,
            engine=args.engine,
            num_engines=args.num_engines,
            backend=args.backend,
            symmetric=make_algorithm(
                args.algorithm, source=args.source
            ).needs_symmetric,
        )
        print(
            f"[serve] session 'default': {args.algorithm} on "
            f"{session.stats()['num_vertices']} vertices",
            file=sys.stderr,
        )
    server = ServeServer(app, port=args.port, host=args.host).start()
    print(f"[serve] listening on {server.url}", file=sys.stderr)
    print(f"[serve] metrics at {server.url}/metrics", file=sys.stderr)
    server.serve_until_shutdown()
    print("[serve] drained and stopped", file=sys.stderr)
    REQUEST_LOG.reset()
    if tracer is not None:
        tracer.close()
    if not args.no_metrics:
        REGISTRY.disable().reset()
    return 0


def cmd_datasets(args) -> int:
    from repro.experiments import table2

    print(table2.render(table2.run(args.seed)))
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import runner

    argv: List[str] = ["--seed", str(args.seed)]
    if args.quick:
        argv.append("--quick")
    return runner.main(argv)


def cmd_trace(args) -> int:
    if args.action == "requests":
        import json

        analysis = analyze_requests(args.path, trace_path=args.trace)
        if args.json:
            print(json.dumps(analysis, indent=2))
        else:
            print(render_request_table(analysis))
        # Schema/monotonicity violations are the CI gate: non-zero exit.
        return 1 if analysis["errors"] else 0
    if args.action == "validate":
        errors = validate_trace(args.path)
        if errors:
            for problem in errors:
                print(problem, file=sys.stderr)
            print(f"{args.path}: INVALID ({len(errors)} problem(s))", file=sys.stderr)
            return 1
        print(f"{args.path}: valid trace")
        return 0
    if args.action == "export":
        output = args.output or (args.path + ".chrome.json")
        count = write_chrome_trace(read_trace(args.path), output)
        print(
            f"wrote {count} trace events to {output} "
            "(open in chrome://tracing or https://ui.perfetto.dev)"
        )
        return 0
    print(summarize(args.path))
    return 0


def cmd_metrics(args) -> int:
    import json

    with open(args.path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if args.format == "json":
        print(json.dumps(snapshot, indent=2))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def cmd_bench(args) -> int:
    from repro.obs import bench_gate

    suites = list(bench_gate.SUITES) if args.suite == "all" else [args.suite]
    baseline_paths = {}
    if args.baseline_engine:
        baseline_paths["engine"] = args.baseline_engine
    if args.baseline_trace:
        baseline_paths["trace"] = args.baseline_trace
    if args.baseline_stream:
        baseline_paths["stream"] = args.baseline_stream
    if args.baseline_sharded:
        baseline_paths["sharded"] = args.baseline_sharded
    if args.baseline_latency:
        baseline_paths["latency"] = args.baseline_latency
    if args.baseline_serve:
        baseline_paths["serve"] = args.baseline_serve
    if args.baseline_commongraph:
        baseline_paths["commongraph"] = args.baseline_commongraph
    tolerance = (
        args.tolerance if args.tolerance is not None else bench_gate.DEFAULT_TOLERANCE
    )
    try:
        result = bench_gate.run_gate(
            suites=suites,
            quick=args.quick,
            tolerance=tolerance,
            baseline_paths=baseline_paths,
            update_baselines=args.update_baselines,
        )
    except bench_gate.BenchGateError as exc:
        print(f"bench check: {exc}", file=sys.stderr)
        return 2
    if args.update_baselines:
        for suite in suites:
            path = baseline_paths.get(suite) or bench_gate.default_baseline_path(
                suite, args.quick
            )
            print(f"baseline updated: {path}")
        return 0
    print(bench_gate.render_table(result["comparisons"]))
    if result["regressions"]:
        print(
            f"\nbench check: {result['regressions']} regression(s) "
            f"(tolerance {tolerance:.0%})",
            file=sys.stderr,
        )
        return 0 if args.no_fail else 1
    print("\nbench check: all rows within tolerance")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handler = {
        "query": cmd_query,
        "stream": cmd_stream,
        "serve": cmd_serve,
        "datasets": cmd_datasets,
        "experiments": cmd_experiments,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
        "bench": cmd_bench,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
