"""Streaming-update batches and workload generation.

Graph updates arrive as a stream of edge insertions/deletions, collected
into batches and applied between query evaluations (§2.1, Fig. 1). The
paper's evaluation uses 100K-edge batches at 70% insertions / 30% deletions
(Table 3) and sweeps both the size (Fig. 13) and the composition (Fig. 14).

:class:`StreamGenerator` produces consistent batches against a
:class:`~repro.graph.dynamic.DynamicGraph`: deletions sample edges that
currently exist, insertions are fresh edges, and no edge appears twice in
one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class Edge:
    """A directed edge ``u -> v`` with weight ``w``."""

    u: int
    v: int
    w: float = 1.0

    def key(self) -> Tuple[int, int]:
        """The ``(u, v)`` identity of the edge (weights don't identify)."""
        return (self.u, self.v)


@dataclass
class UpdateBatch:
    """One batch of streaming updates (Δ in Fig. 1)."""

    insertions: List[Edge] = field(default_factory=list)
    deletions: List[Edge] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Total number of edge updates in the batch."""
        return len(self.insertions) + len(self.deletions)

    @property
    def insertion_ratio(self) -> float:
        """Fraction of the batch that is insertions."""
        return len(self.insertions) / self.size if self.size else 0.0

    def validate(self) -> None:
        """Check internal consistency: no duplicate updates, no edge both
        inserted and deleted with identical weight ambiguity."""
        ins = {e.key() for e in self.insertions}
        if len(ins) != len(self.insertions):
            raise ValueError("duplicate insertion in batch")
        dels = {e.key() for e in self.deletions}
        if len(dels) != len(self.deletions):
            raise ValueError("duplicate deletion in batch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateBatch(+{len(self.insertions)}, -{len(self.deletions)})"


class StreamGenerator:
    """Generates a reproducible stream of update batches for a graph.

    Parameters
    ----------
    graph:
        The :class:`~repro.graph.dynamic.DynamicGraph` the stream mutates.
        The generator tracks the live edge set; callers must apply each
        produced batch to the graph (``graph.apply_batch``) before asking
        for the next one (the engines do this).
    seed:
        RNG seed; streams are fully deterministic.
    insertion_ratio:
        Fraction of each batch that is insertions (paper default 0.7).
    weighted:
        Whether inserted edges get random integer weights (else 1.0).
    """

    def __init__(
        self,
        graph,
        seed: int = 0,
        insertion_ratio: float = 0.7,
        weighted: bool = True,
        max_weight: int = 64,
    ):
        if not 0.0 <= insertion_ratio <= 1.0:
            raise ValueError("insertion_ratio must be within [0, 1]")
        self.graph = graph
        self.rng = np.random.default_rng(seed)
        self.insertion_ratio = insertion_ratio
        self.weighted = weighted
        self.max_weight = max_weight

    def next_batch(
        self, size: int, insertion_ratio: Optional[float] = None
    ) -> UpdateBatch:
        """Produce the next batch of ``size`` edge updates.

        Deletions are sampled uniformly from the current edge set;
        insertions are fresh ``(u, v)`` pairs not currently present and not
        deleted in this same batch (re-inserting a just-deleted edge would
        be a weight update, which the paper models explicitly as two
        separate batch entries — we keep batches unambiguous instead).
        """
        ratio = self.insertion_ratio if insertion_ratio is None else insertion_ratio
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("insertion_ratio must be within [0, 1]")
        num_ins = int(round(size * ratio))
        num_del = size - num_ins

        deletions = self._sample_deletions(num_del)
        deleted_keys = {e.key() for e in deletions}
        insertions = self._sample_insertions(num_ins, deleted_keys)
        batch = UpdateBatch(insertions=insertions, deletions=deletions)
        batch.validate()
        return batch

    def stream(self, batch_size: int, num_batches: int) -> Iterator[UpdateBatch]:
        """Yield ``num_batches`` batches, applying each to the graph.

        Convenience for examples/tests that don't drive an engine: the graph
        is mutated here so successive batches stay consistent.
        """
        for _ in range(num_batches):
            batch = self.next_batch(batch_size)
            self.graph.apply_batch(
                [(e.u, e.v, e.w) for e in batch.insertions],
                [e.key() for e in batch.deletions],
            )
            yield batch

    # ------------------------------------------------------------------
    def _sample_deletions(self, count: int) -> List[Edge]:
        live = self._live_edges()
        if count > len(live):
            raise ValueError(
                f"cannot delete {count} edges from a graph with {len(live)}"
            )
        if count == 0:
            return []
        picks = self.rng.choice(len(live), size=count, replace=False)
        out = []
        for i in picks:
            u, v, w = live[int(i)]
            out.append(Edge(u, v, w))
        return out

    def _live_edges(self) -> List[Tuple[int, int, float]]:
        if self.graph.symmetric:
            # Sample each undirected edge once; the engine mirrors deletes.
            return sorted(
                (u, v, w) for u, v, w in self.graph.edges() if u < v
            )
        return sorted(self.graph.edges())

    def _sample_insertions(
        self, count: int, excluded: Set[Tuple[int, int]]
    ) -> List[Edge]:
        n = self.graph.num_vertices
        out: List[Edge] = []
        chosen: Set[Tuple[int, int]] = set()
        attempts = 0
        limit = 200 * max(1, count) + 1000
        while len(out) < count:
            attempts += 1
            if attempts > limit:
                raise RuntimeError("could not find enough fresh edges to insert")
            u = int(self.rng.integers(0, n))
            v = int(self.rng.integers(0, n))
            if u == v:
                continue
            key = (u, v)
            mirror = (v, u)
            if key in chosen or key in excluded:
                continue
            if self.graph.symmetric and (mirror in chosen or mirror in excluded):
                continue
            if self.graph.has_edge(u, v):
                continue
            w = float(self.rng.integers(1, self.max_weight)) if self.weighted else 1.0
            out.append(Edge(u, v, w))
            chosen.add(key)
        return out
