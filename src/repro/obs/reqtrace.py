"""Request-scoped tracing for ``repro serve``: tail-latency attribution.

The serve metrics (:mod:`repro.obs.metrics`) say *how many* requests were
slow; this module says *where* each one spent its time. Every HTTP request
gets a :class:`RequestContext` carrying a request id and a sequence of
monotonic stage marks (``parse → queued → classify → apply → publish →
respond`` for writes; ``parse → snapshot → respond`` for reads). Each mark
records the *end* of its named stage, so consecutive-mark differences
partition the request's wall time — the ``unaccounted`` residual is
whatever happened after the last mark (response flush, metric folds) and
is reported explicitly rather than silently absorbed.

The process-wide :data:`REQUEST_LOG` mirrors the ``REGISTRY`` /
``NULL_TRACER`` pattern: disabled by default, one ``enabled`` attribute
check at the request entry point, all mutation behind a lock. When enabled
it exposes the same data three ways:

* a JSONL **access log** (one record per request, full stage breakdown,
  header line carrying the wall-clock↔``perf_counter`` anchor) consumed
  offline by ``repro trace requests``;
* a bounded in-memory **slow-request ring** (oldest evicted first) served
  live by ``GET /debug/requests``;
* per-stage latency **histograms** folded into the metrics registry
  (``repro_serve_stage_latency_seconds``) with the slowest request ids
  attached as bucket exemplars.

Writer-thread handoff needs no extra locking: a context is only ever
touched by one thread at a time (handler → writer → handler), with the
write op's ``done`` event ordering the transitions.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from time import perf_counter
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ACCESS_LOG_FORMAT",
    "ACCESS_LOG_VERSION",
    "DEFAULT_RING_SIZE",
    "DEFAULT_SLOW_THRESHOLD_S",
    "READ_STAGES",
    "REQUEST_LOG",
    "RequestContext",
    "RequestLog",
    "WRITE_STAGES",
]

#: Format marker of the access log's JSONL header line.
ACCESS_LOG_FORMAT = "repro-access-log"
ACCESS_LOG_VERSION = 1

#: Stage names a write request marks, in pipeline order. ``queued`` covers
#: the bounded-queue wait (including any writer-gate pause), ``classify``
#: the express-lane classification (updates only), ``apply`` the engine /
#: safe-apply work, ``publish`` snapshot publication + log append.
WRITE_STAGES = ("parse", "queued", "classify", "apply", "publish", "respond")

#: Stage names a snapshot read marks. ``snapshot`` is the lock-free
#: snapshot fetch plus value extraction.
READ_STAGES = ("parse", "snapshot", "respond")

#: Default slow-request ring capacity.
DEFAULT_RING_SIZE = 64

#: Default slow threshold: requests at or above it enter the ring.
DEFAULT_SLOW_THRESHOLD_S = 0.050


class RequestContext:
    """One request's id plus its monotonic stage marks.

    ``marks`` is an append-only list of ``(stage, perf_counter)`` pairs;
    each entry timestamps the *end* of the named stage, so stage durations
    are differences of consecutive marks (anchored at ``t_recv``).
    """

    __slots__ = ("request_id", "method", "path", "t_recv", "wall_recv", "marks", "attrs")

    def __init__(self, request_id: str, method: str, path: str):
        self.request_id = request_id
        self.method = method
        self.path = path
        self.t_recv = perf_counter()
        self.wall_recv = time.time()
        self.marks: List[Tuple[str, float]] = []
        self.attrs: Dict[str, object] = {}

    def mark(self, stage: str, t: Optional[float] = None) -> None:
        """Record the end of ``stage`` (now, or at an explicit clock value).

        The explicit form lets a caller split an already-timed interval —
        e.g. the express lane's ``classify_s`` carving a classify stage
        out of the apply window — without re-reading the clock.
        """
        self.marks.append((stage, perf_counter() if t is None else t))

    def stages(self, t_end: Optional[float] = None) -> Tuple[Dict[str, float], float]:
        """``(stage → seconds, unaccounted)`` partition of the wall time.

        ``unaccounted`` is the residual between the last mark and
        ``t_end`` (now by default) — time the instrumentation did not
        attribute to a named stage.
        """
        if t_end is None:
            t_end = perf_counter()
        stages: Dict[str, float] = {}
        prev = self.t_recv
        for stage, t in self.marks:
            stages[stage] = stages.get(stage, 0.0) + max(0.0, t - prev)
            prev = max(prev, t)
        return stages, max(0.0, t_end - prev)


class RequestLog:
    """Process-wide request sink: access log + slow ring + stage metrics.

    Disabled by default; the serve handler checks :attr:`enabled` once per
    request. :meth:`configure` arms it (optionally with a JSONL access-log
    path), :meth:`reset` closes the file and returns to the off state.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.ring_size = DEFAULT_RING_SIZE
        self.slow_threshold_s = DEFAULT_SLOW_THRESHOLD_S
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._handle = None
        self._path: Optional[str] = None
        self._ring: deque = deque(maxlen=DEFAULT_RING_SIZE)
        self._requests = 0
        self._slow = 0
        #: Wall-clock ↔ perf_counter anchor, re-stamped by configure().
        self.epoch_s = time.time()
        self.perf_origin = perf_counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def configure(
        self,
        path: Optional[str] = None,
        ring_size: int = DEFAULT_RING_SIZE,
        slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
    ) -> "RequestLog":
        """Arm the log (and open the JSONL access log when ``path`` given)."""
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        with self._lock:
            self._close_handle()
            self.ring_size = ring_size
            self.slow_threshold_s = float(slow_threshold_s)
            self._ring = deque(maxlen=ring_size)
            self._requests = 0
            self._slow = 0
            self._ids = itertools.count(1)
            self.epoch_s = time.time()
            self.perf_origin = perf_counter()
            self._path = path
            if path is not None:
                self._handle = open(path, "w", encoding="utf-8")
                self._write_nolock(
                    {
                        "type": "header",
                        "format": ACCESS_LOG_FORMAT,
                        "version": ACCESS_LOG_VERSION,
                        "epoch_s": self.epoch_s,
                        "perf_counter": self.perf_origin,
                    }
                )
        self.enabled = True
        return self

    def reset(self) -> "RequestLog":
        """Disable, close the access log, and drop all in-memory state."""
        self.enabled = False
        with self._lock:
            self._close_handle()
            self._ring = deque(maxlen=self.ring_size)
            self._requests = 0
            self._slow = 0
        return self

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        self._path = None

    def _write_nolock(self, record: dict) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def open_request(self, method: str, path: str) -> RequestContext:
        """A fresh context with a process-unique request id."""
        return RequestContext(f"r{next(self._ids):06d}", method, path)

    def finish(
        self, ctx: RequestContext, route: str, status: int, registry=None
    ) -> dict:
        """Close out one request: build, persist, and fold its record.

        ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) gets
        the per-stage histograms and exemplars when it is enabled.
        """
        t_end = perf_counter()
        stages, unaccounted = ctx.stages(t_end)
        dur_s = t_end - ctx.t_recv
        record: Dict[str, object] = {
            "type": "request",
            "id": ctx.request_id,
            "route": route,
            "method": ctx.method,
            "path": ctx.path,
            "status": int(status),
            "wall_recv": ctx.wall_recv,
            "t_recv": ctx.t_recv,
            "dur_s": dur_s,
            "stages": stages,
            "unaccounted": unaccounted,
        }
        if ctx.attrs:
            record["attrs"] = dict(ctx.attrs)
        slow = dur_s >= self.slow_threshold_s
        with self._lock:
            self._requests += 1
            if slow:
                self._slow += 1
                self._ring.append(record)
            self._write_nolock(record)
        if registry is not None and registry.enabled:
            for stage, stage_s in stages.items():
                registry.record_serve_stage(
                    route, stage, stage_s, request_id=ctx.request_id
                )
            if unaccounted > 0.0:
                registry.record_serve_stage(route, "unaccounted", unaccounted)
        return record

    def flush(self) -> None:
        """Flush the access-log file (tests, pre-scrape sync points)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    # ------------------------------------------------------------------
    # Introspection (GET /debug/requests)
    # ------------------------------------------------------------------
    def debug_payload(self, registry=None) -> dict:
        """The ``/debug/requests`` reply: ring + live stage histograms."""
        with self._lock:
            payload: Dict[str, object] = {
                "enabled": self.enabled,
                "requests_total": self._requests,
                "slow_total": self._slow,
                "slow_threshold_s": self.slow_threshold_s,
                "ring_size": self.ring_size,
                "access_log": self._path,
                "epoch_s": self.epoch_s,
                "perf_counter": self.perf_origin,
                "ring": list(self._ring),
            }
        if registry is not None and registry.enabled:
            wanted = (
                "repro_serve_stage_latency_seconds",
                "repro_serve_request_latency_seconds",
            )
            payload["histograms"] = [
                family
                for family in registry.snapshot()["families"]
                if family["name"] in wanted
            ]
        return payload


#: The process-wide request log. Disabled by default; ``repro serve``
#: arms it (one attribute check per request when off).
REQUEST_LOG = RequestLog(enabled=False)
