"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

Where the run trace (:mod:`repro.obs.tracer`) records *what happened* as a
post-hoc span tree, this module keeps *live* aggregates that can be
scraped mid-run — the software analogue of the hardware counters the
paper's evaluation is built on (events, accesses, queue occupancy, NoC
flits; Figs. 9–14). The engine substrates, queues, streaming orchestrator,
and host transfer paths all publish into one shared
:data:`REGISTRY`, exported as Prometheus text exposition
(:meth:`MetricsRegistry.to_prometheus`, served live by
:class:`repro.obs.scrape.MetricsServer`) or a JSON snapshot
(:meth:`MetricsRegistry.snapshot`, rendered by ``repro metrics dump``).

**Overhead contract.** Metrics are off by default, mirroring the
``NULL_TRACER`` pattern: every instrumentation site guards behind a single
``REGISTRY.enabled`` attribute check per scheduler round (never per
event), so the disabled hot paths stay within noise of an uninstrumented
build (``benchmarks/bench_trace_overhead.py``, mode ``off`` vs
``metrics``).

Thread-safety: the sharded backend publishes from worker threads, so all
mutation goes through a registry-wide lock. Instrumentation happens once
per scheduler round / phase / transfer, so the lock is uncontended in
practice.
"""

from __future__ import annotations

import json
import math
import threading
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "log_buckets",
    "render_prometheus",
]

LabelPairs = Tuple[Tuple[str, str], ...]


def log_buckets(lo: float, hi: float, factor: float = 2.0) -> Tuple[float, ...]:
    """Fixed logarithmic bucket upper bounds: ``lo, lo*factor, ... >= hi``.

    The fixed-at-construction geometry is what makes scrape deltas
    meaningful: two snapshots of the same histogram are always
    bucket-compatible.
    """
    if lo <= 0 or factor <= 1:
        raise ValueError("log buckets need lo > 0 and factor > 1")
    bounds: List[float] = []
    value = float(lo)
    while value < hi:
        bounds.append(value)
        value *= factor
    bounds.append(value)
    return tuple(bounds)


def _label_key(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: LabelPairs, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing value (scrapes may only ever see it grow)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (queue occupancy, graph size)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Fixed log-bucket histogram with Prometheus cumulative semantics.

    Buckets can carry an *exemplar* — the id of one observation that
    landed in them (last write wins), in the spirit of OpenMetrics
    exemplars. The serve layer attaches request ids, so a latency bucket
    in a scrape points at a concrete request to look up in the access
    log. Exemplars appear in the JSON snapshot only; the 0.0.4 Prometheus
    text format has no syntax for them.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "exemplars")

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float], labels: LabelPairs = ()):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty list")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self.sum: float = 0.0
        self.count: int = 0
        self.exemplars: Dict[int, Dict[str, object]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if exemplar is not None:
            self.exemplars[index] = {"id": exemplar, "value": value}

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts (Prometheus ``le`` semantics)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


#: Default bucket geometries for the registry's built-in histograms.
ROUND_LATENCY_BUCKETS = log_buckets(1e-5, 8.0, factor=2.0)  # 10 µs .. 8 s
BATCH_EVENTS_BUCKETS = log_buckets(1.0, 4.0**10, factor=4.0)  # 1 .. ~1M events
RATIO_BUCKETS = log_buckets(1.0 / 1024, 1.0, factor=2.0)  # 2^-10 .. 1
SPILL_BYTES_BUCKETS = log_buckets(64.0, 4.0**15, factor=4.0)  # 64 B .. ~1 GiB
RUN_LATENCY_BUCKETS = log_buckets(1e-4, 128.0, factor=2.0)  # 100 µs .. ~2 min
EXPRESS_LATENCY_BUCKETS = log_buckets(1e-7, 2.0, factor=2.0)  # 100 ns .. 2 s
EXPRESS_SCAN_BUCKETS = log_buckets(1.0, 4096.0, factor=2.0)  # 1 .. 4K entries
SERVE_LATENCY_BUCKETS = log_buckets(1e-5, 32.0, factor=2.0)  # 10 µs .. 32 s
SERVE_READS_BUCKETS = log_buckets(1.0, 65536.0, factor=4.0)  # 1 .. 64K reads


class MetricsRegistry:
    """Named metric families plus the engine-facing recording helpers.

    One registry is the process-wide default (:data:`REGISTRY`); tests may
    construct private instances. ``enabled`` is the single attribute the
    instrumented hot paths check — all the ``record_*`` helpers assume the
    caller already performed that check (they re-check defensively, but
    the contract is one guard per round at the call site).
    """

    def __init__(self, enabled: bool = False, clock=time.perf_counter):
        self.enabled = enabled
        self.clock = clock
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}
        self._help: Dict[str, str] = {}
        self._kind: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> "MetricsRegistry":
        """Drop every recorded series (help/kind metadata included)."""
        with self._lock:
            self._metrics.clear()
            self._help.clear()
            self._kind.clear()
        return self

    # ------------------------------------------------------------------
    # Family accessors (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help_text: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                registered = self._kind.get(name)
                if registered is not None and registered != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {registered}"
                    )
                metric = cls(name, labels=key[1], **kwargs)
                self._metrics[key] = metric
                self._kind[name] = cls.kind
                if help_text or name not in self._help:
                    self._help[name] = help_text
            return metric

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help_text: str = "",
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, help_text, labels, buckets=buckets)

    def get(self, name: str, **labels):
        """Existing metric, or ``None`` (tests/exporters; never creates)."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels) -> Optional[float]:
        """Convenience: the current value of a counter/gauge series."""
        metric = self.get(name, **labels)
        return None if metric is None else metric.value

    # ------------------------------------------------------------------
    # Engine-facing recording helpers
    # ------------------------------------------------------------------
    def record_round(self, work, dur_s: float, occupancy: Optional[int] = None) -> None:
        """Fold one scheduler round's :class:`RoundWork` into the registry.

        Called once per round by every engine substrate (and by the
        orchestration seed rounds), so the work counters sum to exactly
        the run's :class:`~repro.core.metrics.RunMetrics` totals.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock("repro_rounds_total").inc()
            for field, total_name in _WORK_COUNTERS:
                amount = getattr(work, field)
                if amount:
                    self._counter_nolock(total_name).inc(amount)
            self._histogram_nolock(
                "repro_round_latency_seconds", ROUND_LATENCY_BUCKETS
            ).observe(dur_s)
            self._histogram_nolock(
                "repro_round_batch_events", BATCH_EVENTS_BUCKETS
            ).observe(work.events_processed)
            if work.queue_inserts:
                self._histogram_nolock(
                    "repro_round_coalesce_ratio", RATIO_BUCKETS
                ).observe(work.coalesce_ops / work.queue_inserts)
            if work.spill_bytes:
                self._histogram_nolock(
                    "repro_round_spill_bytes", SPILL_BYTES_BUCKETS
                ).observe(work.spill_bytes)
            if occupancy is not None:
                self._gauge_nolock("repro_queue_occupancy").set(occupancy)

    def record_phase(self, stats) -> None:
        """Fold one finished :class:`PhaseStats`' extras (not its rounds)."""
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock("repro_phases_total", phase=stats.name).inc()
            for field, total_name in _PHASE_COUNTERS:
                amount = getattr(stats, field)
                if amount:
                    self._counter_nolock(total_name).inc(amount)

    def record_noc(self, events_local: int, events_remote: int, flits: int) -> None:
        """Fold one round's inter-engine NoC deliveries (sharded backend)."""
        if not self.enabled:
            return
        with self._lock:
            if events_local:
                self._counter_nolock("repro_noc_events_local_total").inc(events_local)
            if events_remote:
                self._counter_nolock("repro_noc_events_remote_total").inc(events_remote)
            if flits:
                self._counter_nolock("repro_noc_flits_total").inc(flits)
            delivered = events_local + events_remote
            if delivered:
                self._histogram_nolock(
                    "repro_noc_remote_fraction", RATIO_BUCKETS
                ).observe(events_remote / delivered)

    def record_queue_occupancy(self, occupancy: int, peak: int) -> None:
        """Sample queue occupancy (called by the queues after inserts/drains)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauge_nolock("repro_queue_occupancy").set(occupancy)
            self._gauge_nolock("repro_queue_peak_occupancy").set(peak)

    def record_run(
        self,
        kind: str,
        dur_s: float,
        stream_records: int = 0,
        num_vertices: Optional[int] = None,
        num_edges: Optional[int] = None,
    ) -> None:
        """Fold one engine run (initial evaluation or one stream batch)."""
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock("repro_runs_total", kind=kind).inc()
            if stream_records:
                self._counter_nolock("repro_stream_records_total").inc(stream_records)
            self._histogram_nolock(
                "repro_run_latency_seconds", RUN_LATENCY_BUCKETS, kind=kind
            ).observe(dur_s)
            if num_vertices is not None:
                self._gauge_nolock("repro_graph_vertices").set(num_vertices)
            if num_edges is not None:
                self._gauge_nolock("repro_graph_edges").set(num_edges)

    def record_engine_work(self, shard_works) -> None:
        """Fold one sharded round's per-engine work (utilization counters).

        ``shard_works`` is the sequence of per-shard :class:`RoundWork`
        records indexed by engine id. The per-engine series mirror the
        in-process ``RunMetrics.per_engine_totals`` breakdown, so
        ``repro_engine_events_processed_total{engine=...}`` sums to the
        unlabelled ``repro_events_processed_total`` family.
        """
        if not self.enabled:
            return
        with self._lock:
            for engine_id, work in enumerate(shard_works):
                if work.events_processed:
                    self._counter_nolock(
                        "repro_engine_events_processed_total",
                        engine=str(engine_id),
                    ).inc(work.events_processed)
                if work.events_generated:
                    self._counter_nolock(
                        "repro_engine_events_generated_total",
                        engine=str(engine_id),
                    ).inc(work.events_generated)

    def record_shard_pool(self, backend: str, event: str, workers: int) -> None:
        """Fold one shard-executor lifecycle event (sharded substrate).

        ``event`` is ``"spawn"`` (a fresh pool was built) or ``"reuse"``
        (a warm pool was rebound — process-cache hit or a per-phase reuse
        of the core's live executor).
        """
        if not self.enabled:
            return
        with self._lock:
            if event == "spawn":
                self._counter_nolock(
                    "repro_shard_pool_spawns_total", backend=backend
                ).inc()
            else:
                self._counter_nolock(
                    "repro_shard_pool_reuse_total", backend=backend
                ).inc()
            self._gauge_nolock(
                "repro_shard_pool_workers", backend=backend
            ).set(workers)

    def record_express_update(
        self,
        op: str,
        outcome: str,
        reason: str,
        dur_s: float,
        edges_scanned: int,
        state_reads: int,
    ) -> None:
        """Fold one express-lane update (:mod:`repro.core.fastpath`).

        ``outcome`` is ``"safe"`` (absorbed on the express path) or
        ``"unsafe"`` (fell through to the engine). The scan histogram
        observes the classification work — adjacency entries plus state
        reads — which is deterministic for a given update sequence, unlike
        the wall-clock latency histogram.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock(
                "repro_express_updates_total", op=op, outcome=outcome
            ).inc()
            self._counter_nolock("repro_express_reasons_total", reason=reason).inc()
            self._histogram_nolock(
                "repro_express_latency_seconds", EXPRESS_LATENCY_BUCKETS,
                outcome=outcome,
            ).observe(dur_s)
            self._histogram_nolock(
                "repro_express_scan_entries", EXPRESS_SCAN_BUCKETS
            ).observe(edges_scanned + state_reads)
            total = safe = 0.0
            for (name, labels), metric in self._metrics.items():
                if name == "repro_express_updates_total":
                    total += metric.value
                    if ("outcome", "safe") in labels:
                        safe += metric.value
            self._gauge_nolock("repro_express_safe_ratio").set(
                safe / total if total else 0.0
            )

    def record_serve_request(
        self,
        route: str,
        status: int,
        dur_s: float,
        request_id: Optional[str] = None,
    ) -> None:
        """Fold one handled ``repro serve`` HTTP request (:mod:`repro.serve`).

        ``route`` is the logical route name (``ingest``, ``update``,
        ``read``, ``session``, ...), not the raw path — label cardinality
        must stay bounded no matter how many sessions a host opens.
        ``request_id`` (when request tracing is on) becomes the latency
        bucket's exemplar, so a scrape points at a concrete slow request.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock(
                "repro_serve_requests_total", route=route, status=str(status)
            ).inc()
            self._histogram_nolock(
                "repro_serve_request_latency_seconds",
                SERVE_LATENCY_BUCKETS,
                route=route,
            ).observe(dur_s, exemplar=request_id)

    def record_serve_stage(
        self,
        route: str,
        stage: str,
        dur_s: float,
        request_id: Optional[str] = None,
    ) -> None:
        """Fold one request-stage latency (:mod:`repro.obs.reqtrace`).

        One observation per named stage of each traced request (``parse``,
        ``queued``, ``apply``, ... plus the explicit ``unaccounted``
        residual), labelled by route and stage.
        """
        if not self.enabled:
            return
        with self._lock:
            self._histogram_nolock(
                "repro_serve_stage_latency_seconds",
                SERVE_LATENCY_BUCKETS,
                route=route,
                stage=stage,
            ).observe(dur_s, exemplar=request_id)

    def record_serve_queue_depth(self, depth: int) -> None:
        """Sample the ingest queue occupancy (at enqueue *and* dequeue).

        Observed from both sides of the queue so the gauge reflects live
        backpressure between scrapes instead of only post-drain values.
        """
        if not self.enabled:
            return
        with self._lock:
            self._gauge_nolock("repro_serve_queue_depth").set(depth)

    def record_serve_ingest(
        self, kind: str, dur_s: float, queue_depth: int
    ) -> None:
        """Fold one applied write op: queue wait + apply, and queue depth.

        ``kind`` is ``"batch"`` (an ingest batch through ``Session.run``)
        or ``"update"`` (a single-edge express update). ``queue_depth`` is
        the ingest queue occupancy right after the op was dequeued — the
        backpressure signal a dashboard alerts on.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock(
                "repro_serve_writes_applied_total", kind=kind
            ).inc()
            self._histogram_nolock(
                "repro_serve_ingest_latency_seconds",
                SERVE_LATENCY_BUCKETS,
                kind=kind,
            ).observe(dur_s)
            self._gauge_nolock("repro_serve_queue_depth").set(queue_depth)

    def record_serve_rejection(self, kind: str) -> None:
        """Fold one backpressure rejection (bounded ingest queue full)."""
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock(
                "repro_serve_rejected_total", kind=kind
            ).inc()

    def record_serve_read(self, kind: str = "latest") -> None:
        """Fold one read served from a published immutable snapshot.

        ``kind`` is ``"latest"`` (the live snapshot) or ``"historical"``
        (a ``?version=`` time-travel read from the retained ring).
        """
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock("repro_serve_reads_total", kind=kind).inc()

    def record_serve_snapshot(self, reads_served: int) -> None:
        """Fold one snapshot rotation (a write published a fresh one).

        ``reads_served`` is how many reads the *retired* snapshot served
        over its lifetime; the histogram shows read/write amortization —
        high values mean many queries rode one converged state.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock("repro_serve_snapshots_total").inc()
            if reads_served:
                self._histogram_nolock(
                    "repro_serve_reads_per_snapshot", SERVE_READS_BUCKETS
                ).observe(reads_served)

    def record_serve_sessions(self, count: int) -> None:
        """Sample the number of open serve sessions."""
        if not self.enabled:
            return
        with self._lock:
            self._gauge_nolock("repro_serve_sessions").set(count)

    def record_transfer(self, direction: str, nbytes: int) -> None:
        """Fold one host<->accelerator DMA transfer (:mod:`repro.host`)."""
        if not self.enabled:
            return
        with self._lock:
            self._counter_nolock(
                "repro_transfer_bytes_total", direction=direction
            ).inc(nbytes)

    def round_scope(self, work, queue=None):
        """Context manager timing an orchestration-level round.

        The engine event loops do *not* use this helper (they call
        :meth:`record_round` directly under their per-round guard); the
        streaming orchestrator wraps its seed rounds with it so counters
        stay equal to the in-process ``RunMetrics`` totals.
        """
        return _RoundScope(self, work, queue)

    # -- lock-free internals (caller holds self._lock) ------------------
    def _counter_nolock(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Counter(name, labels=key[1])
            self._metrics[key] = metric
            self._kind[name] = Counter.kind
            self._help.setdefault(name, _HELP.get(name, ""))
        return metric

    def _gauge_nolock(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, labels=key[1])
            self._metrics[key] = metric
            self._kind[name] = Gauge.kind
            self._help.setdefault(name, _HELP.get(name, ""))
        return metric

    def _histogram_nolock(self, name: str, buckets, **labels) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, buckets, labels=key[1])
            self._metrics[key] = metric
            self._kind[name] = Histogram.kind
            self._help.setdefault(name, _HELP.get(name, ""))
        return metric

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every series (the dump format)."""
        with self._lock:
            families: List[Dict[str, object]] = []
            for name in sorted(self._kind):
                series = []
                for (metric_name, labels), metric in sorted(self._metrics.items()):
                    if metric_name != name:
                        continue
                    entry: Dict[str, object] = {"labels": dict(labels)}
                    if isinstance(metric, Histogram):
                        entry["buckets"] = list(metric.buckets)
                        entry["counts"] = list(metric.counts)
                        entry["sum"] = metric.sum
                        entry["count"] = metric.count
                        if metric.exemplars:
                            entry["exemplars"] = {
                                str(index): dict(exemplar)
                                for index, exemplar in sorted(
                                    metric.exemplars.items()
                                )
                            }
                    else:
                        entry["value"] = metric.value
                    series.append(entry)
                families.append(
                    {
                        "name": name,
                        "kind": self._kind[name],
                        "help": self._help.get(name, ""),
                        "series": series,
                    }
                )
            return {"format": "repro-metrics", "version": 1, "families": families}

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        return render_prometheus(self.snapshot())

    def dump_json(self, path: str) -> None:
        """Write the JSON snapshot to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2)
            handle.write("\n")


class _RoundScope:
    __slots__ = ("registry", "work", "queue", "t0")

    def __init__(self, registry: MetricsRegistry, work, queue):
        self.registry = registry
        self.work = work
        self.queue = queue

    def __enter__(self):
        if self.registry.enabled:
            self.t0 = self.registry.clock()
        return self

    def __exit__(self, *exc):
        registry = self.registry
        if registry.enabled:
            occupancy = self.queue.occupancy() if self.queue is not None else None
            registry.record_round(
                self.work, registry.clock() - self.t0, occupancy
            )
        return False


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Shared by the live registry, the scrape endpoint, and
    ``repro metrics dump`` (which converts saved JSON snapshots offline).
    """
    if snapshot.get("format") != "repro-metrics":
        raise ValueError("not a repro-metrics snapshot")
    lines: List[str] = []
    for family in snapshot["families"]:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for entry in family["series"]:
            labels = _label_key(entry.get("labels", {}))
            if family["kind"] == "histogram":
                running = 0
                for bound, count in zip(
                    list(entry["buckets"]) + [math.inf],
                    entry["counts"],
                ):
                    running += count
                    le = _format_labels(labels, f'le="{_format_value(float(bound))}"')
                    lines.append(f"{name}_bucket{le} {running}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(float(entry['sum']))}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(float(entry['value']))}"
                )
    return "\n".join(lines) + "\n"


#: RoundWork field -> counter family folded per scheduler round.
_WORK_COUNTERS = (
    ("events_processed", "repro_events_processed_total"),
    ("events_generated", "repro_events_generated_total"),
    ("queue_inserts", "repro_queue_inserts_total"),
    ("coalesce_ops", "repro_coalesce_ops_total"),
    ("vertex_reads", "repro_vertex_reads_total"),
    ("vertex_writes", "repro_vertex_writes_total"),
    ("edges_read", "repro_edges_read_total"),
    ("vertex_lines", "repro_vertex_lines_total"),
    ("edge_lines", "repro_edge_lines_total"),
    ("dram_pages", "repro_dram_pages_total"),
    ("spill_bytes", "repro_spill_bytes_total"),
)

#: PhaseStats extras folded once per finished phase.
_PHASE_COUNTERS = (
    ("vertices_reset", "repro_vertices_reset_total"),
    ("deletes_discarded", "repro_deletes_discarded_total"),
    ("request_events", "repro_request_events_total"),
)

_HELP = {
    "repro_rounds_total": "Scheduler rounds executed.",
    "repro_events_processed_total": "Events drained and processed by the engines.",
    "repro_events_generated_total": "Events generated along out-edges.",
    "repro_queue_inserts_total": "Event insertions into the coalescing queue.",
    "repro_coalesce_ops_total": "In-queue coalesce operations (Reduce folds).",
    "repro_vertex_reads_total": "Vertex state reads.",
    "repro_vertex_writes_total": "Vertex state write-backs.",
    "repro_edges_read_total": "CSR edges read during propagation.",
    "repro_vertex_lines_total": "Unique 64B vertex-state lines fetched.",
    "repro_edge_lines_total": "Unique 64B edge-list lines fetched.",
    "repro_dram_pages_total": "Unique DRAM pages opened (row activations).",
    "repro_spill_bytes_total": "Off-chip spill traffic in bytes.",
    "repro_round_latency_seconds": "Wall-clock duration of one scheduler round.",
    "repro_round_batch_events": "Events processed per scheduler round.",
    "repro_round_coalesce_ratio": "Per-round coalesce ops / queue inserts.",
    "repro_round_spill_bytes": "Per-round off-chip spill bytes (rounds that spill).",
    "repro_phases_total": "Execution phases completed, by phase name.",
    "repro_vertices_reset_total": "Vertices reset during delete recovery.",
    "repro_deletes_discarded_total": "Delete events discarded by the impact tests.",
    "repro_request_events_total": "Request events queued during re-approximation.",
    "repro_noc_events_local_total": "Generated events delivered to the producing engine.",
    "repro_noc_events_remote_total": "Generated events routed across the crossbar NoC.",
    "repro_noc_flits_total": "NoC flits injected for remote event delivery.",
    "repro_noc_remote_fraction": "Per-round fraction of deliveries crossing the NoC.",
    "repro_queue_occupancy": "Events currently queued across all slices.",
    "repro_queue_peak_occupancy": "Lifetime peak queued events.",
    "repro_runs_total": "Engine runs, by kind (initial | batch | static).",
    "repro_stream_records_total": "Stream update records applied.",
    "repro_run_latency_seconds": "Wall-clock duration of one engine run.",
    "repro_graph_vertices": "Vertices in the bound graph snapshot.",
    "repro_graph_edges": "Edges in the bound graph snapshot.",
    "repro_transfer_bytes_total": "Host<->accelerator DMA bytes, by direction.",
    "repro_express_updates_total": "Express-lane updates, by op and safe/unsafe outcome.",
    "repro_express_reasons_total": "Express-lane classification verdicts, by rule.",
    "repro_express_latency_seconds": "Per-update express-lane latency, by outcome.",
    "repro_express_scan_entries": "Classification work per express update (edges + state reads).",
    "repro_express_safe_ratio": "Lifetime fraction of express updates classified safe.",
    "repro_engine_events_processed_total": "Events processed, by engine shard.",
    "repro_engine_events_generated_total": "Events generated, by engine shard.",
    "repro_shard_pool_spawns_total": "Shard worker pools built, by backend.",
    "repro_shard_pool_reuse_total": "Warm shard worker pools reused, by backend.",
    "repro_shard_pool_workers": "Worker slots in the live shard pool, by backend.",
    "repro_serve_requests_total": "Serve HTTP requests handled, by route and status.",
    "repro_serve_request_latency_seconds": "Serve HTTP request latency, by route.",
    "repro_serve_stage_latency_seconds": "Traced request stage latency, by route and stage.",
    "repro_serve_writes_applied_total": "Serve write ops applied, by kind (batch | update).",
    "repro_serve_ingest_latency_seconds": "Queue wait + apply latency of serve write ops, by kind.",
    "repro_serve_queue_depth": "Ingest queue occupancy, observed at enqueue and dequeue.",
    "repro_serve_rejected_total": "Write ops rejected by ingest backpressure, by kind.",
    "repro_serve_reads_total": "Reads served from published immutable snapshots, by kind (latest | historical).",
    "repro_serve_snapshots_total": "Converged snapshots published by serve write ops.",
    "repro_serve_reads_per_snapshot": "Reads served by each retired snapshot.",
    "repro_serve_sessions": "Serve sessions currently open.",
}

#: The process-wide registry every substrate publishes into. Disabled by
#: default: hot paths pay one attribute check (`REGISTRY.enabled`).
REGISTRY = MetricsRegistry(enabled=False)
