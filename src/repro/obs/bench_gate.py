"""Benchmark regression gate (``repro bench check``).

Re-runs the benchmark suites in ``benchmarks/`` and compares their
throughput medians against the committed baselines — ``BENCH_engine.json``
and ``BENCH_trace.json`` at the repo root for full runs, or the quick-mode
snapshots under ``benchmarks/baselines/`` for ``--quick`` — so the perf
trajectory the ROADMAP tracks is enforced by CI instead of eyeballs.

Two checks per comparable row:

* **throughput** — ``events_per_s`` may drop at most ``tolerance``
  (relative) below the baseline median. Wall-clock is machine-dependent,
  so CI runs this informationally (generous tolerance, or
  ``--no-fail``) while local runs on the baseline machine use the strict
  default.
* **work** — ``events_processed`` must match the baseline *exactly*.
  Event counts are deterministic and machine-independent; any drift means
  the functional behaviour changed, which no tolerance excuses.

Baselines are regenerated with ``repro bench check --update-baselines``
(run on the machine that owns the committed numbers).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional

__all__ = [
    "BenchGateError",
    "collect_commongraph",
    "collect_engine",
    "collect_latency",
    "collect_serve",
    "collect_sharded",
    "collect_stream",
    "collect_trace",
    "compare_rows",
    "default_baseline_path",
    "flatten_commongraph",
    "flatten_engine",
    "flatten_latency",
    "flatten_serve",
    "flatten_sharded",
    "flatten_stream",
    "flatten_trace",
    "render_table",
    "run_gate",
]

REPO_ROOT = Path(__file__).resolve().parents[3]
BENCHMARKS_DIR = REPO_ROOT / "benchmarks"
BASELINES_DIR = BENCHMARKS_DIR / "baselines"

SUITES = (
    "engine",
    "trace",
    "stream",
    "sharded",
    "latency",
    "serve",
    "commongraph",
)

#: Default allowed relative drop in events_per_s before a row regresses.
DEFAULT_TOLERANCE = 0.30


class BenchGateError(RuntimeError):
    """Raised when the gate cannot run (missing baseline, bad schema)."""


def _load_bench_module(name: str):
    path = BENCHMARKS_DIR / f"{name}.py"
    if not path.exists():
        raise BenchGateError(f"benchmark script not found: {path}")
    spec = importlib.util.spec_from_file_location(f"repro_bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def collect_engine(quick: bool) -> dict:
    """Run the scalar-vs-vectorized grid and return its report."""
    return _load_bench_module("bench_vector_engine").run_grid(quick)


def collect_trace(quick: bool) -> dict:
    """Run the tracing/metrics overhead grid and return its report."""
    return _load_bench_module("bench_trace_overhead").collect(quick)


def collect_stream(quick: bool) -> dict:
    """Run the incremental-vs-rebuild streaming store grid."""
    return _load_bench_module("bench_stream_pipeline").collect(quick)


def collect_sharded(quick: bool) -> dict:
    """Run the threads-vs-processes sharded backend grid."""
    return _load_bench_module("bench_sharded_engine").run_grid(quick)


def collect_latency(quick: bool) -> dict:
    """Run the express-lane vs engine single-update latency grid."""
    return _load_bench_module("bench_update_latency").collect(quick)


def collect_serve(quick: bool) -> dict:
    """Run the many-client serve load test and return its report."""
    return _load_bench_module("bench_serve").collect(quick)


def collect_commongraph(quick: bool) -> dict:
    """Run the CommonGraph-vs-DAP deletion-batch grid."""
    return _load_bench_module("bench_commongraph").collect(quick)


def default_baseline_path(suite: str, quick: bool) -> Path:
    """Where the committed baseline for ``suite`` lives."""
    if suite == "engine":
        return (
            BASELINES_DIR / "BENCH_engine.quick.json"
            if quick
            else REPO_ROOT / "BENCH_engine.json"
        )
    if suite == "trace":
        return (
            BASELINES_DIR / "BENCH_trace.quick.json"
            if quick
            else REPO_ROOT / "BENCH_trace.json"
        )
    if suite == "stream":
        return (
            BASELINES_DIR / "BENCH_stream.quick.json"
            if quick
            else REPO_ROOT / "BENCH_stream.json"
        )
    if suite == "sharded":
        return (
            BASELINES_DIR / "BENCH_sharded.quick.json"
            if quick
            else REPO_ROOT / "BENCH_sharded.json"
        )
    if suite == "latency":
        return (
            BASELINES_DIR / "BENCH_latency.quick.json"
            if quick
            else REPO_ROOT / "BENCH_latency.json"
        )
    if suite == "serve":
        return (
            BASELINES_DIR / "BENCH_serve.quick.json"
            if quick
            else REPO_ROOT / "BENCH_serve.json"
        )
    if suite == "commongraph":
        return (
            BASELINES_DIR / "BENCH_commongraph.quick.json"
            if quick
            else REPO_ROOT / "BENCH_commongraph.json"
        )
    raise BenchGateError(f"unknown suite {suite!r} (choose from {SUITES})")


# ----------------------------------------------------------------------
# Flattening: per-suite reports -> comparable rows
# ----------------------------------------------------------------------
def flatten_engine(report: dict) -> List[dict]:
    """``BENCH_engine.json`` → one row per (graph, algorithm, substrate)."""
    rows = []
    for entry in report.get("results", []):
        for mode in ("scalar", "vectorized"):
            sample = entry.get(mode)
            if not sample:
                continue
            rows.append(
                {
                    "suite": "engine",
                    "key": f"{entry['graph']}/{entry['algorithm']}/{mode}",
                    "events_per_s": float(sample["events_per_s"]),
                    "events": int(sample["events_processed"]),
                }
            )
    return rows


def flatten_trace(report: dict) -> List[dict]:
    """``BENCH_trace.json`` → one row per tracing mode."""
    rows = []
    for entry in report.get("rows", []):
        rows.append(
            {
                "suite": "trace",
                "key": entry["mode"],
                "events_per_s": float(entry["events_per_s"]),
                "events": int(entry["events"]),
            }
        )
    return rows


def flatten_stream(report: dict) -> List[dict]:
    """``BENCH_stream.json`` → one row per (batch size, store mode).

    Throughput is batches/s (the unit the suite optimizes); the event
    count is the summed ``events_processed`` across the stream, which is
    deterministic and must match the baseline exactly — it doubles as a
    cross-mode pipeline-parity check in CI.
    """
    rows = []
    for entry in report.get("results", []):
        for mode in ("incremental", "full_rebuild"):
            sample = entry.get(mode)
            if not sample:
                continue
            rows.append(
                {
                    "suite": "stream",
                    "key": f"batch{entry['batch_size']}/{mode}",
                    "events_per_s": float(sample["batches_per_s"]),
                    "events": int(sample["events_processed"]),
                }
            )
    return rows


def flatten_sharded(report: dict) -> List[dict]:
    """``BENCH_sharded.json`` → one row per (graph, algorithm, backend, engines).

    The report may be the standalone sharded suite file or the combined
    ``BENCH_engine.json`` carrying the grid under a ``"sharded"`` key.
    """
    report = report.get("sharded", report)
    rows = []
    for entry in report.get("results", []):
        rows.append(
            {
                "suite": "sharded",
                "key": (
                    f"{entry['graph']}/{entry['algorithm']}/"
                    f"{entry['backend']}/e{entry['num_engines']}"
                ),
                "events_per_s": float(entry["events_per_s"]),
                "events": int(entry["events_processed"]),
            }
        )
    return rows


def flatten_latency(report: dict) -> List[dict]:
    """``BENCH_latency.json`` → one row per single-update workload.

    Throughput is updates/s. The event column is the deterministic work
    measure of each workload — classification scan entries for the
    express rows (plus fallthrough engine events for the mixed stream),
    engine events processed for the batch-1 comparator — so any drift in
    classification decisions or engine behaviour fails the gate exactly.
    """
    results = report.get("results", {})
    rows = []
    for key, events_field in (
        ("safe_insert", "work_entries"),
        ("mixed", "work_entries"),
        ("engine_batch1", "events_processed"),
    ):
        sample = results.get(key)
        if not sample:
            continue
        prefix = "engine" if key == "engine_batch1" else "express"
        name = "batch1" if key == "engine_batch1" else key
        rows.append(
            {
                "suite": "latency",
                "key": f"{prefix}/{name}",
                "events_per_s": float(sample["updates_per_s"]),
                "events": int(sample[events_field]),
            }
        )
    return rows


def flatten_serve(report: dict) -> List[dict]:
    """``BENCH_serve.json`` → one row per serve traffic shape.

    Throughput is batches/s (mixed ingest), reads/s (the same phase's
    read side), and updates/s (express singles). The event counts are the
    exact request totals the workload configuration fixes — records
    applied, reads served, updates applied — so the determinism check
    survives the nondeterministic client interleaving wall-clock brings.
    """
    results = report.get("results", {})
    rows = []
    mixed = results.get("mixed")
    if mixed:
        rows.append(
            {
                "suite": "serve",
                "key": "mixed_ingest",
                "events_per_s": float(mixed["batches_per_s"]),
                "events": int(mixed["records_applied"]),
            }
        )
        rows.append(
            {
                "suite": "serve",
                "key": "mixed_read",
                "events_per_s": float(mixed["reads_per_s"]),
                "events": int(mixed["reads_total"]),
            }
        )
    express = results.get("express")
    if express:
        rows.append(
            {
                "suite": "serve",
                "key": "express",
                "events_per_s": float(express["updates_per_s"]),
                "events": int(express["updates"]),
            }
        )
    traced = results.get("mixed_traced")
    if traced:
        # The tracing-overhead gate: this row regressing while
        # mixed_ingest holds means request tracing itself got slower.
        rows.append(
            {
                "suite": "serve",
                "key": "mixed_ingest_traced",
                "events_per_s": float(traced["batches_per_s"]),
                "events": int(traced["records_applied"]),
            }
        )
    return rows


def flatten_commongraph(report: dict) -> List[dict]:
    """``BENCH_commongraph.json`` → one row per (point, policy).

    Throughput is events/s through the deletion batch. The event count
    is the engine's deterministic work counter for that policy, so any
    drift in the conversion (or in DAP's recovery it is gated against)
    fails the comparison exactly. The DAP-vs-commongraph event *ratio*
    itself is asserted by the benchmark's own gate, not here.
    """
    rows = []
    for entry in report.get("results", []):
        pct = int(round(entry["delete_fraction"] * 100))
        for policy in ("dap", "commongraph"):
            sample = entry.get(policy)
            if not sample:
                continue
            rows.append(
                {
                    "suite": "commongraph",
                    "key": (
                        f"{entry['graph']}/{entry['algorithm']}/"
                        f"del{pct}/{policy}"
                    ),
                    "events_per_s": float(sample["events_per_s"]),
                    "events": int(sample["events_processed"]),
                }
            )
    return rows


_FLATTENERS: Dict[str, Callable[[dict], List[dict]]] = {
    "engine": flatten_engine,
    "trace": flatten_trace,
    "stream": flatten_stream,
    "sharded": flatten_sharded,
    "latency": flatten_latency,
    "serve": flatten_serve,
    "commongraph": flatten_commongraph,
}

_COLLECTORS: Dict[str, Callable[[bool], dict]] = {
    "engine": collect_engine,
    "trace": collect_trace,
    "stream": collect_stream,
    "sharded": collect_sharded,
    "latency": collect_latency,
    "serve": collect_serve,
    "commongraph": collect_commongraph,
}


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def compare_rows(
    current: List[dict], baseline: List[dict], tolerance: float
) -> List[dict]:
    """Join current and baseline rows by key; classify each pair.

    Statuses: ``ok`` (within tolerance), ``improved`` (faster than
    baseline by more than the tolerance), ``regression`` (throughput drop
    beyond tolerance OR an exact event-count mismatch), ``new`` (no
    baseline row), ``removed`` (baseline row with no current run).
    """
    base_by_key = {(r["suite"], r["key"]): r for r in baseline}
    out: List[dict] = []
    for row in current:
        base = base_by_key.pop((row["suite"], row["key"]), None)
        entry = {
            "suite": row["suite"],
            "key": row["key"],
            "events_per_s": row["events_per_s"],
            "baseline_events_per_s": base["events_per_s"] if base else None,
            "delta": None,
            "status": "new",
            "note": "",
        }
        if base is not None:
            if base["events_per_s"] > 0:
                entry["delta"] = (
                    row["events_per_s"] / base["events_per_s"] - 1.0
                )
            if row["events"] != base["events"]:
                entry["status"] = "regression"
                entry["note"] = (
                    f"events_processed drifted: {row['events']} vs "
                    f"baseline {base['events']} (determinism break)"
                )
            elif entry["delta"] is not None and entry["delta"] < -tolerance:
                entry["status"] = "regression"
                entry["note"] = (
                    f"throughput {-entry['delta']:.1%} below baseline "
                    f"(tolerance {tolerance:.0%})"
                )
            elif entry["delta"] is not None and entry["delta"] > tolerance:
                entry["status"] = "improved"
            else:
                entry["status"] = "ok"
        out.append(entry)
    for (suite, key), base in base_by_key.items():
        out.append(
            {
                "suite": suite,
                "key": key,
                "events_per_s": None,
                "baseline_events_per_s": base["events_per_s"],
                "delta": None,
                "status": "removed",
                "note": "row present in baseline but not in this run",
            }
        )
    return out


def render_table(comparisons: List[dict]) -> str:
    """Human-readable per-row delta table."""
    lines = [
        f"{'suite':>7} {'row':<34} {'events/s':>14} "
        f"{'baseline':>14} {'delta':>8}  status"
    ]
    for c in comparisons:
        cur = f"{c['events_per_s']:,.0f}" if c["events_per_s"] else "-"
        base = (
            f"{c['baseline_events_per_s']:,.0f}"
            if c["baseline_events_per_s"]
            else "-"
        )
        delta = f"{c['delta']:+.1%}" if c["delta"] is not None else "-"
        note = f"  ({c['note']})" if c["note"] else ""
        lines.append(
            f"{c['suite']:>7} {c['key']:<34} {cur:>14} "
            f"{base:>14} {delta:>8}  {c['status']}{note}"
        )
    return "\n".join(lines)


def run_gate(
    suites: Optional[List[str]] = None,
    quick: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_paths: Optional[Dict[str, Path]] = None,
    collectors: Optional[Dict[str, Callable[[bool], dict]]] = None,
    update_baselines: bool = False,
) -> dict:
    """Run the selected suites and gate them against their baselines.

    Returns ``{"comparisons": [...], "reports": {suite: report},
    "regressions": int}``. ``collectors`` lets tests substitute canned
    report producers for the real benchmark runs.
    """
    suites = list(suites or SUITES)
    collectors = collectors or _COLLECTORS
    comparisons: List[dict] = []
    reports: Dict[str, dict] = {}
    for suite in suites:
        if suite not in _FLATTENERS:
            raise BenchGateError(f"unknown suite {suite!r} (choose from {SUITES})")
        report = collectors[suite](quick)
        reports[suite] = report
        path = Path(
            (baseline_paths or {}).get(suite)
            or default_baseline_path(suite, quick)
        )
        if update_baselines:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report, indent=2) + "\n")
            continue
        if not Path(path).exists():
            raise BenchGateError(
                f"no committed baseline for suite {suite!r} at {path}; "
                "generate one with --update-baselines"
            )
        baseline = json.loads(Path(path).read_text())
        comparisons.extend(
            compare_rows(
                _FLATTENERS[suite](report),
                _FLATTENERS[suite](baseline),
                tolerance,
            )
        )
    regressions = sum(1 for c in comparisons if c["status"] == "regression")
    return {
        "comparisons": comparisons,
        "reports": reports,
        "regressions": regressions,
    }
