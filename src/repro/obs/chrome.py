"""Chrome/Perfetto trace-event export of JSONL span traces.

Converts a parsed :class:`~repro.obs.trace_file.TraceData` into the
Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev (JSON object form, ``traceEvents`` array):

* one *thread* track per engine — tid 0 carries the orchestration spans
  (run → phase → round), tid ``engine_id + 1`` carries that engine's
  per-round kernel spans from the sharded backend;
* complete (``"ph": "X"``) events with microsecond ``ts``/``dur``
  normalized to the trace's earliest span start;
* counter (``"ph": "C"``) tracks for queue occupancy (sampled at round
  boundaries) and per-round NoC flits;
* instant (``"ph": "i"``) events for point records such as host DMA
  transfers.

Exposed on the CLI as ``repro trace export --format chrome``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.trace_file import PathLike, TraceData

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1
_ORCH_TID = 0


def _engine_tid(span: Dict[str, object]) -> Optional[int]:
    """Thread id for an engine span (``engine_id + 1``), else ``None``."""
    engine = span.get("attrs", {}).get("engine")
    if isinstance(engine, int):
        return engine + 1
    name = span.get("name", "")
    if isinstance(name, str) and name.startswith("engine-"):
        try:
            return int(name.split("-", 1)[1]) + 1
        except ValueError:
            return None
    return None


def chrome_trace(trace: TraceData) -> Dict[str, object]:
    """Build the Chrome trace-event JSON object for ``trace``."""
    spans = trace.spans
    times = [s["t_start"] for s in spans] + [e["t"] for e in trace.events]
    origin = min(times) if times else 0.0

    def us(t: float) -> float:
        return max(0.0, (t - origin) * 1e6)

    events: List[Dict[str, object]] = []
    tids = {_ORCH_TID}
    round_index = 0
    for span in spans:
        kind = span["kind"]
        if kind == "engine":
            tid = _engine_tid(span)
            if tid is None:
                tid = _ORCH_TID
        else:
            tid = _ORCH_TID
        tids.add(tid)
        name = span["name"]
        if kind == "round":
            round_index += 1
            name = f"round {round_index}" if name == "round" else name
        events.append(
            {
                "name": name,
                "cat": kind,
                "ph": "X",
                "ts": us(span["t_start"]),
                "dur": max(0.0, span["dur_s"] * 1e6),
                "pid": _PID,
                "tid": tid,
                "args": span.get("attrs", {}),
            }
        )
        if kind == "round":
            attrs = span.get("attrs", {})
            for key, at in (
                ("occupancy_start", span["t_start"]),
                ("occupancy_end", span["t_end"]),
            ):
                value = attrs.get(key)
                if isinstance(value, (int, float)):
                    events.append(
                        {
                            "name": "queue occupancy",
                            "ph": "C",
                            "ts": us(at),
                            "pid": _PID,
                            "tid": _ORCH_TID,
                            "args": {"events": value},
                        }
                    )
            flits = attrs.get("noc_flits")
            if isinstance(flits, (int, float)):
                events.append(
                    {
                        "name": "noc flits",
                        "ph": "C",
                        "ts": us(span["t_end"]),
                        "pid": _PID,
                        "tid": _ORCH_TID,
                        "args": {"flits": flits},
                    }
                )
    for record in trace.events:
        events.append(
            {
                "name": record["name"],
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": us(record["t"]),
                "pid": _PID,
                "tid": _ORCH_TID,
                "args": record.get("attrs", {}),
            }
        )

    events.sort(key=lambda e: (e["ts"], e.get("dur", 0.0) * -1))

    meta: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro"},
        }
    ]
    for tid in sorted(tids):
        label = "orchestrator" if tid == _ORCH_TID else f"engine {tid - 1}"
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: TraceData, path: PathLike) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    payload = chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return len(payload["traceEvents"])
