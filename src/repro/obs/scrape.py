"""Live metrics scrape endpoint (stdlib ``http.server``).

Serves the process-wide :data:`~repro.obs.metrics.REGISTRY` (or any
registry handed in) while a run executes:

* ``GET /metrics``      — Prometheus text exposition (format 0.0.4);
* ``GET /metrics.json`` — the JSON snapshot (``repro-metrics`` v1).

The server runs a :class:`~http.server.ThreadingHTTPServer` on a daemon
thread, so scrapes never block the engines — each request takes the
registry lock only long enough to copy a snapshot. Activated by
``repro query|stream --metrics-port N`` (port 0 picks a free port;
:attr:`MetricsServer.port` reports the bound one).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer"]


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set on the per-server subclass

    def do_GET(self):  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.registry.to_prometheus().encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            import json

            body = (
                json.dumps(self.registry.snapshot(), indent=2) + "\n"
            ).encode("utf-8")
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass


class MetricsServer:
    """Background HTTP server exposing one registry's metrics.

    Usage::

        with MetricsServer(REGISTRY, port=9102) as server:
            print("scrape at", server.url)
            ...  # run the workload

    ``start``/``stop`` are also available for explicit lifecycle control;
    both are idempotent.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after start)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL of the Prometheus endpoint."""
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        handler = type("_BoundHandler", (_Handler,), {"registry": self.registry})
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
