"""Live metrics scrape endpoint (stdlib ``http.server``).

Serves the process-wide :data:`~repro.obs.metrics.REGISTRY` (or any
registry handed in) while a run executes:

* ``GET /metrics``      — Prometheus text exposition (format 0.0.4);
* ``GET /metrics.json`` — the JSON snapshot (``repro-metrics`` v1).

The server runs a :class:`~http.server.ThreadingHTTPServer` on a daemon
thread, so scrapes never block the engines — each request takes the
registry lock only long enough to copy a snapshot. Activated by
``repro query|stream --metrics-port N`` (port 0 picks a free port;
:attr:`MetricsServer.port` reports the bound one).

The route table and the disconnect-tolerant response writer are exposed
as :func:`metrics_payload` and :func:`send_payload` so other stdlib HTTP
hosts (the ``repro serve`` service) can mount the same ``/metrics``
endpoints on their own server instead of running a second one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer", "metrics_payload", "send_payload"]

PROMETHEUS_CTYPE = "text/plain; version=0.0.4; charset=utf-8"


def metrics_payload(
    registry: MetricsRegistry, path: str
) -> Optional[Tuple[str, bytes]]:
    """Resolve a metrics route to ``(content_type, body)``.

    Returns ``None`` for paths the metrics endpoint does not own, so a
    host server can fall through to its own routes.
    """
    if path in ("/metrics", "/"):
        return PROMETHEUS_CTYPE, registry.to_prometheus().encode("utf-8")
    if path == "/metrics.json":
        body = json.dumps(registry.snapshot(), indent=2) + "\n"
        return "application/json", body.encode("utf-8")
    return None


def send_payload(
    handler: BaseHTTPRequestHandler,
    status: int,
    ctype: str,
    body: bytes,
    head_only: bool = False,
) -> bool:
    """Write one complete HTTP response, tolerating client disconnects.

    Scrapers and load balancers routinely drop the connection mid-write
    (timeouts, shutdown races); with a plain handler that surfaces as an
    unhandled ``BrokenPipeError``/``ConnectionResetError`` traceback per
    request on a long-running host. Returns ``False`` when the client
    went away, ``True`` on a complete write.
    """
    try:
        handler.send_response(status)
        handler.send_header("Content-Type", ctype)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        if not head_only:
            handler.wfile.write(body)
    except (BrokenPipeError, ConnectionResetError, TimeoutError):
        handler.close_connection = True
        return False
    return True


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set on the per-server subclass

    def _respond(self, head_only: bool) -> None:
        path = self.path.split("?", 1)[0]
        payload = metrics_payload(self.registry, path)
        if payload is None:
            body = b"unknown path (try /metrics)\n"
            send_payload(self, 404, "text/plain", body, head_only)
            return
        ctype, body = payload
        send_payload(self, 200, ctype, body, head_only)

    def do_GET(self):  # noqa: N802 (http.server API)
        self._respond(head_only=False)

    def do_HEAD(self):  # noqa: N802 (http.server API)
        self._respond(head_only=True)

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass


class MetricsServer:
    """Background HTTP server exposing one registry's metrics.

    Usage::

        with MetricsServer(REGISTRY, port=9102) as server:
            print("scrape at", server.url)
            ...  # run the workload

    ``start``/``stop`` are also available for explicit lifecycle control;
    both are idempotent.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._bound_port: Optional[int] = None
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0``; survives :meth:`stop`).

        Before the first :meth:`start` this is the requested port; after
        a start it is the actually bound one, and it stays valid after
        ``stop()`` so late log lines / test assertions don't read a stale
        ``0`` back.
        """
        if self._server is not None:
            return self._server.server_address[1]
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def url(self) -> str:
        """The scrape URL of the Prometheus endpoint."""
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        handler = type("_BoundHandler", (_Handler,), {"registry": self.registry})
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._bound_port = self._server.server_address[1]
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
