"""Run-trace observability: tracing, live metrics, sinks, correlation.

Public surface:

* :class:`Tracer` / :data:`NULL_TRACER` — span emission (run → phase →
  round → engine) with the one-attribute-check-when-off contract;
* :data:`REGISTRY` / :class:`MetricsRegistry` — live process-wide
  counters/gauges/histograms with Prometheus + JSON exporters, same
  disabled-by-default contract;
* :class:`MetricsServer` — stdlib HTTP ``/metrics`` scrape endpoint;
* :class:`MemorySink` / :class:`JsonlSink` / :class:`ProgressSink` —
  pluggable trace destinations;
* :func:`read_trace` / :func:`validate_trace` — the JSONL format;
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome/Perfetto
  trace-event export;
* :func:`correlate` / :func:`summarize` — join trace wall-clock against
  :class:`~repro.sim.timing.AcceleratorTimingModel` cycles;
* :data:`REQUEST_LOG` / :class:`RequestContext` — request-scoped tracing
  for ``repro serve`` (access log, slow-request ring, stage histograms);
* :func:`analyze_requests` / :func:`render_request_table` — the
  ``repro trace requests`` tail-latency attribution analyzer.

(The benchmark regression gate lives in :mod:`repro.obs.bench_gate`; it
is not re-exported here because it imports the ``benchmarks/`` scripts.)
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.correlate import (
    PhaseCorrelation,
    analyze_requests,
    correlate,
    correlate_run,
    read_access_log,
    rebuild_run_metrics,
    render_correlation,
    render_request_table,
    summarize,
)
from repro.obs.reqtrace import (
    ACCESS_LOG_FORMAT,
    ACCESS_LOG_VERSION,
    REQUEST_LOG,
    RequestContext,
    RequestLog,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)
from repro.obs.scrape import MetricsServer, metrics_payload, send_payload
from repro.obs.sinks import (
    TRACE_FORMAT,
    TRACE_VERSION,
    JsonlSink,
    MemorySink,
    ProgressSink,
    Sink,
)
from repro.obs.trace_file import (
    TraceData,
    TraceFormatError,
    read_trace,
    validate_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    SPAN_KINDS,
    WORK_FIELDS,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    phase_attrs,
    work_attrs,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "metrics_payload",
    "send_payload",
    "log_buckets",
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "SPAN_KINDS",
    "WORK_FIELDS",
    "work_attrs",
    "phase_attrs",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ProgressSink",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceData",
    "TraceFormatError",
    "read_trace",
    "validate_trace",
    "PhaseCorrelation",
    "correlate",
    "correlate_run",
    "rebuild_run_metrics",
    "render_correlation",
    "summarize",
    "ACCESS_LOG_FORMAT",
    "ACCESS_LOG_VERSION",
    "REQUEST_LOG",
    "RequestContext",
    "RequestLog",
    "analyze_requests",
    "read_access_log",
    "render_request_table",
]
