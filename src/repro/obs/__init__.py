"""Run-trace observability: structured tracing, sinks, and correlation.

Public surface:

* :class:`Tracer` / :data:`NULL_TRACER` — span emission (run → phase →
  round → engine) with the one-attribute-check-when-off contract;
* :class:`MemorySink` / :class:`JsonlSink` / :class:`ProgressSink` —
  pluggable destinations;
* :func:`read_trace` / :func:`validate_trace` — the JSONL format;
* :func:`correlate` / :func:`summarize` — join trace wall-clock against
  :class:`~repro.sim.timing.AcceleratorTimingModel` cycles.
"""

from repro.obs.correlate import (
    PhaseCorrelation,
    correlate,
    correlate_run,
    rebuild_run_metrics,
    render_correlation,
    summarize,
)
from repro.obs.sinks import (
    TRACE_FORMAT,
    TRACE_VERSION,
    JsonlSink,
    MemorySink,
    ProgressSink,
    Sink,
)
from repro.obs.trace_file import (
    TraceData,
    TraceFormatError,
    read_trace,
    validate_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    SPAN_KINDS,
    WORK_FIELDS,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    phase_attrs,
    work_attrs,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "SPAN_KINDS",
    "WORK_FIELDS",
    "work_attrs",
    "phase_attrs",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "ProgressSink",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceData",
    "TraceFormatError",
    "read_trace",
    "validate_trace",
    "PhaseCorrelation",
    "correlate",
    "correlate_run",
    "rebuild_run_metrics",
    "render_correlation",
    "summarize",
]
