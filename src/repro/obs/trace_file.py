"""JSONL trace format: reading and schema validation.

One JSON object per line. The first line is a header::

    {"type": "header", "format": "repro-trace", "version": 1}

Every subsequent line is a ``span`` or ``event`` record (see
``docs/architecture.md`` § Observability for the full field table):

``span``
    ``kind`` ∈ {run, phase, round, engine}, ``name``, integer ``id``,
    ``parent`` (integer id or null), ``t_start``/``t_end``/``dur_s``
    wall-clock seconds (monotonic origin), ``attrs`` object. Round spans
    carry the complete :class:`~repro.core.metrics.RoundWork` vector;
    phase spans carry the phase aggregates (``rounds`` plus the summed
    work vector and the phase extras).

``event``
    ``name``, ``t``, ``parent``, ``attrs``.

``anchor``
    ``epoch_s`` (``time.time`` at tracer construction) and
    ``perf_counter`` (the span clock read at the same instant) — the
    wall-clock anchor that lets offline tools join span timestamps with
    wall-clock sources such as serve access logs. Written immediately
    after the header by the JSONL sink.

Spans are written when they *end*, so children precede parents on disk;
:func:`read_trace` reassembles the tree from the ``parent`` pointers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.sinks import TRACE_FORMAT, TRACE_VERSION
from repro.obs.tracer import SPAN_KINDS, WORK_FIELDS

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised by :func:`read_trace` on a malformed trace file."""


@dataclass
class TraceData:
    """Parsed trace: raw records plus parent→children index."""

    header: Dict[str, object]
    spans: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    #: Wall-clock anchor record ({"epoch_s", "perf_counter"}), or None
    #: for traces written before the anchor existed.
    anchor: Optional[Dict[str, object]] = None

    def by_id(self) -> Dict[int, Dict[str, object]]:
        return {s["id"]: s for s in self.spans}

    def children_of(self, span_id: Optional[int], kind: Optional[str] = None):
        """Children of ``span_id`` (or roots for ``None``), start-ordered."""
        out = [
            s
            for s in self.spans
            if s["parent"] == span_id and (kind is None or s["kind"] == kind)
        ]
        return sorted(out, key=lambda s: s["t_start"])

    def runs(self) -> List[Dict[str, object]]:
        """Top-level run spans in start order."""
        return sorted(
            (s for s in self.spans if s["kind"] == "run"),
            key=lambda s: s["t_start"],
        )

    @classmethod
    def from_spans(cls, spans, events=()) -> "TraceData":
        """Build a trace from finished in-memory spans (a MemorySink)."""
        data = cls({"type": "header", "format": TRACE_FORMAT, "version": TRACE_VERSION})
        data.spans = [s.to_record() for s in spans]
        data.events = [e.to_record() for e in events]
        return data


def read_trace(path: PathLike) -> TraceData:
    """Parse a JSONL trace, raising :class:`TraceFormatError` on damage."""
    errors = validate_trace(path, max_errors=1)
    if errors:
        raise TraceFormatError(errors[0])
    header: Dict[str, object] = {}
    data = TraceData(header)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record["type"] == "header":
                data.header.update(record)
            elif record["type"] == "anchor":
                data.anchor = record
            elif record["type"] == "span":
                data.spans.append(record)
            else:
                data.events.append(record)
    return data


# ----------------------------------------------------------------------
# Validation (the CI smoke gate: `repro trace validate`)
# ----------------------------------------------------------------------
def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_span(record: dict, where: str) -> List[str]:
    errors = []
    if record.get("kind") not in SPAN_KINDS:
        errors.append(f"{where}: span kind {record.get('kind')!r} not in {SPAN_KINDS}")
    if not isinstance(record.get("name"), str):
        errors.append(f"{where}: span name must be a string")
    if not isinstance(record.get("id"), int):
        errors.append(f"{where}: span id must be an integer")
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, int):
        errors.append(f"{where}: span parent must be an integer id or null")
    for key in ("t_start", "t_end", "dur_s"):
        if not _is_num(record.get(key)):
            errors.append(f"{where}: span {key} must be a number")
    if (
        _is_num(record.get("t_start"))
        and _is_num(record.get("t_end"))
        and record["t_end"] < record["t_start"]
    ):
        errors.append(f"{where}: span ends before it starts")
    attrs = record.get("attrs")
    if not isinstance(attrs, dict):
        errors.append(f"{where}: span attrs must be an object")
        return errors
    if record.get("kind") == "round":
        for name in WORK_FIELDS:
            if not isinstance(attrs.get(name), int):
                errors.append(f"{where}: round span missing integer attr {name!r}")
    if record.get("kind") == "phase":
        if not isinstance(attrs.get("rounds"), int):
            errors.append(f"{where}: phase span missing integer attr 'rounds'")
        for name in WORK_FIELDS:
            if not isinstance(attrs.get(name), int):
                errors.append(f"{where}: phase span missing integer attr {name!r}")
    return errors


def _validate_event(record: dict, where: str) -> List[str]:
    errors = []
    if not isinstance(record.get("name"), str):
        errors.append(f"{where}: event name must be a string")
    if not _is_num(record.get("t")):
        errors.append(f"{where}: event t must be a number")
    if not isinstance(record.get("attrs"), dict):
        errors.append(f"{where}: event attrs must be an object")
    return errors


def validate_trace(path: PathLike, max_errors: int = 50) -> List[str]:
    """Check a JSONL trace against the documented schema.

    Returns a list of human-readable problems (empty = valid). Validation
    is structural — field presence and types — plus the cross-record check
    that every ``parent`` pointer resolves to a span that appears in the
    file.
    """
    errors: List[str] = []
    span_ids = set()
    parent_refs: List[tuple] = []
    saw_header = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if len(errors) >= max_errors:
                return errors
            line = line.strip()
            if not line:
                continue
            where = f"line {lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: not valid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                errors.append(f"{where}: record must be a JSON object")
                continue
            kind = record.get("type")
            if lineno == 1:
                if kind != "header":
                    errors.append("line 1: first record must be the trace header")
                elif (
                    record.get("format") != TRACE_FORMAT
                    or record.get("version") != TRACE_VERSION
                ):
                    errors.append(
                        f"line 1: expected format={TRACE_FORMAT!r} "
                        f"version={TRACE_VERSION}, got format="
                        f"{record.get('format')!r} version={record.get('version')!r}"
                    )
                saw_header = kind == "header"
                continue
            if kind == "span":
                errors.extend(_validate_span(record, where))
                if isinstance(record.get("id"), int):
                    span_ids.add(record["id"])
                if isinstance(record.get("parent"), int):
                    parent_refs.append((lineno, record["parent"]))
            elif kind == "event":
                errors.extend(_validate_event(record, where))
                if isinstance(record.get("parent"), int):
                    parent_refs.append((lineno, record["parent"]))
            elif kind == "anchor":
                for key in ("epoch_s", "perf_counter"):
                    if not _is_num(record.get(key)):
                        errors.append(f"{where}: anchor {key} must be a number")
            elif kind == "header":
                errors.append(f"{where}: duplicate header record")
            else:
                errors.append(f"{where}: unknown record type {kind!r}")
    if not saw_header:
        errors.insert(0, "trace has no header line")
    for lineno, parent in parent_refs:
        if len(errors) >= max_errors:
            break
        if parent not in span_ids:
            errors.append(f"line {lineno}: parent span {parent} not found in trace")
    return errors
