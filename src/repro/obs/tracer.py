"""Structured run tracing: hierarchical spans over the engine substrates.

A :class:`Tracer` emits a tree of spans — ``run`` → ``phase`` → ``round``
(→ ``engine`` on the sharded backend) — carrying the exact per-round work
vectors the engines already record (:class:`~repro.core.metrics.RoundWork`)
plus wall-clock timings and queue/NoC occupancy snapshots. Spans and point
events are delivered to pluggable sinks (:mod:`repro.obs.sinks`); the
JSONL sink's on-disk format is documented in :mod:`repro.obs.trace_file`.

**Overhead contract.** Tracing is off by default: every engine holds the
shared :data:`NULL_TRACER` singleton, and the hot event loops guard all
instrumentation behind a single ``tracer.enabled`` attribute check per
scheduler round. With tracing off no span objects, clock reads, or
occupancy samples happen — the benchmarked substrates stay within noise of
the untraced build (``benchmarks/bench_trace_overhead.py``).

The tracer keeps one span stack, so nesting is implicit: a round span
started inside an open phase span becomes its child. The engine loops use
the explicit :meth:`Tracer.start`/:meth:`Tracer.end` pair under their
``enabled`` guard; orchestration code (one call per phase) uses the
context-manager helpers :meth:`Tracer.span`, :meth:`Tracer.phase`, and
:meth:`Tracer.round`.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

#: RoundWork fields copied onto every round span (and, summed, onto phase
#: spans). Order matters only for display; names match the dataclass.
WORK_FIELDS = (
    "events_processed",
    "events_generated",
    "queue_inserts",
    "coalesce_ops",
    "vertex_reads",
    "vertex_writes",
    "edges_read",
    "vertex_lines",
    "edge_lines",
    "dram_pages",
    "spill_bytes",
)

#: Span kinds a conforming trace may contain.
SPAN_KINDS = ("run", "phase", "round", "engine")


def work_attrs(work) -> Dict[str, int]:
    """The full work vector of a :class:`~repro.core.metrics.RoundWork`."""
    return {name: getattr(work, name) for name in WORK_FIELDS}


def phase_attrs(stats) -> Dict[str, object]:
    """Aggregate attributes of a finished :class:`PhaseStats`.

    These are the exact per-phase totals of ``RunMetrics`` — the trace's
    phase spans are guaranteed to match the in-process metrics because
    they are computed from the same object.
    """
    attrs: Dict[str, object] = {"rounds": stats.num_rounds}
    attrs.update(work_attrs(stats.total))
    attrs["vertices_reset"] = stats.vertices_reset
    attrs["deletes_discarded"] = stats.deletes_discarded
    attrs["request_events"] = stats.request_events
    attrs["noc_events_local"] = stats.noc_events_local
    attrs["noc_events_remote"] = stats.noc_events_remote
    attrs["noc_flits"] = stats.noc_flits
    attrs["noc_cycles"] = stats.noc_cycles
    return attrs


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("kind", "name", "span_id", "parent_id", "t_start", "t_end", "attrs")

    def __init__(
        self,
        kind: str,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        t_start: float,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.kind = kind
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}

    @property
    def dur_s(self) -> float:
        """Wall-clock duration in seconds (0.0 while still open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    def to_record(self) -> Dict[str, object]:
        """The JSONL record of a *finished* span (see ``trace_file``)."""
        return {
            "type": "span",
            "kind": self.kind,
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "dur_s": self.dur_s,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.kind}:{self.name} #{self.span_id})"


class TraceEvent:
    """A point event (no duration) — e.g. a host DMA transfer."""

    __slots__ = ("name", "t", "parent_id", "attrs")

    def __init__(
        self,
        name: str,
        t: float,
        parent_id: Optional[int],
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.t = t
        self.parent_id = parent_id
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}

    def to_record(self) -> Dict[str, object]:
        """The JSONL record of this event (see ``trace_file``)."""
        return {
            "type": "event",
            "name": self.name,
            "t": self.t,
            "parent": self.parent_id,
            "attrs": self.attrs,
        }


class Tracer:
    """Span emitter with an implicit nesting stack and pluggable sinks."""

    enabled = True

    def __init__(self, sinks: Iterable = (), clock=time.perf_counter):
        self.sinks = list(sinks)
        self.clock = clock
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self._links: List[Dict[str, object]] = []
        #: Wall-clock anchor: ``epoch_s`` (time.time) and the span clock
        #: read at the same instant. Offline tools use the pair to align
        #: perf_counter span timestamps with wall-clock sources (serve
        #: access logs).
        self.epoch_s = time.time()
        self.clock_origin = self.clock()
        for sink in self.sinks:
            sink.on_anchor(self.epoch_s, self.clock_origin)

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def start(self, kind: str, name: str = "", **attrs) -> Span:
        """Open a span nested under the current one.

        Root spans (no open parent) absorb any active :meth:`linked`
        attributes, so e.g. an engine run span started while serving a
        request carries that request's id.
        """
        parent = self._stack[-1].span_id if self._stack else None
        if parent is None and self._links:
            attrs = self._merge_links(attrs)
        span = Span(kind, name or kind, next(self._ids), parent, self.clock(), attrs)
        self._stack.append(span)
        for sink in self.sinks:
            sink.on_span_start(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close ``span`` (and any forgotten children), emit to sinks."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.t_end = self.clock()  # orphaned child: close it too
            for sink in self.sinks:
                sink.on_span_end(top)
        span.t_end = self.clock()
        span.attrs.update(attrs)
        for sink in self.sinks:
            sink.on_span_end(span)
        return span

    def emit(
        self,
        kind: str,
        name: str,
        t_start: float,
        t_end: float,
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Emit an already-timed span without touching the stack.

        Used for concurrent work (per-engine shard tasks) whose start/end
        times were captured on worker threads.
        """
        parent_id = parent.span_id if parent is not None else (
            self._stack[-1].span_id if self._stack else None
        )
        span = Span(kind, name, next(self._ids), parent_id, t_start, attrs)
        span.t_end = t_end
        for sink in self.sinks:
            sink.on_span_end(span)
        return span

    def event(self, name: str, **attrs) -> TraceEvent:
        """Emit a point event under the current span.

        Root-level events (no open span) absorb :meth:`linked` attributes
        the same way root spans do.
        """
        parent = self._stack[-1].span_id if self._stack else None
        if parent is None and self._links:
            attrs = self._merge_links(attrs)
        event = TraceEvent(name, self.clock(), parent, attrs)
        for sink in self.sinks:
            sink.on_event(event)
        return event

    def _merge_links(self, attrs: Dict[str, object]) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for link in self._links:
            merged.update(link)
        merged.update(attrs)
        return merged

    @contextmanager
    def linked(self, **attrs):
        """Attach ``attrs`` to every *root* span/event started inside.

        This is the span-link mechanism request tracing uses: the serve
        writer wraps each applied op in ``tracer.linked(request_id=...)``
        so the engine run spans it triggers carry the originating request
        id without threading a context through every engine layer.
        """
        self._links.append(dict(attrs))
        try:
            yield
        finally:
            self._links.pop()

    # ------------------------------------------------------------------
    # Context-manager helpers (orchestration-layer use)
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, kind: str, name: str = "", **attrs):
        """``with tracer.span(...) as s:`` — attrs added to ``s.attrs``
        inside the body are included in the emitted record."""
        span = self.start(kind, name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    @contextmanager
    def phase(self, stats):
        """Span around one execution phase; aggregates attached at exit."""
        span = self.start("phase", stats.name)
        try:
            yield span
        finally:
            self.end(span, **phase_attrs(stats))

    @contextmanager
    def round(self, work, queue=None):
        """Span around one orchestration-level round (seeding etc.).

        The engine event loops do *not* use this helper — they emit round
        spans with the explicit start/end pair under their ``enabled``
        guard so the disabled path stays a single attribute check.
        """
        attrs = {}
        if queue is not None:
            attrs["occupancy_start"] = queue.occupancy()
        span = self.start("round", "round", **attrs)
        try:
            yield span
        finally:
            end_attrs = work_attrs(work)
            if queue is not None:
                end_attrs["occupancy_end"] = queue.occupancy()
            self.end(span, **end_attrs)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush every sink (a long-running host's pre-analysis sync)."""
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Close any open spans (innermost first), then the sinks."""
        while self._stack:
            self.end(self._stack[-1])
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> bool:
        # Runs on exceptions too: open spans are ended and every sink is
        # closed, so a run that dies mid-phase still leaves a flushed
        # (partial but parseable) trace on disk.
        self.close()
        return False


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullContext()


class NullTracer:
    """Do-nothing tracer; the default on every engine.

    Hot loops check :attr:`enabled` once per round and skip all
    instrumentation; orchestration context managers return a shared no-op
    context, so the traced and untraced code paths are the same shape.
    """

    enabled = False
    sinks = ()

    def current(self):
        return None

    def start(self, *args, **kwargs):
        return None

    def end(self, *args, **kwargs):
        return None

    def emit(self, *args, **kwargs):
        return None

    def event(self, *args, **kwargs):
        return None

    def span(self, *args, **kwargs):
        return _NULL_CTX

    def phase(self, *args, **kwargs):
        return _NULL_CTX

    def round(self, *args, **kwargs):
        return _NULL_CTX

    def linked(self, *args, **kwargs):
        return _NULL_CTX

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Shared no-op tracer — the default wherever a tracer is accepted.
NULL_TRACER = NullTracer()
