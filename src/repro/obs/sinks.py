"""Trace sinks: where spans and events go.

* :class:`MemorySink` — keeps finished spans/events in lists (tests, the
  in-process correlator).
* :class:`JsonlSink` — appends one JSON object per record to a file, with
  a header line identifying the format (:mod:`repro.obs.trace_file`).
* :class:`ProgressSink` — human-readable live progress on a text stream
  (stderr by default): run/phase boundaries always, per-round ticks only
  on a TTY (carriage-return updates, no scrollback spam).
"""

from __future__ import annotations

import json
import sys
from typing import IO, List, Optional, Union

from repro.obs.tracer import Span, TraceEvent

#: Format marker written as the first line of every JSONL trace.
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class Sink:
    """Base sink: all callbacks optional."""

    def on_anchor(self, epoch_s: float, clock_origin: float) -> None:
        """Wall-clock anchor, delivered once at tracer construction."""
        pass

    def on_span_start(self, span: Span) -> None:
        pass

    def on_span_end(self, span: Span) -> None:
        pass

    def on_event(self, event: TraceEvent) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Collects finished spans and events in memory (end order)."""

    def __init__(self):
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.anchor: Optional[dict] = None

    def on_anchor(self, epoch_s: float, clock_origin: float) -> None:
        self.anchor = {"epoch_s": epoch_s, "perf_counter": clock_origin}

    def on_span_end(self, span: Span) -> None:
        self.spans.append(span)

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def find(self, kind: str) -> List[Span]:
        """Finished spans of one kind, in end order."""
        return [s for s in self.spans if s.kind == kind]


class JsonlSink(Sink):
    """Writes one JSON record per line; spans are written when they end.

    Children therefore precede their parents in the file — readers must
    reassemble the tree from the ``parent`` pointers, which
    :func:`repro.obs.trace_file.read_trace` does.
    """

    def __init__(self, path_or_handle: Union[str, IO[str]]):
        if hasattr(path_or_handle, "write"):
            self._handle = path_or_handle
            self._owns = False
        else:
            self._handle = open(path_or_handle, "w", encoding="utf-8")
            self._owns = True
        self._write(
            {"type": "header", "format": TRACE_FORMAT, "version": TRACE_VERSION}
        )

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")

    def on_anchor(self, epoch_s: float, clock_origin: float) -> None:
        # Written right after the header line: the wall-clock anchor that
        # lets offline joins align span clocks with epoch timestamps.
        self._write(
            {"type": "anchor", "epoch_s": epoch_s, "perf_counter": clock_origin}
        )

    def on_span_end(self, span: Span) -> None:
        self._write(span.to_record())

    def on_event(self, event: TraceEvent) -> None:
        self._write(event.to_record())

    def flush(self) -> None:
        if not getattr(self._handle, "closed", False):
            self._handle.flush()

    def close(self) -> None:
        if getattr(self._handle, "closed", False):
            return
        self._handle.flush()
        if self._owns:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class ProgressSink(Sink):
    """Live human-readable progress (the ``--progress`` CLI flag).

    On a TTY, rounds tick on one carriage-return-updated line. On a
    non-TTY stream (piped logs, CI) the same information is throttled to
    one plain line every ``fallback_every`` rounds, so long phases still
    show forward motion without flooding the log.
    """

    def __init__(self, stream: Optional[IO[str]] = None, fallback_every: int = 50):
        if fallback_every < 1:
            raise ValueError("fallback_every must be >= 1")
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.fallback_every = fallback_every
        self._round_count = 0
        self._dirty_line = False

    def _println(self, text: str) -> None:
        if self._dirty_line:
            self.stream.write("\n")
            self._dirty_line = False
        self.stream.write(text + "\n")
        self.stream.flush()

    def on_span_start(self, span: Span) -> None:
        if span.kind == "run":
            self._println(f"[trace] run {span.name} started")
        elif span.kind == "phase":
            self._round_count = 0
            self._println(f"[trace]  phase {span.name}")

    def on_span_end(self, span: Span) -> None:
        if span.kind == "round":
            self._round_count += 1
            if self._tty:
                self.stream.write(
                    f"\r[trace]   round {self._round_count}: "
                    f"{span.attrs.get('events_processed', 0):,} events "
                    f"({span.dur_s * 1e3:.2f} ms)   "
                )
                self.stream.flush()
                self._dirty_line = True
            elif self._round_count % self.fallback_every == 0:
                self._println(
                    f"[trace]   round {self._round_count}: "
                    f"{span.attrs.get('events_processed', 0):,} events "
                    f"({span.dur_s * 1e3:.2f} ms)"
                )
        elif span.kind == "phase":
            self._println(
                f"[trace]  phase {span.name} done: "
                f"{span.attrs.get('rounds', 0)} rounds, "
                f"{span.attrs.get('events_processed', 0):,} events, "
                f"{span.dur_s * 1e3:.1f} ms"
            )
        elif span.kind == "run":
            self._println(f"[trace] run {span.name} done in {span.dur_s:.3f} s")

    def on_event(self, event: TraceEvent) -> None:
        if event.name == "transfer":
            self._println(
                f"[trace] transfer {event.attrs.get('direction', '?')}: "
                f"{event.attrs.get('bytes', 0):,} B"
            )

    def close(self) -> None:
        if self._dirty_line:
            self.stream.write("\n")
            self._dirty_line = False
        self.stream.flush()
