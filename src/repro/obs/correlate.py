"""Post-run correlation: trace wall-clock vs. modeled accelerator cycles.

A trace's round spans carry the complete per-round work vectors, so a
:class:`~repro.core.metrics.RunMetrics` can be rebuilt *offline* from the
JSONL file alone and re-priced by
:class:`~repro.sim.timing.AcceleratorTimingModel`. Joining the modeled
cycles with the measured wall-clock of each phase span yields the
modeled-cycles-per-wall-clock-second rate — the number that says how many
accelerator cycles one second of this Python simulation stands for, per
phase. ``repro trace summarize`` renders the result as a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import AcceleratorConfig
from repro.core.metrics import RunMetrics
from repro.obs.trace_file import PathLike, TraceData, TraceFormatError, read_trace
from repro.obs.tracer import WORK_FIELDS
from repro.sim.timing import AcceleratorTimingModel

#: Phase extras copied back onto the rebuilt PhaseStats.
_PHASE_EXTRAS = (
    "vertices_reset",
    "deletes_discarded",
    "request_events",
    "noc_events_local",
    "noc_events_remote",
    "noc_flits",
    "noc_cycles",
)


@dataclass
class PhaseCorrelation:
    """One phase's joined trace/model row."""

    run_name: str
    run_index: int
    phase_index: int
    name: str
    rounds: int
    events_processed: int
    events_generated: int
    wall_s: float
    modeled_cycles: float
    modeled_us: float

    @property
    def cycles_per_wall_s(self) -> float:
        """Modeled accelerator cycles represented per wall-clock second."""
        return self.modeled_cycles / self.wall_s if self.wall_s > 0 else 0.0


def rebuild_run_metrics(trace: TraceData, run: Dict[str, object]) -> RunMetrics:
    """Reconstruct a run's :class:`RunMetrics` from its trace spans.

    Raises :class:`TraceFormatError` when a phase span's aggregate attrs
    disagree with the sum of its round spans — the trace is internally
    inconsistent and any derived numbers would be wrong.
    """
    metrics = RunMetrics()
    for phase_record in trace.children_of(run["id"], "phase"):
        attrs = phase_record["attrs"]
        stats = metrics.phase(phase_record["name"])
        for name in _PHASE_EXTRAS:
            setattr(stats, name, attrs.get(name, 0))
        rounds = trace.children_of(phase_record["id"], "round")
        for round_record in rounds:
            work = stats.new_round()
            for name in WORK_FIELDS:
                setattr(work, name, round_record["attrs"][name])
        if stats.num_rounds != attrs.get("rounds"):
            raise TraceFormatError(
                f"phase {phase_record['name']!r} (span {phase_record['id']}) "
                f"declares {attrs.get('rounds')} rounds but the trace holds "
                f"{stats.num_rounds} round spans"
            )
        total = stats.total
        for name in WORK_FIELDS:
            if getattr(total, name) != attrs.get(name):
                raise TraceFormatError(
                    f"phase {phase_record['name']!r} (span "
                    f"{phase_record['id']}): aggregate {name}="
                    f"{attrs.get(name)} != sum of round spans "
                    f"{getattr(total, name)}"
                )
    return metrics


def correlate_run(
    trace: TraceData,
    run: Dict[str, object],
    run_index: int = 0,
    config: Optional[AcceleratorConfig] = None,
) -> List[PhaseCorrelation]:
    """Join one run's phase wall-clock with re-modeled cycle estimates."""
    metrics = rebuild_run_metrics(trace, run)
    model = AcceleratorTimingModel(config)
    stream_records = int(run["attrs"].get("stream_records", 0))
    report = model.run_time(metrics, stream_records=stream_records)
    rows: List[PhaseCorrelation] = []
    phases = trace.children_of(run["id"], "phase")
    for phase_index, (record, timing) in enumerate(zip(phases, report.phases)):
        attrs = record["attrs"]
        rows.append(
            PhaseCorrelation(
                run_name=run["name"],
                run_index=run_index,
                phase_index=phase_index,
                name=record["name"],
                rounds=int(attrs["rounds"]),
                events_processed=int(attrs["events_processed"]),
                events_generated=int(attrs["events_generated"]),
                wall_s=float(record["dur_s"]),
                modeled_cycles=float(timing.total_cycles),
                modeled_us=float(
                    timing.total_cycles / (report.clock_ghz * 1e9) * 1e6
                ),
            )
        )
    return rows


def correlate(
    trace: TraceData, config: Optional[AcceleratorConfig] = None
) -> List[PhaseCorrelation]:
    """Correlation rows for every run span of a trace, in start order."""
    rows: List[PhaseCorrelation] = []
    for run_index, run in enumerate(trace.runs()):
        rows.extend(correlate_run(trace, run, run_index, config))
    return rows


def render_correlation(rows: List[PhaseCorrelation]) -> str:
    """The per-phase table (`repro trace summarize` output)."""
    if not rows:
        return "(empty trace: no run spans)"
    header = (
        f"{'run':>12} {'phase':>20} {'rounds':>7} {'events':>12} "
        f"{'wall ms':>10} {'model cycles':>14} {'model us':>10} {'Mcyc/s':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        run_label = f"{row.run_index}:{row.run_name}"
        lines.append(
            f"{run_label:>12} {row.name:>20} {row.rounds:>7} "
            f"{row.events_processed:>12,} {row.wall_s * 1e3:>10.2f} "
            f"{row.modeled_cycles:>14,.0f} {row.modeled_us:>10.1f} "
            f"{row.cycles_per_wall_s / 1e6:>10.2f}"
        )
    total_wall = sum(r.wall_s for r in rows)
    total_cycles = sum(r.modeled_cycles for r in rows)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':>12} {'':>20} {sum(r.rounds for r in rows):>7} "
        f"{sum(r.events_processed for r in rows):>12,} "
        f"{total_wall * 1e3:>10.2f} {total_cycles:>14,.0f} {'':>10} "
        f"{(total_cycles / total_wall if total_wall > 0 else 0.0) / 1e6:>10.2f}"
    )
    return "\n".join(lines)


def summarize(path: PathLike, config: Optional[AcceleratorConfig] = None) -> str:
    """Read a saved JSONL trace and render the per-phase table."""
    trace = read_trace(path)
    return render_correlation(correlate(trace, config))
