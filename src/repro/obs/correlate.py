"""Post-run correlation: trace wall-clock vs. modeled accelerator cycles.

A trace's round spans carry the complete per-round work vectors, so a
:class:`~repro.core.metrics.RunMetrics` can be rebuilt *offline* from the
JSONL file alone and re-priced by
:class:`~repro.sim.timing.AcceleratorTimingModel`. Joining the modeled
cycles with the measured wall-clock of each phase span yields the
modeled-cycles-per-wall-clock-second rate — the number that says how many
accelerator cycles one second of this Python simulation stands for, per
phase. ``repro trace summarize`` renders the result as a table.

The second half of this module is the serve-side analyzer behind
``repro trace requests``: it reads a JSONL access log written by
:data:`repro.obs.reqtrace.REQUEST_LOG`, validates every record's schema
and stage monotonicity, computes p50/p95/p99 latency per route and per
stage, and (when given an engine trace) joins request ids against the
``request_id`` span links to attribute engine wall time back to the
requests that caused it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import AcceleratorConfig
from repro.core.metrics import RunMetrics
from repro.obs.reqtrace import ACCESS_LOG_FORMAT, ACCESS_LOG_VERSION
from repro.obs.trace_file import PathLike, TraceData, TraceFormatError, read_trace
from repro.obs.tracer import WORK_FIELDS
from repro.sim.timing import AcceleratorTimingModel

#: Phase extras copied back onto the rebuilt PhaseStats.
_PHASE_EXTRAS = (
    "vertices_reset",
    "deletes_discarded",
    "request_events",
    "noc_events_local",
    "noc_events_remote",
    "noc_flits",
    "noc_cycles",
)


@dataclass
class PhaseCorrelation:
    """One phase's joined trace/model row."""

    run_name: str
    run_index: int
    phase_index: int
    name: str
    rounds: int
    events_processed: int
    events_generated: int
    wall_s: float
    modeled_cycles: float
    modeled_us: float

    @property
    def cycles_per_wall_s(self) -> float:
        """Modeled accelerator cycles represented per wall-clock second."""
        return self.modeled_cycles / self.wall_s if self.wall_s > 0 else 0.0


def rebuild_run_metrics(trace: TraceData, run: Dict[str, object]) -> RunMetrics:
    """Reconstruct a run's :class:`RunMetrics` from its trace spans.

    Raises :class:`TraceFormatError` when a phase span's aggregate attrs
    disagree with the sum of its round spans — the trace is internally
    inconsistent and any derived numbers would be wrong.
    """
    metrics = RunMetrics()
    for phase_record in trace.children_of(run["id"], "phase"):
        attrs = phase_record["attrs"]
        stats = metrics.phase(phase_record["name"])
        for name in _PHASE_EXTRAS:
            setattr(stats, name, attrs.get(name, 0))
        rounds = trace.children_of(phase_record["id"], "round")
        for round_record in rounds:
            work = stats.new_round()
            for name in WORK_FIELDS:
                setattr(work, name, round_record["attrs"][name])
        if stats.num_rounds != attrs.get("rounds"):
            raise TraceFormatError(
                f"phase {phase_record['name']!r} (span {phase_record['id']}) "
                f"declares {attrs.get('rounds')} rounds but the trace holds "
                f"{stats.num_rounds} round spans"
            )
        total = stats.total
        for name in WORK_FIELDS:
            if getattr(total, name) != attrs.get(name):
                raise TraceFormatError(
                    f"phase {phase_record['name']!r} (span "
                    f"{phase_record['id']}): aggregate {name}="
                    f"{attrs.get(name)} != sum of round spans "
                    f"{getattr(total, name)}"
                )
    return metrics


def correlate_run(
    trace: TraceData,
    run: Dict[str, object],
    run_index: int = 0,
    config: Optional[AcceleratorConfig] = None,
) -> List[PhaseCorrelation]:
    """Join one run's phase wall-clock with re-modeled cycle estimates."""
    metrics = rebuild_run_metrics(trace, run)
    model = AcceleratorTimingModel(config)
    stream_records = int(run["attrs"].get("stream_records", 0))
    report = model.run_time(metrics, stream_records=stream_records)
    rows: List[PhaseCorrelation] = []
    phases = trace.children_of(run["id"], "phase")
    for phase_index, (record, timing) in enumerate(zip(phases, report.phases)):
        attrs = record["attrs"]
        rows.append(
            PhaseCorrelation(
                run_name=run["name"],
                run_index=run_index,
                phase_index=phase_index,
                name=record["name"],
                rounds=int(attrs["rounds"]),
                events_processed=int(attrs["events_processed"]),
                events_generated=int(attrs["events_generated"]),
                wall_s=float(record["dur_s"]),
                modeled_cycles=float(timing.total_cycles),
                modeled_us=float(
                    timing.total_cycles / (report.clock_ghz * 1e9) * 1e6
                ),
            )
        )
    return rows


def correlate(
    trace: TraceData, config: Optional[AcceleratorConfig] = None
) -> List[PhaseCorrelation]:
    """Correlation rows for every run span of a trace, in start order."""
    rows: List[PhaseCorrelation] = []
    for run_index, run in enumerate(trace.runs()):
        rows.extend(correlate_run(trace, run, run_index, config))
    return rows


def render_correlation(rows: List[PhaseCorrelation]) -> str:
    """The per-phase table (`repro trace summarize` output)."""
    if not rows:
        return "(empty trace: no run spans)"
    header = (
        f"{'run':>12} {'phase':>20} {'rounds':>7} {'events':>12} "
        f"{'wall ms':>10} {'model cycles':>14} {'model us':>10} {'Mcyc/s':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        run_label = f"{row.run_index}:{row.run_name}"
        lines.append(
            f"{run_label:>12} {row.name:>20} {row.rounds:>7} "
            f"{row.events_processed:>12,} {row.wall_s * 1e3:>10.2f} "
            f"{row.modeled_cycles:>14,.0f} {row.modeled_us:>10.1f} "
            f"{row.cycles_per_wall_s / 1e6:>10.2f}"
        )
    total_wall = sum(r.wall_s for r in rows)
    total_cycles = sum(r.modeled_cycles for r in rows)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':>12} {'':>20} {sum(r.rounds for r in rows):>7} "
        f"{sum(r.events_processed for r in rows):>12,} "
        f"{total_wall * 1e3:>10.2f} {total_cycles:>14,.0f} {'':>10} "
        f"{(total_cycles / total_wall if total_wall > 0 else 0.0) / 1e6:>10.2f}"
    )
    return "\n".join(lines)


def summarize(path: PathLike, config: Optional[AcceleratorConfig] = None) -> str:
    """Read a saved JSONL trace and render the per-phase table."""
    trace = read_trace(path)
    return render_correlation(correlate(trace, config))


# ----------------------------------------------------------------------
# Serve access-log analysis (`repro trace requests`)
# ----------------------------------------------------------------------
def _is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def read_access_log(path: PathLike) -> Tuple[dict, List[dict], List[str]]:
    """Parse a serve access log: ``(header, records, errors)``.

    Validation is the schema/monotonicity gate CI relies on: the header
    line, required request fields, non-negative stage durations (a
    negative one means a stage mark ran backwards), and the invariant
    that named stages plus the explicit ``unaccounted`` residual add up
    to the request's wall time.
    """
    header: dict = {}
    records: List[dict] = []
    errors: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = f"line {lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: not valid JSON ({exc.msg})")
                continue
            if lineno == 1:
                if record.get("type") != "header" or (
                    record.get("format") != ACCESS_LOG_FORMAT
                    or record.get("version") != ACCESS_LOG_VERSION
                ):
                    errors.append(
                        f"line 1: expected {ACCESS_LOG_FORMAT!r} v"
                        f"{ACCESS_LOG_VERSION} header, got {record.get('type')!r}"
                    )
                header = record
                continue
            if record.get("type") != "request":
                errors.append(
                    f"{where}: unknown record type {record.get('type')!r}"
                )
                continue
            for key, check in (
                ("id", lambda v: isinstance(v, str)),
                ("route", lambda v: isinstance(v, str)),
                ("status", lambda v: isinstance(v, int)),
                ("dur_s", _is_num),
                ("unaccounted", _is_num),
                ("stages", lambda v: isinstance(v, dict)),
            ):
                if not check(record.get(key)):
                    errors.append(f"{where}: bad or missing field {key!r}")
                    break
            else:
                stage_sum = 0.0
                for stage, dur in record["stages"].items():
                    if not _is_num(dur) or dur < 0:
                        errors.append(
                            f"{where}: stage {stage!r} duration is negative "
                            "or non-numeric (stage marks not monotonic)"
                        )
                        break
                    stage_sum += dur
                else:
                    total = stage_sum + record["unaccounted"]
                    dur_s = record["dur_s"]
                    if dur_s < 0 or record["unaccounted"] < 0:
                        errors.append(f"{where}: negative duration")
                    elif abs(total - dur_s) > 1e-6 + 0.01 * dur_s:
                        errors.append(
                            f"{where}: stages + unaccounted = {total:.6f}s "
                            f"but dur_s = {dur_s:.6f}s"
                        )
                    else:
                        records.append(record)
    if not header:
        errors.insert(0, "access log has no header line")
    return header, records, errors


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return sorted_values[max(0, rank)]


def _latency_row(values: List[float]) -> dict:
    values = sorted(values)
    return {
        "count": len(values),
        "p50_ms": _percentile(values, 0.50) * 1e3,
        "p95_ms": _percentile(values, 0.95) * 1e3,
        "p99_ms": _percentile(values, 0.99) * 1e3,
        "max_ms": (values[-1] if values else 0.0) * 1e3,
        "total_s": sum(values),
    }


def analyze_requests(
    path: PathLike, trace_path: Optional[PathLike] = None
) -> dict:
    """Tail-latency attribution of a serve access log (+ optional trace).

    Returns a JSON-friendly analysis: per-route and per-stage latency
    percentiles, the stage-attribution quality of the slowest decile, and
    — when ``trace_path`` is given — the join of request ids against the
    engine trace's ``request_id`` span links.
    """
    header, records, errors = read_access_log(path)
    by_route: Dict[str, List[float]] = {}
    by_stage: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        by_route.setdefault(record["route"], []).append(record["dur_s"])
        for stage, dur in record["stages"].items():
            by_stage.setdefault((record["route"], stage), []).append(dur)
        if record["unaccounted"] > 0.0:
            by_stage.setdefault((record["route"], "unaccounted"), []).append(
                record["unaccounted"]
            )
    route_total = {route: sum(vals) for route, vals in by_route.items()}
    routes = [
        {"route": route, **_latency_row(vals)}
        for route, vals in sorted(by_route.items())
    ]
    stages = [
        {
            "route": route,
            "stage": stage,
            **_latency_row(vals),
            "share": (
                sum(vals) / route_total[route] if route_total[route] > 0 else 0.0
            ),
        }
        for (route, stage), vals in sorted(by_stage.items())
    ]
    analysis: dict = {
        "header": header,
        "requests": len(records),
        "errors": errors,
        "routes": routes,
        "stages": stages,
        "attribution": _attribution(records),
    }
    if trace_path is not None:
        analysis["engine"] = _join_trace(records, header, trace_path)
    return analysis


def _attribution(records: List[dict]) -> dict:
    """Stage-attribution quality of the slowest decile of requests.

    ``min_share`` is the acceptance number: the worst fraction of a slow
    request's wall time that named stages (everything but
    ``unaccounted``) explain.
    """
    if not records:
        return {"slow_requests": 0, "min_share": 1.0, "mean_share": 1.0}
    ranked = sorted(records, key=lambda r: r["dur_s"], reverse=True)
    slow = ranked[: max(1, len(ranked) // 10)]
    shares = [
        (r["dur_s"] - r["unaccounted"]) / r["dur_s"] if r["dur_s"] > 0 else 1.0
        for r in slow
    ]
    return {
        "slow_requests": len(slow),
        "min_share": min(shares),
        "mean_share": sum(shares) / len(shares),
    }


def _join_trace(
    records: List[dict], header: dict, trace_path: PathLike
) -> dict:
    """Join access-log request ids against trace ``request_id`` links."""
    trace = read_trace(trace_path)
    run_wall: Dict[str, float] = {}
    for span in trace.spans:
        request_id = span.get("attrs", {}).get("request_id")
        if span.get("kind") == "run" and isinstance(request_id, str):
            run_wall[request_id] = run_wall.get(request_id, 0.0) + float(
                span["dur_s"]
            )
    express_ids = {
        event["attrs"]["request_id"]
        for event in trace.events
        if event.get("name") == "express"
        and isinstance(event.get("attrs", {}).get("request_id"), str)
    }
    writes = [r for r in records if r["route"] in ("ingest", "update")]
    matched = [r for r in writes if r["id"] in run_wall or r["id"] in express_ids]
    engine_s = sorted(run_wall[r["id"]] for r in writes if r["id"] in run_wall)
    join: dict = {
        "writes": len(writes),
        "matched": len(matched),
        "coverage": len(matched) / len(writes) if writes else 1.0,
        "run_spans_linked": len(run_wall),
        "express_events_linked": len(express_ids),
        "engine": _latency_row(engine_s),
    }
    # Wall-clock anchors on both files let the two perf_counter timelines
    # be aligned; report the offset so downstream tools can overlay them.
    anchor = trace.anchor
    if anchor and _is_num(header.get("epoch_s")) and _is_num(header.get("perf_counter")):
        join["clock_offset_s"] = (header["epoch_s"] - anchor["epoch_s"]) - (
            header["perf_counter"] - anchor["perf_counter"]
        )
    return join


def render_request_table(analysis: dict) -> str:
    """Human-readable tables for ``repro trace requests``."""
    lines: List[str] = []
    lines.append(
        f"access log: {analysis['requests']} requests, "
        f"{len(analysis['errors'])} schema violation(s)"
    )
    for problem in analysis["errors"]:
        lines.append(f"  ! {problem}")
    if analysis["routes"]:
        header = (
            f"{'route':>10} {'count':>7} {'p50 ms':>9} {'p95 ms':>9} "
            f"{'p99 ms':>9} {'max ms':>9}"
        )
        lines += ["", header, "-" * len(header)]
        for row in analysis["routes"]:
            lines.append(
                f"{row['route']:>10} {row['count']:>7} {row['p50_ms']:>9.2f} "
                f"{row['p95_ms']:>9.2f} {row['p99_ms']:>9.2f} "
                f"{row['max_ms']:>9.2f}"
            )
    if analysis["stages"]:
        header = (
            f"{'route':>10} {'stage':>12} {'count':>7} {'p50 ms':>9} "
            f"{'p95 ms':>9} {'p99 ms':>9} {'share':>7}"
        )
        lines += ["", header, "-" * len(header)]
        for row in analysis["stages"]:
            lines.append(
                f"{row['route']:>10} {row['stage']:>12} {row['count']:>7} "
                f"{row['p50_ms']:>9.2f} {row['p95_ms']:>9.2f} "
                f"{row['p99_ms']:>9.2f} {row['share']:>6.1%}"
            )
    attribution = analysis["attribution"]
    lines.append(
        f"\nslowest decile ({attribution['slow_requests']} request(s)): "
        f"named stages explain {attribution['min_share']:.1%} (min) / "
        f"{attribution['mean_share']:.1%} (mean) of wall time"
    )
    engine = analysis.get("engine")
    if engine is not None:
        lines.append(
            f"engine join: {engine['matched']}/{engine['writes']} write "
            f"requests matched ({engine['coverage']:.1%}) — "
            f"{engine['run_spans_linked']} linked run span(s), "
            f"{engine['express_events_linked']} express event(s); "
            f"engine p99 {engine['engine']['p99_ms']:.2f} ms"
        )
        if "clock_offset_s" in engine:
            lines.append(
                f"clock anchors aligned (offset {engine['clock_offset_s'] * 1e3:+.3f} ms)"
            )
    return "\n".join(lines)
