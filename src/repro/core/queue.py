"""The coalescing event queue (§4.2).

The queue is the on-chip storage for active events. It behaves like a
direct-mapped structure: one cell per vertex, organized in bins × rows so
that vertices sharing a DRAM page share a queue row and drain together
(spatial locality). Inserting an event for a vertex that already has one
*coalesces* the two through the application's Reduce — the key mechanism
that lets JetStream process a whole batch of updates without atomics.

JetStream extensions modelled here:

* delete-event coalescing during the recovery phase (§4.2), with the
  policy-specific rules of §5 (VAP keeps the most progressed payload; DAP
  disables coalescing and sends extra events through an *overflow buffer*
  that spills to off-chip memory);
* slice-partitioned operation for graphs whose vertex count exceeds the
  queue capacity (§4.7): events for inactive slices spill off-chip and are
  read back when their slice activates.

Functionally the queue drains in deterministic *rounds*: a round emits all
currently queued events of the active slice, sorted by destination vertex
and grouped into row batches; events generated while processing a round
land in the queue for the next round. (Real hardware overlaps draining and
insertion; the round model preserves semantics — the Reordering Property
makes order irrelevant — and gives the timing model clean units.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.events import Event
from repro.core.metrics import RoundWork
from repro.core.policies import DeletePolicy


class QueueError(RuntimeError):
    """Raised on invalid queue operation (e.g. mixing event classes)."""


class CoalescingQueue:
    """Event queue with in-place coalescing, slicing, and work accounting.

    Parameters
    ----------
    algorithm:
        Supplies ``reduce`` and the progression order for coalescing.
    config:
        :class:`~repro.core.config.AcceleratorConfig` (row width, event
        sizes, bin count).
    policy:
        Deletion policy; controls delete coalescing and event width.
    num_vertices:
        Total vertex count (for slice assignment checks).
    slice_of:
        Optional array mapping vertex -> slice id. ``None`` = single slice.
    """

    def __init__(
        self,
        algorithm,
        config,
        policy: DeletePolicy = DeletePolicy.DAP,
        num_vertices: int = 0,
        slice_of: Optional[np.ndarray] = None,
    ):
        self.algorithm = algorithm
        self.config = config
        self.policy = policy
        self.num_vertices = num_vertices
        if slice_of is not None:
            slice_of = np.asarray(slice_of, dtype=np.int64)
            if slice_of.shape[0] < num_vertices:
                raise ValueError("slice_of must cover every vertex")
            self.num_slices = int(slice_of.max()) + 1 if slice_of.size else 1
        else:
            self.num_slices = 1
        self._slice_of = slice_of
        self._cells: List[Dict[int, Event]] = [dict() for _ in range(self.num_slices)]
        self._overflow: List[Dict[int, List[Event]]] = [
            dict() for _ in range(self.num_slices)
        ]
        self.active_slice = 0
        self._occupancy = 0
        self._delete_coalescing_off = False
        self.event_bytes = policy.event_bytes(config)
        # Lifetime statistics
        self.total_inserts = 0
        self.total_coalesces = 0
        self.peak_occupancy = 0
        self.slice_switches = 0

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def set_delete_coalescing(self, enabled: bool) -> None:
        """Enable/disable delete coalescing (DAP recovery disables it)."""
        self._delete_coalescing_off = not enabled

    def slice_id(self, vertex: int) -> int:
        """Slice holding ``vertex``."""
        if self._slice_of is None:
            return 0
        return int(self._slice_of[vertex])

    # ------------------------------------------------------------------
    # Insertion / coalescing
    # ------------------------------------------------------------------
    def insert(self, event: Event, work: RoundWork) -> None:
        """Insert ``event``, coalescing with any queued event for the target.

        ``work`` receives the insert/coalesce/spill accounting.
        """
        self.total_inserts += 1
        work.queue_inserts += 1
        sid = self.slice_id(event.target) if self._slice_of is not None else 0
        if sid != self.active_slice:
            # Cross-slice event: written to off-chip memory now, read back
            # when the slice activates (§4.7) — two transfers.
            work.spill_bytes += 2 * self.event_bytes
        cells = self._cells[sid]
        existing = cells.get(event.target)
        if existing is None:
            cells[event.target] = event
            self._occupancy += 1
            if self._occupancy > self.peak_occupancy:
                self.peak_occupancy = self._occupancy
            return
        if (existing.flags & 1) != (event.flags & 1):
            raise QueueError(
                "delete and non-delete events may not coexist for a vertex; "
                "the scheduler separates the phases (§4.3)"
            )
        if (event.flags & 1) and self._delete_coalescing_off:
            # DAP recovery: queue extra events through the overflow buffer,
            # which spills to off-chip memory in blocks (§5.2).
            self._overflow[sid].setdefault(event.target, []).append(event)
            self._occupancy += 1
            work.spill_bytes += 2 * self.event_bytes
            return
        self._coalesce(existing, event)
        self.total_coalesces += 1
        work.coalesce_ops += 1

    def _coalesce(self, existing: Event, incoming: Event) -> None:
        """Coalesce ``incoming`` into ``existing`` in place (§4.2)."""
        algorithm = self.algorithm
        flags = existing.flags | incoming.flags
        if existing.flags & 1:
            if self.policy is DeletePolicy.VAP:
                # Keep the most progressed contribution — the only one that
                # can still force a reset (§5.1).
                reduced = algorithm.reduce(existing.payload, incoming.payload)
                if reduced != existing.payload:
                    existing.source = incoming.source
                existing.payload = reduced
            # BASE: tagging once suffices; payloads carry no information.
            existing.flags = flags
            return
        reduced = algorithm.reduce(existing.payload, incoming.payload)
        # Retain the source of the dominant contribution (§5.2); for
        # accumulative algorithms reduce is a sum and source is unused.
        if reduced != existing.payload:
            existing.source = incoming.source
        existing.payload = reduced
        existing.flags = flags

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pending(self) -> bool:
        """True when any slice holds events."""
        return any(
            cells or overflow
            for cells, overflow in zip(self._cells, self._overflow)
        )

    def active_pending(self) -> bool:
        """True when the active slice holds events."""
        return bool(
            self._cells[self.active_slice] or self._overflow[self.active_slice]
        )

    def activate_next_slice(self, work: Optional[RoundWork] = None) -> bool:
        """Swap to the next slice with pending events (§4.7).

        Counts the read-back of that slice's spilled events. Returns False
        when every slice is empty.
        """
        for step in range(1, self.num_slices + 1):
            candidate = (self.active_slice + step) % self.num_slices
            if self._cells[candidate] or self._overflow[candidate]:
                if candidate != self.active_slice:
                    self.slice_switches += 1
                self.active_slice = candidate
                return True
        return False

    def drain_round(
        self, work: RoundWork, max_rows: Optional[int] = None
    ) -> List[List[Event]]:
        """Emit queued events of the active slice as row batches.

        Events are sorted by destination vertex id and grouped by queue row
        (``config.queue_row_vertices`` consecutive vertices per row), which
        is exactly the spatial-locality grouping the scheduler exploits
        when assigning batches to processors (§4.3).

        ``max_rows`` limits how many rows one round emits — the
        finer-grained hardware drain (one row per bin per step). Events
        left behind stay queued and keep coalescing with new arrivals,
        which is the mechanism that makes partial drains *cheaper* in total
        events even though they take more rounds.
        """
        cells = self._cells[self.active_slice]
        overflow = self._overflow[self.active_slice]
        if not cells and not overflow:
            return []
        row_width = self.config.queue_row_vertices
        targets = sorted(set(cells) | set(overflow))
        if max_rows is not None:
            allowed_rows = []
            for target in targets:
                row = target // row_width
                if not allowed_rows or allowed_rows[-1] != row:
                    if len(allowed_rows) == max_rows:
                        break
                    allowed_rows.append(row)
            limit = set(allowed_rows)
            targets = [t for t in targets if t // row_width in limit]

        events: List[Event] = []
        for target in targets:
            cell = cells.pop(target, None)
            if cell is not None:
                events.append(cell)
            extra = overflow.pop(target, None)
            if extra:
                events.extend(extra)
        self._occupancy -= len(events)

        batches: List[List[Event]] = []
        current_row = None
        for event in events:
            row = event.target // row_width
            if row != current_row:
                batches.append([])
                current_row = row
            batches[-1].append(event)
        return batches

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of queued events across all slices."""
        return sum(len(c) for c in self._cells) + sum(
            len(v) for o in self._overflow for v in o.values()
        )

    def seed(self, events: Iterable[Event], work: RoundWork) -> None:
        """Bulk-insert initial events (the Initializer module, §4.6)."""
        for event in events:
            self.insert(event, work)
