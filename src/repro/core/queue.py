"""The coalescing event queue (§4.2).

The queue is the on-chip storage for active events. It behaves like a
direct-mapped structure: one cell per vertex, organized in bins × rows so
that vertices sharing a DRAM page share a queue row and drain together
(spatial locality). Inserting an event for a vertex that already has one
*coalesces* the two through the application's Reduce — the key mechanism
that lets JetStream process a whole batch of updates without atomics.

JetStream extensions modelled here:

* delete-event coalescing during the recovery phase (§4.2), with the
  policy-specific rules of §5 (VAP keeps the most progressed payload; DAP
  disables coalescing and sends extra events through an *overflow buffer*
  that spills to off-chip memory);
* slice-partitioned operation for graphs whose vertex count exceeds the
  queue capacity (§4.7): events for inactive slices spill off-chip and are
  read back when their slice activates.

Functionally the queue drains in deterministic *rounds*: a round emits all
currently queued events of the active slice, sorted by destination vertex
and grouped into row batches; events generated while processing a round
land in the queue for the next round. (Real hardware overlaps draining and
insertion; the round model preserves semantics — the Reordering Property
makes order irrelevant — and gives the timing model clean units.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import AlgorithmKind
from repro.core.events import NO_SOURCE, Event, EventBatch
from repro.core.metrics import RoundWork
from repro.core.policies import DeletePolicy
from repro.obs.metrics import REGISTRY as METRICS


class QueueError(RuntimeError):
    """Raised on invalid queue operation (e.g. mixing event classes)."""


class CoalescingQueue:
    """Event queue with in-place coalescing, slicing, and work accounting.

    Parameters
    ----------
    algorithm:
        Supplies ``reduce`` and the progression order for coalescing.
    config:
        :class:`~repro.core.config.AcceleratorConfig` (row width, event
        sizes, bin count).
    policy:
        Deletion policy; controls delete coalescing and event width.
    num_vertices:
        Total vertex count (for slice assignment checks).
    slice_of:
        Optional array mapping vertex -> slice id. ``None`` = single slice.
    """

    def __init__(
        self,
        algorithm,
        config,
        policy: DeletePolicy = DeletePolicy.DAP,
        num_vertices: int = 0,
        slice_of: Optional[np.ndarray] = None,
    ):
        self.algorithm = algorithm
        self.config = config
        self.policy = policy
        self.num_vertices = num_vertices
        if slice_of is not None:
            slice_of = np.asarray(slice_of, dtype=np.int64)
            if slice_of.shape[0] < num_vertices:
                raise ValueError("slice_of must cover every vertex")
            self.num_slices = int(slice_of.max()) + 1 if slice_of.size else 1
        else:
            self.num_slices = 1
        self._slice_of = slice_of
        self._cells: List[Dict[int, Event]] = [dict() for _ in range(self.num_slices)]
        self._overflow: List[Dict[int, List[Event]]] = [
            dict() for _ in range(self.num_slices)
        ]
        self.active_slice = 0
        self._occupancy = 0
        self._delete_coalescing_off = False
        self.event_bytes = policy.event_bytes(config)
        #: Cross-slice events written off-chip and not yet read back, per
        #: slice; charged as read-back traffic when the slice activates.
        self._spilled_pending = [0] * self.num_slices
        # Lifetime statistics
        self.total_inserts = 0
        self.total_coalesces = 0
        self.peak_occupancy = 0
        self.slice_switches = 0

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def set_delete_coalescing(self, enabled: bool) -> None:
        """Enable/disable delete coalescing (DAP recovery disables it)."""
        self._delete_coalescing_off = not enabled

    def slice_id(self, vertex: int) -> int:
        """Slice holding ``vertex``."""
        if self._slice_of is None:
            return 0
        return int(self._slice_of[vertex])

    # ------------------------------------------------------------------
    # Insertion / coalescing
    # ------------------------------------------------------------------
    def insert(self, event: Event, work: RoundWork) -> None:
        """Insert ``event``, coalescing with any queued event for the target.

        ``work`` receives the insert/coalesce/spill accounting.
        """
        self.total_inserts += 1
        work.queue_inserts += 1
        sid = self.slice_id(event.target) if self._slice_of is not None else 0
        if sid != self.active_slice:
            # Cross-slice event: written to off-chip memory now (§4.7); the
            # matching read-back is charged when the slice activates.
            work.spill_bytes += self.event_bytes
            self._spilled_pending[sid] += 1
        cells = self._cells[sid]
        existing = cells.get(event.target)
        if existing is None:
            cells[event.target] = event
            self._occupancy += 1
            if self._occupancy > self.peak_occupancy:
                self.peak_occupancy = self._occupancy
            return
        if (existing.flags & 1) != (event.flags & 1):
            raise QueueError(
                "delete and non-delete events may not coexist for a vertex; "
                "the scheduler separates the phases (§4.3)"
            )
        if (event.flags & 1) and self._delete_coalescing_off:
            # DAP recovery: queue extra events through the overflow buffer,
            # which spills to off-chip memory in blocks (§5.2).
            self._overflow[sid].setdefault(event.target, []).append(event)
            self._occupancy += 1
            if self._occupancy > self.peak_occupancy:
                self.peak_occupancy = self._occupancy
            work.spill_bytes += 2 * self.event_bytes
            return
        self._coalesce(existing, event)
        self.total_coalesces += 1
        work.coalesce_ops += 1

    def _coalesce(self, existing: Event, incoming: Event) -> None:
        """Coalesce ``incoming`` into ``existing`` in place (§4.2)."""
        algorithm = self.algorithm
        flags = existing.flags | incoming.flags
        if existing.flags & 1:
            if self.policy is DeletePolicy.VAP:
                # Keep the most progressed contribution — the only one that
                # can still force a reset (§5.1).
                reduced = algorithm.reduce(existing.payload, incoming.payload)
                if reduced != existing.payload:
                    existing.source = incoming.source
                existing.payload = reduced
            # BASE: tagging once suffices; payloads carry no information.
            existing.flags = flags
            return
        reduced = algorithm.reduce(existing.payload, incoming.payload)
        # Retain the source of the dominant contribution (§5.2); for
        # accumulative algorithms reduce is a sum and source is unused.
        if reduced != existing.payload:
            existing.source = incoming.source
        existing.payload = reduced
        existing.flags = flags

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pending(self) -> bool:
        """True when any slice holds events."""
        return any(
            cells or overflow
            for cells, overflow in zip(self._cells, self._overflow)
        )

    def active_pending(self) -> bool:
        """True when the active slice holds events."""
        return bool(
            self._cells[self.active_slice] or self._overflow[self.active_slice]
        )

    def activate_next_slice(self, work: Optional[RoundWork] = None) -> bool:
        """Swap to the next slice with pending events (§4.7).

        Counts the read-back of that slice's spilled events into ``work``:
        every event written off-chip while the slice was inactive must be
        fetched back before the slice can drain. Returns False when every
        slice is empty.
        """
        for step in range(1, self.num_slices + 1):
            candidate = (self.active_slice + step) % self.num_slices
            if self._cells[candidate] or self._overflow[candidate]:
                if candidate != self.active_slice:
                    self.slice_switches += 1
                if work is not None and self._spilled_pending[candidate]:
                    work.spill_bytes += (
                        self._spilled_pending[candidate] * self.event_bytes
                    )
                    self._spilled_pending[candidate] = 0
                self.active_slice = candidate
                return True
        return False

    def drain_round(
        self, work: RoundWork, max_rows: Optional[int] = None
    ) -> List[List[Event]]:
        """Emit queued events of the active slice as row batches.

        Events are sorted by destination vertex id and grouped by queue row
        (``config.queue_row_vertices`` consecutive vertices per row), which
        is exactly the spatial-locality grouping the scheduler exploits
        when assigning batches to processors (§4.3).

        ``max_rows`` limits how many rows one round emits — the
        finer-grained hardware drain (one row per bin per step). Events
        left behind stay queued and keep coalescing with new arrivals,
        which is the mechanism that makes partial drains *cheaper* in total
        events even though they take more rounds.
        """
        cells = self._cells[self.active_slice]
        overflow = self._overflow[self.active_slice]
        if not cells and not overflow:
            return []
        row_width = self.config.queue_row_vertices
        targets = sorted(set(cells) | set(overflow))
        if max_rows is not None:
            allowed_rows = []
            for target in targets:
                row = target // row_width
                if not allowed_rows or allowed_rows[-1] != row:
                    if len(allowed_rows) == max_rows:
                        break
                    allowed_rows.append(row)
            limit = set(allowed_rows)
            targets = [t for t in targets if t // row_width in limit]

        events: List[Event] = []
        for target in targets:
            cell = cells.pop(target, None)
            if cell is not None:
                events.append(cell)
            extra = overflow.pop(target, None)
            if extra:
                events.extend(extra)
        self._occupancy -= len(events)

        batches: List[List[Event]] = []
        current_row = None
        for event in events:
            row = event.target // row_width
            if row != current_row:
                batches.append([])
                current_row = row
            batches[-1].append(event)
        return batches

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of queued events across all slices."""
        return sum(len(c) for c in self._cells) + sum(
            len(v) for o in self._overflow for v in o.values()
        )

    def insert_batch(self, batch: EventBatch, work: RoundWork) -> None:
        """Insert a whole :class:`EventBatch` in array order.

        The scalar queue simply loops; :class:`VectorQueue` overrides this
        with a scatter-reduce. Both produce identical queue state and
        identical work accounting for the same batch.
        """
        for event in batch.to_events():
            self.insert(event, work)

    def seed(self, events: Iterable[Event], work: RoundWork) -> None:
        """Bulk-insert initial events (the Initializer module, §4.6)."""
        for event in events:
            self.insert(event, work)

    def lifetime_stats(self) -> Dict[str, int]:
        """Lifetime counters (inserts, coalesces, peak occupancy, switches)."""
        return {
            "total_inserts": self.total_inserts,
            "total_coalesces": self.total_coalesces,
            "peak_occupancy": self.peak_occupancy,
            "slice_switches": self.slice_switches,
        }


class VectorQueue:
    """Structure-of-arrays coalescing queue with batched scatter-reduce.

    Drop-in functional twin of :class:`CoalescingQueue` for the vectorized
    engine: one direct-mapped cell per vertex held in parallel NumPy arrays
    (payload / flags / source / occupancy mask), so inserting a whole
    :class:`EventBatch` is a handful of array kernels instead of a Python
    loop:

    * **accumulative coalescing** is ``reduce_ufunc.at`` (``np.add.at``) —
      an ordered scatter-add that reproduces the scalar fold bit for bit
      because duplicate indices are applied sequentially in array order;
    * **selective coalescing** reduces each duplicate-target group with
      ``np.minimum.reduceat``-style segmented reduction and picks the
      source of the *first* event attaining the group optimum, which is
      exactly the event that last strictly improved the scalar fold;
    * the DAP overflow buffer and slice spill accounting mirror the scalar
      queue operation for operation, so lifetime statistics and per-round
      work vectors stay identical.

    Drains return an :class:`EventBatch` (sorted by target) plus row-batch
    boundaries rather than ``List[List[Event]]``; :class:`EngineCore`
    dispatches on the queue type.
    """

    def __init__(
        self,
        algorithm,
        config,
        policy: DeletePolicy = DeletePolicy.DAP,
        num_vertices: int = 0,
        slice_of: Optional[np.ndarray] = None,
        array_factory=None,
    ):
        if getattr(algorithm, "reduce_ufunc", None) is None:
            raise QueueError(
                f"{algorithm!r} provides no reduce_ufunc; use CoalescingQueue "
                "(scalar engine) for algorithms without vectorized hooks"
            )
        self.algorithm = algorithm
        self.config = config
        self.policy = policy
        self.num_vertices = num_vertices
        if slice_of is not None:
            slice_of = np.asarray(slice_of, dtype=np.int64)
            if slice_of.shape[0] < num_vertices:
                raise ValueError("slice_of must cover every vertex")
            self.num_slices = int(slice_of.max()) + 1 if slice_of.size else 1
        else:
            self.num_slices = 1
        self._slice_of = slice_of
        n = int(num_vertices)
        # ``array_factory(n, fill, dtype)`` lets the sharded process
        # backend place the cell arrays in shared-memory segments; growth
        # for vertices created mid-stream falls back to private arrays
        # until the next queue build (see ``_grow``).
        make = array_factory or (
            lambda num, fill, dtype: np.full(num, fill, dtype=dtype)
        )
        self._payloads = make(n, 0.0, np.float64)
        self._flags = make(n, 0, np.int64)
        self._sources = make(n, NO_SOURCE, np.int64)
        self._occupied = make(n, False, np.bool_)
        if slice_of is not None:
            self._slice_masks = [slice_of[:n] == s for s in range(self.num_slices)]
        else:
            self._slice_masks = None
        self._cell_counts = np.zeros(self.num_slices, dtype=np.int64)
        self._overflow_chunks: List[List[EventBatch]] = [
            [] for _ in range(self.num_slices)
        ]
        self._overflow_counts = np.zeros(self.num_slices, dtype=np.int64)
        self._spilled_pending = np.zeros(self.num_slices, dtype=np.int64)
        self.active_slice = 0
        self._occupancy = 0
        self._delete_coalescing_off = False
        self.event_bytes = policy.event_bytes(config)
        # Lifetime statistics (same meaning as CoalescingQueue's)
        self.total_inserts = 0
        self.total_coalesces = 0
        self.peak_occupancy = 0
        self.slice_switches = 0

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def set_delete_coalescing(self, enabled: bool) -> None:
        """Enable/disable delete coalescing (DAP recovery disables it)."""
        self._delete_coalescing_off = not enabled

    def slice_id(self, vertex: int) -> int:
        """Slice holding ``vertex``."""
        if self._slice_of is None:
            return 0
        return int(self._slice_of[vertex])

    # ------------------------------------------------------------------
    # Insertion / coalescing
    # ------------------------------------------------------------------
    def insert(self, event: Event, work: RoundWork) -> None:
        """Insert one boxed event (seeding/tests; hot paths use batches)."""
        self.insert_batch(EventBatch.from_events([event]), work)

    def seed(self, events: Iterable[Event], work: RoundWork) -> None:
        """Bulk-insert initial events (the Initializer module, §4.6)."""
        self.insert_batch(EventBatch.from_events(events), work)

    def insert_batch(self, batch: EventBatch, work: RoundWork) -> None:
        """Insert ``batch`` in array order with scatter-reduce coalescing.

        Equivalent to inserting each event through the scalar queue in the
        same order — including every counter ``work`` receives — but runs
        as O(sort + a few passes) array kernels.
        """
        k = len(batch)
        if k == 0:
            return
        self.total_inserts += k
        work.queue_inserts += k
        t = batch.targets
        maxt = int(t.max())
        if maxt >= self._payloads.shape[0]:
            # Vertices created mid-stream (single-slice queues only — the
            # boxed queue likewise cannot map a new vertex to a slice).
            self._grow(maxt + 1)
        if self._slice_of is not None:
            sids = self._slice_of[t]
            cross = sids != self.active_slice
            n_cross = int(np.count_nonzero(cross))
            if n_cross:
                # Write half of the spill; read-back charged at activation.
                work.spill_bytes += n_cross * self.event_bytes
                np.add.at(self._spilled_pending, sids[cross], 1)

        # Group duplicate targets (stable: preserves per-target insert order).
        order = np.argsort(t, kind="stable")
        ts = t[order]
        ps = batch.payloads[order]
        fs = batch.flags[order]
        ss = batch.sources[order]
        first = np.empty(k, dtype=bool)
        first[0] = True
        np.not_equal(ts[1:], ts[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        ut = ts[starts]
        counts = np.diff(np.append(starts, k))
        occ_u = self._occupied[ut]

        # Delete/non-delete coexistence check (§4.3 separates the phases).
        ev_del = (fs & 1).astype(bool)
        cell_del = np.where(occ_u, (self._flags[ut] & 1).astype(bool), ev_del[starts])
        if np.any(ev_del != np.repeat(cell_del, counts)):
            raise QueueError(
                "delete and non-delete events may not coexist for a vertex; "
                "the scheduler separates the phases (§4.3)"
            )

        # Classify each event: direct cell store (group-first of an empty
        # cell), overflow append (extra deletes while coalescing is off),
        # or coalesce into the existing cell.
        grp = np.cumsum(first) - 1
        occ_ev = occ_u[grp]
        overflow_grp = cell_del & self._delete_coalescing_off
        ev_first_new = first & ~occ_ev
        ev_overflow = overflow_grp[grp] & ~ev_first_new
        ev_coalesce = ~overflow_grp[grp] & ~ev_first_new

        # Direct stores create cells.
        tn = ts[ev_first_new]
        created = int(tn.shape[0])
        if created:
            self._payloads[tn] = ps[ev_first_new]
            self._flags[tn] = fs[ev_first_new]
            self._sources[tn] = ss[ev_first_new]
            self._occupied[tn] = True
            if self._slice_of is not None:
                np.add.at(self._cell_counts, self._slice_of[tn], 1)
            else:
                self._cell_counts[0] += created

        # Overflow buffer (extra delete events under DAP, §5.2).
        n_overflow = int(np.count_nonzero(ev_overflow))
        if n_overflow:
            chunk = EventBatch(
                ts[ev_overflow], ps[ev_overflow], fs[ev_overflow], ss[ev_overflow]
            )
            work.spill_bytes += 2 * self.event_bytes * n_overflow
            if self._slice_of is not None:
                ov_sids = self._slice_of[chunk.targets]
                np.add.at(self._overflow_counts, ov_sids, 1)
                for sid in np.unique(ov_sids):
                    mask = ov_sids == sid
                    self._overflow_chunks[int(sid)].append(chunk.take(mask))
            else:
                self._overflow_counts[0] += n_overflow
                self._overflow_chunks[0].append(chunk)

        # Coalesce the rest through Reduce (§4.2).
        n_coalesce = int(np.count_nonzero(ev_coalesce))
        if n_coalesce:
            self.total_coalesces += n_coalesce
            work.coalesce_ops += n_coalesce
            # Request/delete flag bits always merge.
            np.bitwise_or.at(self._flags, ts[ev_coalesce], fs[ev_coalesce])
            # Value folding: regular events always fold; delete events fold
            # only under VAP (BASE tags carry no payload information).
            value_grp = ~overflow_grp & (~cell_del | (self.policy is DeletePolicy.VAP))
            if self.algorithm.kind is AlgorithmKind.ACCUMULATIVE:
                vmask = ev_coalesce & value_grp[grp]
                tv = ts[vmask]
                if tv.shape[0]:
                    # Ordered scatter-add == the scalar left fold, bit for
                    # bit (ufunc.at applies duplicates sequentially).
                    self.algorithm.reduce_ufunc.at(self._payloads, tv, ps[vmask])
                    # Source: last event of each group wins. (The scalar
                    # fold re-stamps on every sum-changing coalesce, which
                    # is the same unless an event leaves the sum unchanged;
                    # accumulative algorithms never consume sources — the
                    # recovery path normalizes their policy to BASE.)
                    sv = ss[vmask]
                    last = np.empty(tv.shape[0], dtype=bool)
                    last[-1] = True
                    np.not_equal(tv[1:], tv[:-1], out=last[:-1])
                    self._sources[tv[last]] = sv[last]
            else:
                # All events of value groups participate — including the
                # group-first direct store of a freshly created cell, whose
                # payload seeds the scalar fold.
                value_ev = value_grp[grp]
                if value_ev.any():
                    self._fold_selective(
                        ts[value_ev],
                        ps[value_ev],
                        ss[value_ev],
                        (~occ_ev)[value_ev],
                    )
        self._occupancy += created + n_overflow
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy
        if METRICS.enabled:
            # One sample per batch insert (per scheduler round), matching
            # the engines' one-guard-per-round overhead contract.
            METRICS.record_queue_occupancy(self._occupancy, self.peak_occupancy)

    def _grow(self, num_vertices: int) -> None:
        """Extend the cell arrays for vertices created mid-stream."""
        if self._slice_of is not None:
            raise QueueError(
                "cannot grow a slice-partitioned queue; rebuild it with the "
                "new slice assignment"
            )
        current = self._payloads.shape[0]
        extra = num_vertices - current
        self._payloads = np.concatenate(
            [self._payloads, np.zeros(extra, dtype=np.float64)]
        )
        self._flags = np.concatenate([self._flags, np.zeros(extra, dtype=np.int64)])
        self._sources = np.concatenate(
            [self._sources, np.full(extra, NO_SOURCE, dtype=np.int64)]
        )
        self._occupied = np.concatenate(
            [self._occupied, np.zeros(extra, dtype=bool)]
        )
        self.num_vertices = num_vertices

    def _fold_selective(self, tv, pv, sv, new_v) -> None:
        """Min/max fold of duplicate-target event groups into the cells.

        Matches the scalar sequential fold exactly: the final payload is
        ``reduce(existing, group best)`` and the final source is the source
        of the *first* event attaining the group best (the event at which
        the running fold last strictly improved). Groups whose existing
        cell already dominates are left untouched — ties keep the
        incumbent, like the scalar Reduce. ``new_v`` marks events whose
        cell was created by this batch; those groups update
        unconditionally because their first event seeded the fold.
        """
        uf = self.algorithm.reduce_ufunc
        n = tv.shape[0]
        vfirst = np.empty(n, dtype=bool)
        vfirst[0] = True
        np.not_equal(tv[1:], tv[:-1], out=vfirst[1:])
        vstarts = np.flatnonzero(vfirst)
        vcounts = np.diff(np.append(vstarts, n))
        uvt = tv[vstarts]
        best = uf.reduceat(pv, vstarts)
        # Position of the first event of each group attaining the best.
        at_best = pv == np.repeat(best, vcounts)
        pos = np.where(at_best, np.arange(n), n)
        first_best = np.minimum.reduceat(pos, vstarts)
        cand_src = sv[first_best]
        existing = self._payloads[uvt]
        new_group = new_v[vstarts]
        reduced = uf(existing, best)
        improves = new_group | (reduced != existing)
        upd = uvt[improves]
        self._payloads[upd] = np.where(new_group, best, reduced)[improves]
        self._sources[upd] = cand_src[improves]

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pending(self) -> bool:
        """True when any slice holds events."""
        return self._occupancy > 0

    def active_pending(self) -> bool:
        """True when the active slice holds events."""
        sid = self.active_slice
        return bool(self._cell_counts[sid] or self._overflow_counts[sid])

    def activate_next_slice(self, work: Optional[RoundWork] = None) -> bool:
        """Swap to the next slice with pending events (§4.7).

        Counts the read-back of that slice's spilled events into ``work``,
        exactly like :meth:`CoalescingQueue.activate_next_slice`.
        """
        for step in range(1, self.num_slices + 1):
            candidate = (self.active_slice + step) % self.num_slices
            if self._cell_counts[candidate] or self._overflow_counts[candidate]:
                if candidate != self.active_slice:
                    self.slice_switches += 1
                if work is not None and self._spilled_pending[candidate]:
                    work.spill_bytes += (
                        int(self._spilled_pending[candidate]) * self.event_bytes
                    )
                    self._spilled_pending[candidate] = 0
                self.active_slice = candidate
                return True
        return False

    def pending_targets(self) -> np.ndarray:
        """Distinct queued target ids of the active slice, ascending.

        Used by the sharded engine group to compute a globally consistent
        partial-drain row set across per-engine queues before draining.
        """
        sid = self.active_slice
        if self._slice_masks is not None:
            cell_t = np.flatnonzero(self._occupied & self._slice_masks[sid])
        else:
            cell_t = np.flatnonzero(self._occupied)
        chunks = self._overflow_chunks[sid]
        if chunks:
            return np.unique(
                np.concatenate([cell_t] + [c.targets for c in chunks])
            )
        return cell_t

    def drain_round(
        self,
        work: RoundWork,
        max_rows: Optional[int] = None,
        allowed_rows: Optional[np.ndarray] = None,
    ) -> Tuple[EventBatch, np.ndarray]:
        """Emit queued events of the active slice as one sorted batch.

        Returns ``(batch, row_starts)``: the drained events sorted by
        destination vertex (cell event first, then any overflow events for
        the same target in arrival order — the scalar drain order), and
        the indices where a new queue row of ``config.queue_row_vertices``
        consecutive vertices begins. ``max_rows`` limits the drain to the
        first N distinct rows, mirroring the scalar partial drain.
        ``allowed_rows`` instead drains exactly the given row ids (the
        sharded group passes the globally computed row window so every
        engine drains the same logical rows); it overrides ``max_rows``.
        """
        sid = self.active_slice
        if self._slice_masks is not None:
            cell_t = np.flatnonzero(self._occupied & self._slice_masks[sid])
        else:
            cell_t = np.flatnonzero(self._occupied)
        chunks = self._overflow_chunks[sid]
        of = EventBatch.concat(chunks) if chunks else EventBatch.empty()
        if cell_t.shape[0] == 0 and len(of) == 0:
            return EventBatch.empty(), np.empty(0, dtype=np.int64)
        row_width = self.config.queue_row_vertices

        if allowed_rows is not None:
            cell_t = cell_t[np.isin(cell_t // row_width, allowed_rows)]
            of_mask = np.isin(of.targets // row_width, allowed_rows)
            if cell_t.shape[0] == 0 and not of_mask.any():
                return EventBatch.empty(), np.empty(0, dtype=np.int64)
        elif max_rows is not None:
            all_t = np.unique(np.concatenate([cell_t, of.targets]))
            rows = np.unique(all_t // row_width)
            allowed = rows[:max_rows]
            cell_t = cell_t[np.isin(cell_t // row_width, allowed)]
            of_mask = np.isin(of.targets // row_width, allowed)
        else:
            of_mask = np.ones(len(of), dtype=bool)

        cell_batch = EventBatch(
            cell_t,
            self._payloads[cell_t],
            self._flags[cell_t],
            self._sources[cell_t],
        )
        of_drained = of.take(of_mask)
        n_of = len(of_drained)
        if n_of:
            merged = EventBatch.concat([cell_batch, of_drained])
            # Per target: the coalesced cell first, then overflow events in
            # arrival order (chunks were appended chronologically).
            prio = np.concatenate(
                [
                    np.zeros(cell_t.shape[0], dtype=np.int64),
                    np.ones(n_of, dtype=np.int64),
                ]
            )
            seq = np.concatenate(
                [np.arange(cell_t.shape[0]), np.arange(n_of)]
            )
            out = merged.take(np.lexsort((seq, prio, merged.targets)))
        else:
            out = cell_batch  # flatnonzero order: already target-sorted

        # Clear drained state.
        self._occupied[cell_t] = False
        self._cell_counts[sid] -= cell_t.shape[0]
        retained = of.take(~of_mask)
        self._overflow_chunks[sid] = [retained] if len(retained) else []
        self._overflow_counts[sid] -= n_of
        self._occupancy -= cell_t.shape[0] + n_of

        out_rows = out.targets // row_width
        bstart = np.empty(len(out), dtype=bool)
        bstart[0] = True
        np.not_equal(out_rows[1:], out_rows[:-1], out=bstart[1:])
        return out, np.flatnonzero(bstart)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of queued events across all slices."""
        return int(self._occupancy)

    def lifetime_stats(self) -> Dict[str, int]:
        """Lifetime counters (inserts, coalesces, peak occupancy, switches)."""
        return {
            "total_inserts": self.total_inserts,
            "total_coalesces": self.total_coalesces,
            "peak_occupancy": self.peak_occupancy,
            "slice_switches": self.slice_switches,
        }
