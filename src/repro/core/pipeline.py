"""End-to-end streaming pipeline: arrival, batching, evaluation (§2.1).

The paper's deployment model (Fig. 1): updates arrive continuously; while
a query evaluation is in flight they accumulate in the next batch, which
is applied only after the current results are reported. Table 3 measures
only processing time and the paper notes "the end-to-end performance may
have other overheads to receive and batch the updates" — this module
models those overheads to quantify the near-real-time claim of Fig. 13:

* each update's **staleness** = (batch close time - arrival time) +
  evaluation time of its batch: how old an update is by the time the
  query result reflects it;
* slow engines force longer batching windows (updates pile up while the
  previous evaluation runs), so staleness compounds — the mechanism that
  makes cold-start recomputation hopeless for real-time service and
  JetStream viable.

The pipeline is a deterministic discrete-event simulation over a given
update trace and a per-batch evaluation-time function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ArrivalTrace:
    """Timestamps (seconds) of individual update arrivals."""

    times: np.ndarray

    @classmethod
    def poisson(
        cls, rate_per_s: float, duration_s: float, seed: int = 0
    ) -> "ArrivalTrace":
        """Poisson arrivals at ``rate_per_s`` for ``duration_s`` seconds."""
        if rate_per_s <= 0 or duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate_per_s, size=int(rate_per_s * duration_s * 2) + 16)
        times = np.cumsum(gaps)
        return cls(times=times[times < duration_s])

    @classmethod
    def uniform(cls, rate_per_s: float, duration_s: float) -> "ArrivalTrace":
        """Evenly spaced arrivals (a deterministic reference trace)."""
        count = int(rate_per_s * duration_s)
        return cls(times=np.arange(1, count + 1) / rate_per_s)

    def __len__(self) -> int:
        return len(self.times)


@dataclass
class BatchRecord:
    """One evaluated batch in the pipeline simulation."""

    index: int
    size: int
    open_time_s: float
    close_time_s: float
    evaluation_s: float
    report_time_s: float
    #: Mean staleness of this batch's updates at report time.
    mean_staleness_s: float
    max_staleness_s: float


@dataclass
class PipelineReport:
    """Outcome of a pipeline simulation."""

    batches: List[BatchRecord] = field(default_factory=list)
    updates_processed: int = 0

    @property
    def mean_staleness_s(self) -> float:
        """Update-weighted mean staleness across the run."""
        if not self.batches:
            return 0.0
        weighted = sum(b.mean_staleness_s * b.size for b in self.batches)
        return weighted / max(1, self.updates_processed)

    @property
    def p99_staleness_s(self) -> float:
        """99th percentile of per-batch max staleness (tail freshness)."""
        if not self.batches:
            return 0.0
        return float(np.percentile([b.max_staleness_s for b in self.batches], 99))

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.updates_processed / len(self.batches)

    @property
    def busy_fraction(self) -> float:
        """Fraction of wall-clock the engine spent evaluating."""
        if not self.batches:
            return 0.0
        horizon = self.batches[-1].report_time_s
        busy = sum(b.evaluation_s for b in self.batches)
        return busy / horizon if horizon else 0.0


class StreamingPipeline:
    """Simulates arrival → batching → evaluation for one engine.

    Parameters
    ----------
    evaluation_time_s:
        ``f(batch_size) -> seconds``: per-batch evaluation latency of the
        engine under study. For JetStream this comes from the timing model
        (nearly flat in batch size); for cold-start it is a constant at
        full-recompute cost.
    min_batch:
        The engine will not launch an evaluation for fewer updates (the
        amortization floor software systems need).
    max_batch:
        Close the batch at this size even if the engine is still busy
        (back-pressure bound). ``None`` = unbounded.
    """

    def __init__(
        self,
        evaluation_time_s: Callable[[int], float],
        min_batch: int = 1,
        max_batch: Optional[int] = None,
    ):
        if min_batch < 1:
            raise ValueError("min_batch must be at least 1")
        if max_batch is not None and max_batch < min_batch:
            raise ValueError("max_batch must be >= min_batch")
        self.evaluation_time_s = evaluation_time_s
        self.min_batch = min_batch
        self.max_batch = max_batch

    def simulate(self, trace: ArrivalTrace) -> PipelineReport:
        """Run the pipeline over the arrival trace."""
        report = PipelineReport()
        times: Sequence[float] = list(trace.times)
        cursor = 0
        now = 0.0
        batch_index = 0
        while cursor < len(times):
            # Wait until at least min_batch updates have arrived.
            gate = times[min(cursor + self.min_batch - 1, len(times) - 1)]
            open_time = times[cursor]
            close_time = max(now, gate)
            # Everything that arrived while waiting/evaluating joins.
            end = cursor
            while end < len(times) and times[end] <= close_time:
                end += 1
                if self.max_batch is not None and end - cursor >= self.max_batch:
                    break
            size = end - cursor
            if size == 0:  # engine idle before the next arrival
                now = times[cursor]
                continue
            evaluation = self.evaluation_time_s(size)
            report_time = close_time + evaluation
            staleness = [report_time - times[i] for i in range(cursor, end)]
            report.batches.append(
                BatchRecord(
                    index=batch_index,
                    size=size,
                    open_time_s=open_time,
                    close_time_s=close_time,
                    evaluation_s=evaluation,
                    report_time_s=report_time,
                    mean_staleness_s=float(np.mean(staleness)),
                    max_staleness_s=float(np.max(staleness)),
                )
            )
            report.updates_processed += size
            cursor = end
            now = report_time
            batch_index += 1
        return report


def engine_latency_function(
    engine_factory: Callable[[], object],
    probe_sizes: Sequence[int] = (4, 16, 64, 256),
    seed: int = 0,
) -> Callable[[int], float]:
    """Fit a per-batch latency function by probing a real engine.

    Runs the engine on probe batch sizes, converts the architectural
    timing to seconds, and returns a piecewise-linear interpolant — the
    bridge between the functional engines and the pipeline simulation.
    """
    from repro.sim.timing import AcceleratorTimingModel
    from repro.streams import StreamGenerator

    timing = AcceleratorTimingModel()
    sizes: List[int] = []
    latencies: List[float] = []
    for size in sorted(probe_sizes):
        engine = engine_factory()
        engine.initial_compute()
        stream = StreamGenerator(engine.graph, seed=seed, insertion_ratio=0.7)
        result = engine.apply_batch(stream.next_batch(size))
        seconds = timing.run_time(result.metrics, stream_records=size).time_ms / 1e3
        sizes.append(size)
        latencies.append(seconds)

    def latency(batch_size: int) -> float:
        return float(np.interp(batch_size, sizes, latencies))

    return latency
