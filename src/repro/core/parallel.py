"""Sharded multi-engine execution over graph slices (§4.7, Table 1).

The paper's accelerator runs **8 event-driven engines in parallel**: the
graph is sliced (PuLP edge-cut — here :func:`repro.graph.partition.
partition_graph`), each engine owns one slice's vertices and its own
coalescing queue, and events crossing slices travel through the 16×16
crossbar NoC (§4.4). This module reproduces that organization on the
vectorized SoA substrate:

* :class:`ShardedQueueGroup` — one :class:`~repro.core.queue.VectorQueue`
  per engine plus the vertex→engine map, presenting the same queue
  interface the orchestration layers already use;
* :class:`InterEngineChannel` — cross-engine event routing with NoC flit
  and contention accounting via :class:`repro.sim.noc.CrossbarModel`;
* :func:`regular_shard_kernel` / :func:`delete_shard_kernel` — the pure
  per-engine round kernels, shared by both execution backends;
* :func:`run_regular_sharded` / :func:`run_delete_sharded` — the two
  event-loop drivers, dispatching shard work to the engine core's
  persistent executor.

**Execution backends.** ``backend="thread"`` (default) runs shard kernels
on one persistent :class:`ThreadShardExecutor` per engine core — the
NumPy kernels release or spend little time under the GIL, and shards
write disjoint rows of the shared state arrays. ``backend="process"``
runs one long-lived worker process per pool slot
(:class:`ProcessShardExecutor`, ``spawn`` start method): the hot state —
vertex states, the DAP dependency array, the CSR out-arrays, hoisted
propagation factors, and the queue cell arrays — lives in
``multiprocessing.shared_memory`` segments (:mod:`repro.core.shm`), so
workers reduce and expand directly against the same physical memory the
main process merges and drains. Round inputs (the merged drain batch and
per-shard selections) and outputs (generated-event arrays plus the
:class:`~repro.core.metrics.RoundWork` vector) travel over a pipe per
worker; queue drains, canonical merges, and all accounting stay in the
main process. Idle process pools are parked in a warm cache keyed by
width and revived for the next engine core of the same shape
(:func:`acquire_shard_executor` / :func:`release_shard_executor`).

**Determinism contract.** Both backends are *bit-identical* to the
single-engine vectorized path — final states, per-round
:class:`~repro.core.metrics.RoundWork` vectors, phase extras, and queue
lifetime statistics — for any shard assignment and any worker count. Each
round, per-engine drains are merged into one batch in canonical
shard-then-vertex order (vertex ids are globally sorted; every vertex
lives in exactly one shard, so this is simultaneously ascending-vertex
order — the oracle's drain order), per-engine generated events are merged
back in the producing vertex's drain position order (the oracle's
generation order), and cross-shard deliveries coalesce into each
destination queue in that fixed order regardless of which worker finished
first. Shard results are always reassembled by shard id — never by
completion order — so the merge sees the same operand order on one
thread, eight threads, or eight processes. Because floating-point
reduction order is preserved exactly, results do not drift by even one
ulp (``tests/test_sharded_parity.py`` sweeps both backends).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.events import NO_SOURCE, Event, EventBatch
from repro.core.metrics import PhaseStats, RoundWork
from repro.core.policies import DeletePolicy
from repro.core.queue import VectorQueue
from repro.graph.partition import extend_assignment
from repro.obs.metrics import REGISTRY as METRICS
from repro.obs.tracer import work_attrs
from repro.sim.noc import CrossbarModel

from repro.algorithms.base import AlgorithmKind


def _default_workers(num_engines: int) -> int:
    return max(1, min(num_engines, os.cpu_count() or 1))


def _run_tasks(pool: Optional[ThreadPoolExecutor], tasks):
    """Run thunks (serially or on ``pool``), returning results in task order.

    Collecting results in submission order — never completion order — is
    one half of the determinism contract; the other half is the canonical
    merge the callers apply to those results.
    """
    if pool is None:
        return [task() for task in tasks]
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def _timed_task(task, slot, clock):
    """Wrap a shard thunk to record its wall-clock window into ``slot``.

    Only used when tracing is enabled; ``perf_counter`` is monotonic
    across threads, so worker-side stamps compare with the main thread's.
    """

    def run():
        slot[0] = clock()
        try:
            return task()
        finally:
            slot[1] = clock()

    return run


def _noc_snapshot(phase: PhaseStats):
    return (
        phase.noc_events_local,
        phase.noc_events_remote,
        phase.noc_flits,
        phase.noc_cycles,
    )


def _noc_delta_attrs(phase: PhaseStats, snapshot) -> dict:
    return {
        "noc_events_local": phase.noc_events_local - snapshot[0],
        "noc_events_remote": phase.noc_events_remote - snapshot[1],
        "noc_flits": phase.noc_flits - snapshot[2],
        "noc_cycles": phase.noc_cycles - snapshot[3],
    }


class InterEngineChannel:
    """Cross-engine event traffic accounting (§4.4 crossbar, §4.7 slices).

    Every generated event is delivered either to the producing engine's own
    queue (local) or across the NoC to another engine (remote). Remote
    traffic is charged flits and contended cycles through
    :class:`~repro.sim.noc.CrossbarModel`, per round, and accumulated both
    here (lifetime, per-engine) and on the active
    :class:`~repro.core.metrics.PhaseStats` (``noc_*`` counters).
    """

    def __init__(self, config, event_bytes: int, num_engines: int):
        self.model = CrossbarModel(config, event_bytes=event_bytes)
        self.num_engines = num_engines
        self.events_local = 0
        self.events_remote = 0
        self.flits = 0
        self.cycles = 0.0
        self.sent = np.zeros(num_engines, dtype=np.int64)
        self.received = np.zeros(num_engines, dtype=np.int64)

    def record(
        self,
        src_engine: np.ndarray,
        dst_engine: np.ndarray,
        phase: Optional[PhaseStats] = None,
    ) -> None:
        """Account one round's deliveries (``src_engine`` < 0 = host-injected)."""
        remote = (src_engine >= 0) & (src_engine != dst_engine)
        n_remote = int(np.count_nonzero(remote))
        n_local = int(src_engine.shape[0]) - n_remote
        self.events_local += n_local
        self.events_remote += n_remote
        flits = 0
        cycles = 0.0
        if n_remote:
            estimate = self.model.round_cycles(n_remote)
            flits = estimate.flits
            cycles = estimate.contended_cycles
            self.flits += flits
            self.cycles += cycles
            np.add.at(self.sent, src_engine[remote], 1)
            np.add.at(self.received, dst_engine[remote], 1)
        if phase is not None:
            phase.noc_events_local += n_local
            phase.noc_events_remote += n_remote
            phase.noc_flits += flits
            phase.noc_cycles += cycles
        if METRICS.enabled:
            METRICS.record_noc(n_local, n_remote, flits)

    def stats(self) -> Dict[str, object]:
        """Lifetime channel counters."""
        return {
            "events_local": self.events_local,
            "events_remote": self.events_remote,
            "flits": self.flits,
            "cycles": self.cycles,
            "sent_per_engine": self.sent.tolist(),
            "received_per_engine": self.received.tolist(),
        }


class ShardedQueueGroup:
    """Per-engine :class:`VectorQueue` bank behind the single-queue API.

    The orchestration layers (static compute, streaming phases, seed
    buffers) talk to this group exactly as they talk to one queue: inserts
    are routed to the owning engine's queue by the vertex→engine map,
    preserving arrival order per vertex so per-cell coalescing folds in the
    oracle's order; drains are merged in canonical order by
    :meth:`drain_round_merged`.

    Lifetime statistics aggregate to the oracle's exactly: inserts and
    coalesces are disjoint sums, and peak occupancy is sampled across the
    whole bank after each logical insert — the same observation points the
    single queue uses.
    """

    def __init__(
        self,
        algorithm,
        config,
        policy: DeletePolicy = DeletePolicy.DAP,
        num_vertices: int = 0,
        shard_of: Optional[np.ndarray] = None,
        num_engines: int = 8,
        workers: Optional[int] = None,
        queue_array_factory=None,
    ):
        if num_engines < 1:
            raise ValueError("num_engines must be >= 1")
        self.algorithm = algorithm
        self.config = config
        self.policy = policy
        self.num_engines = num_engines
        if shard_of is None:
            shard_of = np.arange(num_vertices, dtype=np.int64) % num_engines
        shard_of = np.asarray(shard_of, dtype=np.int64).copy()
        if shard_of.shape[0] < num_vertices:
            shard_of = extend_assignment(shard_of, num_vertices, num_engines)
        if shard_of.size and (shard_of.max() >= num_engines or shard_of.min() < 0):
            raise ValueError("shard assignment references an engine out of range")
        self.shard_of = shard_of
        self.queues = [
            VectorQueue(
                algorithm,
                config,
                policy,
                num_vertices=num_vertices,
                array_factory=queue_array_factory,
            )
            for _ in range(num_engines)
        ]
        self.event_bytes = policy.event_bytes(config)
        self.channel = InterEngineChannel(config, self.event_bytes, num_engines)
        self.workers = workers if workers is not None else _default_workers(num_engines)
        self.active_slice = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def set_delete_coalescing(self, enabled: bool) -> None:
        """Enable/disable delete coalescing on every engine's queue."""
        for queue in self.queues:
            queue.set_delete_coalescing(enabled)

    def engine_of(self, vertex: int) -> int:
        """Engine owning ``vertex``."""
        return int(self.shard_of[vertex])

    # ------------------------------------------------------------------
    # Insertion / routing
    # ------------------------------------------------------------------
    def _ensure_covers(self, num_vertices: int) -> None:
        """Extend the vertex→engine map for vertices created mid-stream.

        Uses the same deterministic lightest-shard rule as
        :func:`repro.graph.partition.extend_assignment`, so the engine-side
        plan (extended by :meth:`EngineCore.grow`) and this group agree on
        every new vertex's owner.
        """
        if num_vertices <= self.shard_of.shape[0]:
            return
        self.shard_of = extend_assignment(self.shard_of, num_vertices, self.num_engines)

    def insert(self, event: Event, work: RoundWork) -> None:
        """Insert one boxed event (seeding/tests; hot paths use batches)."""
        self.insert_batch(EventBatch.from_events([event]), work)

    def seed(self, events: Iterable[Event], work: RoundWork) -> None:
        """Bulk-insert initial events (the Initializer module, §4.6)."""
        self.insert_batch(EventBatch.from_events(list(events)), work)

    def insert_batch(self, batch: EventBatch, work: RoundWork) -> None:
        """Route ``batch`` to the owning engines' queues in shard order.

        Splitting by owner preserves per-vertex arrival order (every event
        for a vertex lands in the same sub-batch), so each queue's
        scatter-reduce folds the exact event sequence the single-queue
        oracle folds, and all ``work`` counters sum to the oracle's.
        """
        k = len(batch)
        if k == 0:
            return
        self._ensure_covers(int(batch.targets.max()) + 1)
        owner = self.shard_of[batch.targets]
        for engine_id in range(self.num_engines):
            mask = owner == engine_id
            if mask.any():
                self.queues[engine_id].insert_batch(batch.take(mask), work)
        self._sample_peak()

    def route_generated(
        self, batch: EventBatch, work: RoundWork, phase: PhaseStats
    ) -> None:
        """Deliver engine-generated events, charging inter-engine NoC traffic."""
        k = len(batch)
        if k == 0:
            return
        self._ensure_covers(int(batch.targets.max()) + 1)
        dst = self.shard_of[batch.targets]
        src = np.where(
            batch.sources >= 0, self.shard_of[np.maximum(batch.sources, 0)], -1
        )
        self.channel.record(src, dst, phase)
        for engine_id in range(self.num_engines):
            mask = dst == engine_id
            if mask.any():
                self.queues[engine_id].insert_batch(batch.take(mask), work)
        self._sample_peak()

    def _sample_peak(self) -> None:
        occupancy = self.occupancy()
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if METRICS.enabled:
            METRICS.record_queue_occupancy(occupancy, self.peak_occupancy)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pending(self) -> bool:
        """True when any engine's queue holds events."""
        return any(queue.pending() for queue in self.queues)

    def active_pending(self) -> bool:
        """True when the active slice holds events (per-engine queues are
        single-slice, so this equals :meth:`pending`)."""
        return self.pending()

    def activate_next_slice(self, work: Optional[RoundWork] = None) -> bool:
        """Single-slice no-op mirroring the oracle queue's behaviour."""
        return self.pending()

    def drain_round_merged(
        self, max_rows: Optional[int] = None, pool=None
    ) -> Tuple[EventBatch, np.ndarray]:
        """Drain every engine's queue and merge in canonical order.

        Per-engine drains run concurrently on ``pool`` (serially when it is
        ``None`` — the process backend drains in the main process); the
        merge is a stable sort by target vertex id. Vertices are disjoint
        across engines, so this reconstructs exactly the single queue's
        drain order (cells first, then overflow events per target in
        arrival order), and the returned row starts are the global row
        boundaries. ``max_rows`` computes the allowed row window over the
        union of all engines' pending targets — the same window the oracle
        drains.
        """
        allowed: Optional[np.ndarray] = None
        row_width = self.config.queue_row_vertices
        if max_rows is not None:
            pending = [q.pending_targets() for q in self.queues]
            pending = [p for p in pending if p.size]
            if not pending:
                return EventBatch.empty(), np.empty(0, dtype=np.int64)
            rows = np.unique(np.concatenate(pending) // row_width)
            allowed = rows[:max_rows]

        scratch = [RoundWork() for _ in self.queues]

        def drain_task(queue, work):
            def run():
                return queue.drain_round(work, allowed_rows=allowed)

            return run

        parts = _run_tasks(
            pool, [drain_task(q, w) for q, w in zip(self.queues, scratch)]
        )
        batches = [batch for batch, _ in parts if len(batch)]
        if not batches:
            return EventBatch.empty(), np.empty(0, dtype=np.int64)
        merged = EventBatch.concat(batches)
        order = np.argsort(merged.targets, kind="stable")
        out = merged.take(order)
        out_rows = out.targets // row_width
        row_start = np.empty(len(out), dtype=bool)
        row_start[0] = True
        np.not_equal(out_rows[1:], out_rows[:-1], out=row_start[1:])
        return out, np.flatnonzero(row_start)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Queued events across every engine's queue."""
        return sum(queue.occupancy() for queue in self.queues)

    def lifetime_stats(self) -> Dict[str, int]:
        """Lifetime counters, aggregated to match the single-queue oracle."""
        return {
            "total_inserts": sum(q.total_inserts for q in self.queues),
            "total_coalesces": sum(q.total_coalesces for q in self.queues),
            "peak_occupancy": self.peak_occupancy,
            "slice_switches": 0,
        }

    def channel_stats(self) -> Dict[str, object]:
        """Lifetime inter-engine NoC counters."""
        return self.channel.stats()


# ----------------------------------------------------------------------
# Per-shard round kernels (shared by the thread and process backends)
# ----------------------------------------------------------------------
def _edge_indices(start: np.ndarray, deg: np.ndarray) -> np.ndarray:
    """Indices into the CSR edge arrays for multiple ``[start, start+deg)``
    ranges, concatenated in order — the vectorized frontier gather."""
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    exclusive = np.cumsum(deg) - deg
    return np.arange(total, dtype=np.int64) + np.repeat(start - exclusive, deg)


def regular_shard_kernel(
    ctx: dict,
    sel: np.ndarray,
    targets: np.ndarray,
    payloads: np.ndarray,
    flags: np.ndarray,
    sources: np.ndarray,
    sw: RoundWork,
):
    """One engine's computation-phase work over its rows of the round batch.

    ``ctx`` carries the algorithm/policy plus the state, dependency,
    propagation-factor, and CSR out-arrays — heap views on the thread
    backend, shared-memory attachments inside worker processes; ``sel``
    selects this shard's positions in the canonically merged drain batch.
    Mirrors ``EngineCore._run_regular_vectorized`` operation for operation,
    and returns the shard's generated events tagged with their producer's
    drain position (``gen_pos``) for the canonical generation merge.
    """
    algorithm = ctx["algorithm"]
    states = ctx["states"]
    offsets = ctx["offsets"]
    out_targets = ctx["out_targets"]
    out_weights = ctx["out_weights"]
    ts = targets[sel]
    old = states[ts]
    new = algorithm.reduce_ufunc(old, payloads[sel])
    changed = new != old
    tc = ts[changed]
    states[tc] = new[changed]
    if ctx["policy"].tracks_dependency:
        ctx["dependency"][tc] = sources[sel][changed]
    prop = changed | ((flags[sel] & 2) != 0)
    start_all = offsets[ts]
    deg_all = offsets[ts + 1] - start_all
    nz = prop & (deg_all > 0)
    idx = np.flatnonzero(nz)
    v = ts[idx]
    start = start_all[idx]
    deg = deg_all[idx]
    if algorithm.kind is AlgorithmKind.ACCUMULATIVE:
        threshold = algorithm.propagation_threshold
        base = (new[idx] - old[idx]) * ctx["prop_factor"][v]
        if algorithm.weight_scaled_propagation:
            eidx = _edge_indices(start, deg)
            values = np.repeat(base, deg) * out_weights[eidx]
            keep = (values > threshold) | (values < -threshold)
            gen_t = out_targets[eidx][keep]
            gen_p = values[keep]
            gen_s = np.repeat(v, deg)[keep]
            gen_pos = np.repeat(sel[idx], deg)[keep]
        else:
            keepv = (base > threshold) | (base < -threshold)
            dg = deg[keepv]
            eidx = _edge_indices(start[keepv], dg)
            gen_t = out_targets[eidx]
            gen_p = np.repeat(base[keepv], dg)
            gen_s = np.repeat(v[keepv], dg)
            gen_pos = np.repeat(sel[idx][keepv], dg)
    else:
        # Selective: propagation basis is the post-write state.
        eidx = _edge_indices(start, deg)
        gen_t = out_targets[eidx]
        gen_p = algorithm.propagate_arrays(np.repeat(new[idx], deg), out_weights[eidx])
        gen_s = np.repeat(v, deg)
        gen_pos = np.repeat(sel[idx], deg)
    sw.events_processed = int(sel.shape[0])
    sw.vertex_reads = int(sel.shape[0])
    sw.vertex_writes = int(tc.shape[0])
    sw.edges_read = int(deg.sum())
    sw.events_generated = int(gen_t.shape[0])
    return sel[idx], gen_t, gen_p, gen_s, gen_pos


_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def delete_shard_kernel(
    ctx: dict,
    sel: np.ndarray,
    targets: np.ndarray,
    payloads: np.ndarray,
    flags: np.ndarray,
    sources: np.ndarray,
    sw: RoundWork,
):
    """One engine's recovery-phase work over its rows of the round batch.

    Resolves duplicate target groups with the same first-qualifying-event
    rule as the vectorized oracle (groups never span engines — a vertex
    lives in exactly one shard), resets impacted vertices, and expands
    delete propagation. Same context/selection conventions as
    :func:`regular_shard_kernel`; returns
    ``(win_global, discarded, gen_t, gen_p, gen_s, gen_pos)``.
    """
    n_local = int(sel.shape[0])
    if n_local == 0:
        return _EMPTY_I, 0, _EMPTY_I, _EMPTY_F, _EMPTY_I, _EMPTY_I
    algorithm = ctx["algorithm"]
    policy = ctx["policy"]
    states = ctx["states"]
    offsets = ctx["offsets"]
    out_targets = ctx["out_targets"]
    out_weights = ctx["out_weights"]
    identity = algorithm.identity
    dap = policy is DeletePolicy.DAP
    ts = targets[sel]
    st = states[ts]
    cond = st != identity
    if dap:
        cond &= ctx["dependency"][ts] == sources[sel]
    if policy is DeletePolicy.VAP:
        cond &= ~algorithm.more_progressed_arrays(st, payloads[sel])
    gfirst = np.empty(n_local, dtype=bool)
    gfirst[0] = True
    np.not_equal(ts[1:], ts[:-1], out=gfirst[1:])
    gstarts = np.flatnonzero(gfirst)
    pos = np.where(cond, np.arange(n_local), n_local)
    win = np.minimum.reduceat(pos, gstarts)
    win = win[win < np.append(gstarts[1:], n_local)]
    n_win = int(win.shape[0])
    v = ts[win]
    pre = st[win]
    # Reset (tag) the impacted vertices — Algorithm 4, line 11.
    states[v] = identity
    if dap:
        ctx["dependency"][v] = NO_SOURCE
    win_global = sel[win]
    start_all = offsets[v]
    deg_all = offsets[v + 1] - start_all
    sub = np.flatnonzero(deg_all > 0)
    vs = v[sub]
    start = start_all[sub]
    deg = deg_all[sub]
    total = int(deg.sum())
    eidx = _edge_indices(start, deg)
    if policy is DeletePolicy.BASE:
        # BASE carries no value (Algorithm 4 queues <v, 0>).
        gen_p = np.zeros(total, dtype=np.float64)
    else:
        # VAP/DAP carry the contribution computed from the
        # pre-reset state (§5.1, §5.2).
        gen_p = algorithm.propagate_arrays(np.repeat(pre[sub], deg), out_weights[eidx])
    gen_t = out_targets[eidx]
    gen_s = np.repeat(vs, deg)
    gen_pos = np.repeat(win_global[sub], deg)
    sw.events_processed = n_local
    sw.vertex_reads = n_local
    sw.vertex_writes = n_win
    sw.edges_read = total
    sw.events_generated = total
    return win_global, n_local - n_win, gen_t, gen_p, gen_s, gen_pos


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------
class ShardWorkerError(RuntimeError):
    """A shard worker process failed or died mid-protocol."""


class ThreadShardExecutor:
    """Persistent shard thread pool (``backend="thread"``).

    One pool per engine core, reused across every round, phase, and
    streaming batch of the run — previously a ``ThreadPoolExecutor`` was
    created and torn down per kernel invocation — and shut down
    deterministically by ``EngineCore.close()`` (or its GC finalizer on
    abandoned engines, covering exception paths).
    """

    backend = "thread"

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
            if self.workers > 1
            else None
        )
        self._closed = False

    @property
    def pool(self) -> Optional[ThreadPoolExecutor]:
        """The raw pool (None = serial), also used for parallel drains."""
        return self._pool

    def run_tasks(self, tasks):
        return _run_tasks(self._pool, tasks)

    def alive(self) -> bool:
        return not self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _build_worker_context(payload: dict, cache) -> dict:
    """Materialize a kernel context from a bind payload (worker side)."""
    specs = payload["arrays"]
    cache.retain(spec["name"] for spec in specs.values() if spec is not None)
    arrays = {
        key: (cache.attach(spec) if spec is not None else None)
        for key, spec in specs.items()
    }
    return {"algorithm": payload["algorithm"], "policy": payload["policy"], **arrays}


def _process_worker_main(conn) -> None:
    """Entry point of one shard worker process (``spawn`` start method).

    Serves a tiny request/reply protocol on its pipe: ``bind`` (attach the
    shared arrays and cache the algorithm/policy), ``round`` (run the
    kernel for each assigned shard), ``unbind`` (drop attachments when the
    pool is parked in the warm cache), ``close``. Any kernel exception is
    shipped back as a formatted traceback instead of killing the worker.
    """
    from repro.core.shm import AttachmentCache

    cache = AttachmentCache()
    ctx: Optional[dict] = None
    clock = time.perf_counter
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "close":
                try:
                    conn.send(("ok",))
                except (BrokenPipeError, OSError):
                    pass
                break
            try:
                if op == "bind":
                    ctx = _build_worker_context(message[1], cache)
                    reply = ("ok",)
                elif op == "unbind":
                    ctx = None
                    cache.close_all()
                    reply = ("ok",)
                elif op == "round":
                    _, kind, jobs, batch_arrays, timed = message
                    kernel = (
                        regular_shard_kernel
                        if kind == "regular"
                        else delete_shard_kernel
                    )
                    out = []
                    for shard_id, sel in jobs:
                        sw = RoundWork()
                        t0 = clock() if timed else 0.0
                        result = kernel(ctx, sel, *batch_arrays, sw)
                        t1 = clock() if timed else 0.0
                        out.append((shard_id, result, sw, t0, t1))
                    reply = ("ok", out)
                else:
                    reply = ("error", f"unknown worker op {op!r}")
            except BaseException:
                reply = ("error", traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        cache.close_all()
        conn.close()


class ProcessShardExecutor:
    """Persistent worker-process pool (``backend="process"``).

    Spawns ``workers`` long-lived processes, each holding attachments to
    the engine's shared-memory arrays between rounds. Shard *s* of an
    *n*-engine round runs on worker ``s % workers``; replies are
    reassembled by shard id, so result order — and therefore the canonical
    merges — is independent of worker scheduling. The executor never
    creates or unlinks segments; a dead worker at most costs its pipe, and
    segment cleanup stays entirely with the main process.
    """

    backend = "process"

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        ctx = multiprocessing.get_context("spawn")
        self._procs = []
        self._conns = []
        self._closed = False
        for index in range(self.workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_process_worker_main,
                args=(child,),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)

    @property
    def pool(self) -> None:
        """Queue drains run in the main process on this backend."""
        return None

    def alive(self) -> bool:
        return not self._closed and all(proc.is_alive() for proc in self._procs)

    # ------------------------------------------------------------------
    def _send(self, index: int, message) -> None:
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(f"shard worker {index} died: {exc}") from exc

    def _recv(self, index: int):
        try:
            reply = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerError(f"shard worker {index} died: {exc}") from exc
        if reply[0] == "error":
            raise ShardWorkerError(f"shard worker {index} failed:\n{reply[1]}")
        return reply

    def _broadcast(self, message) -> None:
        for index in range(self.workers):
            self._send(index, message)
        for index in range(self.workers):
            self._recv(index)

    # ------------------------------------------------------------------
    def bind(self, payload: dict) -> None:
        """Ship the attach recipe + algorithm/policy to every worker."""
        self._broadcast(("bind", payload))

    def unbind(self) -> None:
        """Drop worker attachments (before parking in the warm cache)."""
        self._broadcast(("unbind",))

    def run_round(self, kind: str, num_engines: int, sels, batch_arrays, timed: bool):
        """Execute one round's shard kernels; results keyed by shard id."""
        jobs: List[list] = [[] for _ in range(self.workers)]
        for shard_id in range(num_engines):
            jobs[shard_id % self.workers].append((shard_id, sels[shard_id]))
        for index in range(self.workers):
            self._send(index, ("round", kind, jobs[index], batch_arrays, timed))
        results = [None] * num_engines
        works = [None] * num_engines
        times = [(0.0, 0.0)] * num_engines
        for index in range(self.workers):
            reply = self._recv(index)
            for shard_id, result, sw, t0, t1 in reply[1]:
                results[shard_id] = result
                works[shard_id] = sw
                times[shard_id] = (t0, t1)
        return results, works, times

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for conn, proc in zip(self._conns, self._procs):
            if proc.is_alive():
                try:
                    conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


# Warm pool cache: spawning a process pool costs interpreter startup per
# worker, so idle pools are parked here (keyed by width) instead of torn
# down, and revived for the next engine core of the same shape. Parked
# pools hold no attachments (release_* unbinds first).
_PROCESS_POOL_CACHE: Dict[int, List[ProcessShardExecutor]] = {}


def acquire_shard_executor(backend: str, workers: int):
    """Create (or revive from the warm cache) an executor for ``backend``."""
    if backend == "process":
        cached = _PROCESS_POOL_CACHE.get(workers)
        while cached:
            executor = cached.pop()
            if executor.alive():
                if METRICS.enabled:
                    METRICS.record_shard_pool("process", "reuse", workers)
                return executor
            executor.close()
        executor = ProcessShardExecutor(workers)
        if METRICS.enabled:
            METRICS.record_shard_pool("process", "spawn", executor.workers)
        return executor
    executor = ThreadShardExecutor(workers)
    if METRICS.enabled:
        METRICS.record_shard_pool("thread", "spawn", executor.workers)
    return executor


def release_shard_executor(executor) -> None:
    """Return an executor at end of run: park process pools, close threads."""
    if executor.backend != "process":
        executor.close()
        return
    if not executor.alive():
        executor.close()
        return
    try:
        executor.unbind()
    except ShardWorkerError:
        executor.close()
        return
    _PROCESS_POOL_CACHE.setdefault(executor.workers, []).append(executor)


def _shutdown_executor_cache() -> None:
    for executors in _PROCESS_POOL_CACHE.values():
        while executors:
            executors.pop().close()


atexit.register(_shutdown_executor_cache)


def _run_shard_round(executor, kind, ctx, sels, batch, shard_works, timed, clock):
    """Run one round's shard kernels on ``executor``; per-shard order out.

    Thread backend: closures over the heap context run on the persistent
    pool, kernels filling ``shard_works`` in place. Process backend: one
    message per worker carries its shards' selections plus the round batch,
    and each worker's returned work vectors merge into ``shard_works``.
    Returns ``(results, task_times)`` indexed by shard id.
    """
    num_engines = len(sels)
    batch_arrays = (batch.targets, batch.payloads, batch.flags, batch.sources)
    if executor.backend == "process":
        results, works, times = executor.run_round(
            kind, num_engines, sels, batch_arrays, timed
        )
        for shard_id in range(num_engines):
            shard_works[shard_id].merge(works[shard_id])
        return results, times

    kernel = regular_shard_kernel if kind == "regular" else delete_shard_kernel

    def shard_task(sel, sw):
        def run():
            return kernel(ctx, sel, *batch_arrays, sw)

        return run

    tasks = [shard_task(sels[s], shard_works[s]) for s in range(num_engines)]
    task_times = [[0.0, 0.0] for _ in range(num_engines)]
    if timed:
        tasks = [
            _timed_task(task, slot, clock) for task, slot in zip(tasks, task_times)
        ]
    return executor.run_tasks(tasks), task_times


def _thread_kernel_context(core) -> dict:
    """Kernel context over the core's heap arrays (thread backend)."""
    return {
        "algorithm": core.algorithm,
        "policy": core.policy,
        "states": core.states,
        "dependency": core.dependency,
        "prop_factor": core._prop_factor,
        "offsets": core.csr.out_offsets,
        "out_targets": core.csr.out_targets,
        "out_weights": core.csr.out_weights,
    }


# ----------------------------------------------------------------------
# Sharded event-loop drivers
# ----------------------------------------------------------------------
def run_regular_sharded(core, group: ShardedQueueGroup, phase: PhaseStats) -> None:
    """Computation phase over parallel shards (Algorithm 1 on 8 engines).

    One round: each engine drains its queue; drains merge in canonical
    order; each engine reduces + expands its own vertices' frontier on the
    core's persistent executor (disjoint rows of the shared state arrays —
    heap-shared across threads or shm-shared across worker processes);
    generated events merge back in producer drain-position order and route
    through the inter-engine channel. Work accounting runs on the merged
    round so the per-round vectors equal the single-engine vectorized
    kernel's.
    """
    from repro.core.engine import MAX_ROUNDS

    offsets = core.csr.out_offsets
    page_bytes = core.config.dram_page_bytes
    max_rows = core.config.scheduler_rows_per_round
    num_engines = group.num_engines

    executor = core.shard_executor()
    if executor.backend == "process":
        executor.bind(core._process_bind_payload())
        ctx = None
    else:
        ctx = _thread_kernel_context(core)
    pool = executor.pool

    tracer = core.tracer
    rounds = 0
    while group.pending():
        rounds += 1
        if rounds > MAX_ROUNDS:
            raise RuntimeError("engine exceeded MAX_ROUNDS; non-termination?")
        work = phase.new_round()
        shard_works = [RoundWork() for _ in range(num_engines)]
        phase.shard_rounds.append(shard_works)
        round_span = None
        if tracer.enabled:
            round_span = tracer.start("round", occupancy_start=group.occupancy())
            noc_before = _noc_snapshot(phase)
        m_t0 = METRICS.clock() if METRICS.enabled else 0.0
        try:
            if not group.active_pending():
                group.activate_next_slice(work)
            batch, starts = group.drain_round_merged(max_rows, pool)
            k = len(batch)
            if k == 0:
                continue
            t = batch.targets
            seg_start = np.zeros(k, dtype=bool)
            seg_start[starts] = True
            core._account_vertex_batch_arrays(t, seg_start, work, page_bytes)
            work.events_processed += k
            work.vertex_reads += k

            owner = group.shard_of[t]
            sels = [np.flatnonzero(owner == s) for s in range(num_engines)]
            results, task_times = _run_shard_round(
                executor,
                "regular",
                ctx,
                sels,
                batch,
                shard_works,
                timed=round_span is not None,
                clock=getattr(tracer, "clock", None),
            )
            if round_span is not None:
                for s in range(num_engines):
                    tracer.emit(
                        "engine",
                        f"engine-{s}",
                        task_times[s][0],
                        task_times[s][1],
                        parent=round_span,
                        engine=s,
                        **work_attrs(shard_works[s]),
                    )
            work.vertex_writes += sum(sw.vertex_writes for sw in shard_works)
            work.edges_read += sum(sw.edges_read for sw in shard_works)

            prop_pos = np.concatenate([r[0] for r in results])
            if prop_pos.shape[0]:
                gidx = np.sort(prop_pos)
                v = t[gidx]
                start = offsets[v]
                deg = offsets[v + 1] - start
                row_ids = np.searchsorted(starts, gidx, side="right")
                core._account_edge_batches(start, start + deg, row_ids, work, page_bytes)

            gen_pos = np.concatenate([r[4] for r in results])
            n_gen = int(gen_pos.shape[0])
            if n_gen:
                order = np.argsort(gen_pos, kind="stable")
                generated = EventBatch(
                    np.concatenate([r[1] for r in results])[order],
                    np.concatenate([r[2] for r in results])[order],
                    np.zeros(n_gen, dtype=np.int64),
                    np.concatenate([r[3] for r in results])[order],
                )
                work.events_generated += n_gen
                group.route_generated(generated, work, phase)
        finally:
            if round_span is not None:
                tracer.end(
                    round_span,
                    **work_attrs(work),
                    occupancy_end=group.occupancy(),
                    **_noc_delta_attrs(phase, noc_before),
                )
            if METRICS.enabled:
                METRICS.record_round(work, METRICS.clock() - m_t0, group.occupancy())
                METRICS.record_engine_work(shard_works)


def run_delete_sharded(
    core, group: ShardedQueueGroup, phase: PhaseStats
) -> List[int]:
    """Recovery phase over parallel shards (Algorithm 4 on 8 engines).

    Per-engine tasks run :func:`delete_shard_kernel` on the core's
    persistent executor; merging follows the same canonical orders as the
    regular driver. Returns the impacted list in the oracle's order
    (ascending vertex id per round).
    """
    from repro.core.engine import MAX_ROUNDS

    offsets = core.csr.out_offsets
    page_bytes = core.config.dram_page_bytes
    max_rows = core.config.scheduler_rows_per_round
    num_engines = group.num_engines

    executor = core.shard_executor()
    if executor.backend == "process":
        executor.bind(core._process_bind_payload())
        ctx = None
    else:
        ctx = _thread_kernel_context(core)
    pool = executor.pool

    tracer = core.tracer
    impacted: List[int] = []
    rounds = 0
    while group.pending():
        rounds += 1
        if rounds > MAX_ROUNDS:
            raise RuntimeError("delete phase exceeded MAX_ROUNDS")
        work = phase.new_round()
        shard_works = [RoundWork() for _ in range(num_engines)]
        phase.shard_rounds.append(shard_works)
        round_span = None
        if tracer.enabled:
            round_span = tracer.start("round", occupancy_start=group.occupancy())
            noc_before = _noc_snapshot(phase)
        m_t0 = METRICS.clock() if METRICS.enabled else 0.0
        try:
            if not group.active_pending():
                group.activate_next_slice(work)
            batch, starts = group.drain_round_merged(max_rows, pool)
            k = len(batch)
            if k == 0:
                continue
            t = batch.targets
            seg_start = np.zeros(k, dtype=bool)
            seg_start[starts] = True
            core._account_vertex_batch_arrays(t, seg_start, work, page_bytes)
            work.events_processed += k
            work.vertex_reads += k

            owner = group.shard_of[t]
            sels = [np.flatnonzero(owner == s) for s in range(num_engines)]
            results, task_times = _run_shard_round(
                executor,
                "delete",
                ctx,
                sels,
                batch,
                shard_works,
                timed=round_span is not None,
                clock=getattr(tracer, "clock", None),
            )
            if round_span is not None:
                for s in range(num_engines):
                    tracer.emit(
                        "engine",
                        f"engine-{s}",
                        task_times[s][0],
                        task_times[s][1],
                        parent=round_span,
                        engine=s,
                        **work_attrs(shard_works[s]),
                    )
            phase.deletes_discarded += sum(r[1] for r in results)
            win_all = np.concatenate([r[0] for r in results])
            n_win = int(win_all.shape[0])
            work.vertex_writes += n_win
            phase.vertices_reset += n_win
            work.edges_read += sum(sw.edges_read for sw in shard_works)
            if n_win:
                win_sorted = np.sort(win_all)
                v = t[win_sorted]
                impacted.extend(v.tolist())
                start_all = offsets[v]
                deg_all = offsets[v + 1] - start_all
                sub = np.flatnonzero(deg_all > 0)
                if sub.shape[0]:
                    start = start_all[sub]
                    deg = deg_all[sub]
                    row_ids = np.searchsorted(starts, win_sorted[sub], side="right")
                    core._account_edge_batches(
                        start, start + deg, row_ids, work, page_bytes
                    )

            gen_pos = np.concatenate([r[5] for r in results])
            n_gen = int(gen_pos.shape[0])
            if n_gen:
                order = np.argsort(gen_pos, kind="stable")
                generated = EventBatch(
                    np.concatenate([r[2] for r in results])[order],
                    np.concatenate([r[3] for r in results])[order],
                    np.ones(n_gen, dtype=np.int64),
                    np.concatenate([r[4] for r in results])[order],
                )
                work.events_generated += n_gen
                group.route_generated(generated, work, phase)
        finally:
            if round_span is not None:
                tracer.end(
                    round_span,
                    **work_attrs(work),
                    occupancy_end=group.occupancy(),
                    **_noc_delta_attrs(phase, noc_before),
                )
            if METRICS.enabled:
                METRICS.record_round(work, METRICS.clock() - m_t0, group.occupancy())
                METRICS.record_engine_work(shard_works)
    return impacted
