"""Sharded multi-engine execution over graph slices (§4.7, Table 1).

The paper's accelerator runs **8 event-driven engines in parallel**: the
graph is sliced (PuLP edge-cut — here :func:`repro.graph.partition.
partition_graph`), each engine owns one slice's vertices and its own
coalescing queue, and events crossing slices travel through the 16×16
crossbar NoC (§4.4). This module reproduces that organization on the
vectorized SoA substrate:

* :class:`ShardedQueueGroup` — one :class:`~repro.core.queue.VectorQueue`
  per engine plus the vertex→engine map, presenting the same queue
  interface the orchestration layers already use;
* :class:`InterEngineChannel` — cross-engine event routing with NoC flit
  and contention accounting via :class:`repro.sim.noc.CrossbarModel`;
* :func:`run_regular_sharded` / :func:`run_delete_sharded` — the two
  event-loop kernels with per-engine work running concurrently on a
  thread pool (the NumPy kernels dominate and vertex sets are disjoint,
  so shard tasks never touch the same state).

**Determinism contract.** The sharded backend is *bit-identical* to the
single-engine vectorized path — final states, per-round
:class:`~repro.core.metrics.RoundWork` vectors, phase extras, and queue
lifetime statistics — for any shard assignment and any worker count. Each
round, per-engine drains are merged into one batch in canonical
shard-then-vertex order (vertex ids are globally sorted; every vertex
lives in exactly one shard, so this is simultaneously ascending-vertex
order — the oracle's drain order), per-engine generated events are merged
back in the producing vertex's drain position order (the oracle's
generation order), and cross-shard deliveries coalesce into each
destination queue in that fixed order regardless of which worker finished
first. Because floating-point reduction order is preserved exactly,
results do not drift by even one ulp (``tests/test_sharded_parity.py``).

Parallelism is thread-based: the per-shard NumPy kernels release or spend
little time under the GIL, and shards write disjoint rows of the shared
state arrays (the "shared-memory state arrays" organization — a process
pool over the same arrays is a possible future extension; the merge
contract above is what makes either safe).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
import os
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.events import NO_SOURCE, Event, EventBatch
from repro.core.metrics import PhaseStats, RoundWork
from repro.core.policies import DeletePolicy
from repro.core.queue import VectorQueue
from repro.graph.partition import extend_assignment
from repro.obs.metrics import REGISTRY as METRICS
from repro.obs.tracer import work_attrs
from repro.sim.noc import CrossbarModel

from repro.algorithms.base import AlgorithmKind


def _default_workers(num_engines: int) -> int:
    return max(1, min(num_engines, os.cpu_count() or 1))


@contextmanager
def _shard_pool(workers: int):
    """A bounded thread pool for one kernel invocation (or None = serial)."""
    if workers <= 1:
        yield None
        return
    pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-shard")
    try:
        yield pool
    finally:
        pool.shutdown(wait=True)


def _run_tasks(pool: Optional[ThreadPoolExecutor], tasks):
    """Run thunks (serially or on ``pool``), returning results in task order.

    Collecting results in submission order — never completion order — is
    one half of the determinism contract; the other half is the canonical
    merge the callers apply to those results.
    """
    if pool is None:
        return [task() for task in tasks]
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def _timed_task(task, slot, clock):
    """Wrap a shard thunk to record its wall-clock window into ``slot``.

    Only used when tracing is enabled; ``perf_counter`` is monotonic
    across threads, so worker-side stamps compare with the main thread's.
    """

    def run():
        slot[0] = clock()
        try:
            return task()
        finally:
            slot[1] = clock()

    return run


def _noc_snapshot(phase: PhaseStats):
    return (
        phase.noc_events_local,
        phase.noc_events_remote,
        phase.noc_flits,
        phase.noc_cycles,
    )


def _noc_delta_attrs(phase: PhaseStats, snapshot) -> dict:
    return {
        "noc_events_local": phase.noc_events_local - snapshot[0],
        "noc_events_remote": phase.noc_events_remote - snapshot[1],
        "noc_flits": phase.noc_flits - snapshot[2],
        "noc_cycles": phase.noc_cycles - snapshot[3],
    }


class InterEngineChannel:
    """Cross-engine event traffic accounting (§4.4 crossbar, §4.7 slices).

    Every generated event is delivered either to the producing engine's own
    queue (local) or across the NoC to another engine (remote). Remote
    traffic is charged flits and contended cycles through
    :class:`~repro.sim.noc.CrossbarModel`, per round, and accumulated both
    here (lifetime, per-engine) and on the active
    :class:`~repro.core.metrics.PhaseStats` (``noc_*`` counters).
    """

    def __init__(self, config, event_bytes: int, num_engines: int):
        self.model = CrossbarModel(config, event_bytes=event_bytes)
        self.num_engines = num_engines
        self.events_local = 0
        self.events_remote = 0
        self.flits = 0
        self.cycles = 0.0
        self.sent = np.zeros(num_engines, dtype=np.int64)
        self.received = np.zeros(num_engines, dtype=np.int64)

    def record(
        self,
        src_engine: np.ndarray,
        dst_engine: np.ndarray,
        phase: Optional[PhaseStats] = None,
    ) -> None:
        """Account one round's deliveries (``src_engine`` < 0 = host-injected)."""
        remote = (src_engine >= 0) & (src_engine != dst_engine)
        n_remote = int(np.count_nonzero(remote))
        n_local = int(src_engine.shape[0]) - n_remote
        self.events_local += n_local
        self.events_remote += n_remote
        flits = 0
        cycles = 0.0
        if n_remote:
            estimate = self.model.round_cycles(n_remote)
            flits = estimate.flits
            cycles = estimate.contended_cycles
            self.flits += flits
            self.cycles += cycles
            np.add.at(self.sent, src_engine[remote], 1)
            np.add.at(self.received, dst_engine[remote], 1)
        if phase is not None:
            phase.noc_events_local += n_local
            phase.noc_events_remote += n_remote
            phase.noc_flits += flits
            phase.noc_cycles += cycles
        if METRICS.enabled:
            METRICS.record_noc(n_local, n_remote, flits)

    def stats(self) -> Dict[str, object]:
        """Lifetime channel counters."""
        return {
            "events_local": self.events_local,
            "events_remote": self.events_remote,
            "flits": self.flits,
            "cycles": self.cycles,
            "sent_per_engine": self.sent.tolist(),
            "received_per_engine": self.received.tolist(),
        }


class ShardedQueueGroup:
    """Per-engine :class:`VectorQueue` bank behind the single-queue API.

    The orchestration layers (static compute, streaming phases, seed
    buffers) talk to this group exactly as they talk to one queue: inserts
    are routed to the owning engine's queue by the vertex→engine map,
    preserving arrival order per vertex so per-cell coalescing folds in the
    oracle's order; drains are merged in canonical order by
    :meth:`drain_round_merged`.

    Lifetime statistics aggregate to the oracle's exactly: inserts and
    coalesces are disjoint sums, and peak occupancy is sampled across the
    whole bank after each logical insert — the same observation points the
    single queue uses.
    """

    def __init__(
        self,
        algorithm,
        config,
        policy: DeletePolicy = DeletePolicy.DAP,
        num_vertices: int = 0,
        shard_of: Optional[np.ndarray] = None,
        num_engines: int = 8,
        workers: Optional[int] = None,
    ):
        if num_engines < 1:
            raise ValueError("num_engines must be >= 1")
        self.algorithm = algorithm
        self.config = config
        self.policy = policy
        self.num_engines = num_engines
        if shard_of is None:
            shard_of = np.arange(num_vertices, dtype=np.int64) % num_engines
        shard_of = np.asarray(shard_of, dtype=np.int64).copy()
        if shard_of.shape[0] < num_vertices:
            shard_of = extend_assignment(shard_of, num_vertices, num_engines)
        if shard_of.size and (shard_of.max() >= num_engines or shard_of.min() < 0):
            raise ValueError("shard assignment references an engine out of range")
        self.shard_of = shard_of
        self.queues = [
            VectorQueue(algorithm, config, policy, num_vertices=num_vertices)
            for _ in range(num_engines)
        ]
        self.event_bytes = policy.event_bytes(config)
        self.channel = InterEngineChannel(config, self.event_bytes, num_engines)
        self.workers = workers if workers is not None else _default_workers(num_engines)
        self.active_slice = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    def set_delete_coalescing(self, enabled: bool) -> None:
        """Enable/disable delete coalescing on every engine's queue."""
        for queue in self.queues:
            queue.set_delete_coalescing(enabled)

    def engine_of(self, vertex: int) -> int:
        """Engine owning ``vertex``."""
        return int(self.shard_of[vertex])

    # ------------------------------------------------------------------
    # Insertion / routing
    # ------------------------------------------------------------------
    def _ensure_covers(self, num_vertices: int) -> None:
        """Extend the vertex→engine map for vertices created mid-stream.

        Uses the same deterministic lightest-shard rule as
        :func:`repro.graph.partition.extend_assignment`, so the engine-side
        plan (extended by :meth:`EngineCore.grow`) and this group agree on
        every new vertex's owner.
        """
        if num_vertices <= self.shard_of.shape[0]:
            return
        self.shard_of = extend_assignment(self.shard_of, num_vertices, self.num_engines)

    def insert(self, event: Event, work: RoundWork) -> None:
        """Insert one boxed event (seeding/tests; hot paths use batches)."""
        self.insert_batch(EventBatch.from_events([event]), work)

    def seed(self, events: Iterable[Event], work: RoundWork) -> None:
        """Bulk-insert initial events (the Initializer module, §4.6)."""
        self.insert_batch(EventBatch.from_events(list(events)), work)

    def insert_batch(self, batch: EventBatch, work: RoundWork) -> None:
        """Route ``batch`` to the owning engines' queues in shard order.

        Splitting by owner preserves per-vertex arrival order (every event
        for a vertex lands in the same sub-batch), so each queue's
        scatter-reduce folds the exact event sequence the single-queue
        oracle folds, and all ``work`` counters sum to the oracle's.
        """
        k = len(batch)
        if k == 0:
            return
        self._ensure_covers(int(batch.targets.max()) + 1)
        owner = self.shard_of[batch.targets]
        for engine_id in range(self.num_engines):
            mask = owner == engine_id
            if mask.any():
                self.queues[engine_id].insert_batch(batch.take(mask), work)
        self._sample_peak()

    def route_generated(
        self, batch: EventBatch, work: RoundWork, phase: PhaseStats
    ) -> None:
        """Deliver engine-generated events, charging inter-engine NoC traffic."""
        k = len(batch)
        if k == 0:
            return
        self._ensure_covers(int(batch.targets.max()) + 1)
        dst = self.shard_of[batch.targets]
        src = np.where(
            batch.sources >= 0, self.shard_of[np.maximum(batch.sources, 0)], -1
        )
        self.channel.record(src, dst, phase)
        for engine_id in range(self.num_engines):
            mask = dst == engine_id
            if mask.any():
                self.queues[engine_id].insert_batch(batch.take(mask), work)
        self._sample_peak()

    def _sample_peak(self) -> None:
        occupancy = self.occupancy()
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if METRICS.enabled:
            METRICS.record_queue_occupancy(occupancy, self.peak_occupancy)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pending(self) -> bool:
        """True when any engine's queue holds events."""
        return any(queue.pending() for queue in self.queues)

    def active_pending(self) -> bool:
        """True when the active slice holds events (per-engine queues are
        single-slice, so this equals :meth:`pending`)."""
        return self.pending()

    def activate_next_slice(self, work: Optional[RoundWork] = None) -> bool:
        """Single-slice no-op mirroring the oracle queue's behaviour."""
        return self.pending()

    def drain_round_merged(
        self, max_rows: Optional[int] = None, pool=None
    ) -> Tuple[EventBatch, np.ndarray]:
        """Drain every engine's queue and merge in canonical order.

        Per-engine drains run concurrently on ``pool``; the merge is a
        stable sort by target vertex id. Vertices are disjoint across
        engines, so this reconstructs exactly the single queue's drain
        order (cells first, then overflow events per target in arrival
        order), and the returned row starts are the global row boundaries.
        ``max_rows`` computes the allowed row window over the union of all
        engines' pending targets — the same window the oracle drains.
        """
        allowed: Optional[np.ndarray] = None
        row_width = self.config.queue_row_vertices
        if max_rows is not None:
            pending = [q.pending_targets() for q in self.queues]
            pending = [p for p in pending if p.size]
            if not pending:
                return EventBatch.empty(), np.empty(0, dtype=np.int64)
            rows = np.unique(np.concatenate(pending) // row_width)
            allowed = rows[:max_rows]

        scratch = [RoundWork() for _ in self.queues]

        def drain_task(queue, work):
            def run():
                return queue.drain_round(work, allowed_rows=allowed)

            return run

        parts = _run_tasks(
            pool, [drain_task(q, w) for q, w in zip(self.queues, scratch)]
        )
        batches = [batch for batch, _ in parts if len(batch)]
        if not batches:
            return EventBatch.empty(), np.empty(0, dtype=np.int64)
        merged = EventBatch.concat(batches)
        order = np.argsort(merged.targets, kind="stable")
        out = merged.take(order)
        out_rows = out.targets // row_width
        row_start = np.empty(len(out), dtype=bool)
        row_start[0] = True
        np.not_equal(out_rows[1:], out_rows[:-1], out=row_start[1:])
        return out, np.flatnonzero(row_start)

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Queued events across every engine's queue."""
        return sum(queue.occupancy() for queue in self.queues)

    def lifetime_stats(self) -> Dict[str, int]:
        """Lifetime counters, aggregated to match the single-queue oracle."""
        return {
            "total_inserts": sum(q.total_inserts for q in self.queues),
            "total_coalesces": sum(q.total_coalesces for q in self.queues),
            "peak_occupancy": self.peak_occupancy,
            "slice_switches": 0,
        }

    def channel_stats(self) -> Dict[str, object]:
        """Lifetime inter-engine NoC counters."""
        return self.channel.stats()


# ----------------------------------------------------------------------
# Sharded event-loop kernels
# ----------------------------------------------------------------------
def run_regular_sharded(core, group: ShardedQueueGroup, phase: PhaseStats) -> None:
    """Computation phase over parallel shards (Algorithm 1 on 8 engines).

    One round: each engine drains its queue; drains merge in canonical
    order; each engine reduces + expands its own vertices' frontier on the
    thread pool (disjoint rows of the shared state arrays); generated
    events merge back in producer drain-position order and route through
    the inter-engine channel. Work accounting runs on the merged round so
    the per-round vectors equal the single-engine vectorized kernel's.
    """
    from repro.core.engine import MAX_ROUNDS

    algorithm = core.algorithm
    states = core.states
    dependency = core.dependency
    track_dep = core.policy.tracks_dependency
    accumulative = algorithm.kind is AlgorithmKind.ACCUMULATIVE
    threshold = algorithm.propagation_threshold
    weight_scaled = algorithm.weight_scaled_propagation
    prop_factor = core._prop_factor
    offsets = core.csr.out_offsets
    out_targets = core.csr.out_targets
    out_weights = core.csr.out_weights
    page_bytes = core.config.dram_page_bytes
    max_rows = core.config.scheduler_rows_per_round
    edge_indices = core._edge_indices
    num_engines = group.num_engines

    def shard_task(sel: np.ndarray, batch: EventBatch, sw: RoundWork):
        def run():
            ts = batch.targets[sel]
            old = states[ts]
            new = algorithm.reduce_ufunc(old, batch.payloads[sel])
            changed = new != old
            tc = ts[changed]
            states[tc] = new[changed]
            if track_dep:
                dependency[tc] = batch.sources[sel][changed]
            prop = changed | ((batch.flags[sel] & 2) != 0)
            start_all = offsets[ts]
            deg_all = offsets[ts + 1] - start_all
            nz = prop & (deg_all > 0)
            idx = np.flatnonzero(nz)
            v = ts[idx]
            start = start_all[idx]
            deg = deg_all[idx]
            if accumulative:
                base = (new[idx] - old[idx]) * prop_factor[v]
                if weight_scaled:
                    eidx = edge_indices(start, deg)
                    values = np.repeat(base, deg) * out_weights[eidx]
                    keep = (values > threshold) | (values < -threshold)
                    gen_t = out_targets[eidx][keep]
                    gen_p = values[keep]
                    gen_s = np.repeat(v, deg)[keep]
                    gen_pos = np.repeat(sel[idx], deg)[keep]
                else:
                    keepv = (base > threshold) | (base < -threshold)
                    dg = deg[keepv]
                    eidx = edge_indices(start[keepv], dg)
                    gen_t = out_targets[eidx]
                    gen_p = np.repeat(base[keepv], dg)
                    gen_s = np.repeat(v[keepv], dg)
                    gen_pos = np.repeat(sel[idx][keepv], dg)
            else:
                # Selective: propagation basis is the post-write state.
                eidx = edge_indices(start, deg)
                gen_t = out_targets[eidx]
                gen_p = algorithm.propagate_arrays(
                    np.repeat(new[idx], deg), out_weights[eidx]
                )
                gen_s = np.repeat(v, deg)
                gen_pos = np.repeat(sel[idx], deg)
            sw.events_processed = int(sel.shape[0])
            sw.vertex_reads = int(sel.shape[0])
            sw.vertex_writes = int(tc.shape[0])
            sw.edges_read = int(deg.sum())
            sw.events_generated = int(gen_t.shape[0])
            return sel[idx], gen_t, gen_p, gen_s, gen_pos

        return run

    tracer = core.tracer
    rounds = 0
    with _shard_pool(group.workers) as pool:
        while group.pending():
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("engine exceeded MAX_ROUNDS; non-termination?")
            work = phase.new_round()
            shard_works = [RoundWork() for _ in range(num_engines)]
            phase.shard_rounds.append(shard_works)
            round_span = None
            if tracer.enabled:
                round_span = tracer.start(
                    "round", occupancy_start=group.occupancy()
                )
                noc_before = _noc_snapshot(phase)
            m_t0 = METRICS.clock() if METRICS.enabled else 0.0
            try:
                if not group.active_pending():
                    group.activate_next_slice(work)
                batch, starts = group.drain_round_merged(max_rows, pool)
                k = len(batch)
                if k == 0:
                    continue
                t = batch.targets
                seg_start = np.zeros(k, dtype=bool)
                seg_start[starts] = True
                core._account_vertex_batch_arrays(t, seg_start, work, page_bytes)
                work.events_processed += k
                work.vertex_reads += k

                owner = group.shard_of[t]
                tasks = [
                    shard_task(np.flatnonzero(owner == s), batch, shard_works[s])
                    for s in range(num_engines)
                ]
                if round_span is not None:
                    task_times = [[0.0, 0.0] for _ in range(num_engines)]
                    tasks = [
                        _timed_task(task, slot, tracer.clock)
                        for task, slot in zip(tasks, task_times)
                    ]
                results = _run_tasks(pool, tasks)
                if round_span is not None:
                    for s in range(num_engines):
                        tracer.emit(
                            "engine",
                            f"engine-{s}",
                            task_times[s][0],
                            task_times[s][1],
                            parent=round_span,
                            engine=s,
                            **work_attrs(shard_works[s]),
                        )
                work.vertex_writes += sum(sw.vertex_writes for sw in shard_works)
                work.edges_read += sum(sw.edges_read for sw in shard_works)

                prop_pos = np.concatenate([r[0] for r in results])
                if prop_pos.shape[0]:
                    gidx = np.sort(prop_pos)
                    v = t[gidx]
                    start = offsets[v]
                    deg = offsets[v + 1] - start
                    row_ids = np.searchsorted(starts, gidx, side="right")
                    core._account_edge_batches(start, start + deg, row_ids, work, page_bytes)

                gen_pos = np.concatenate([r[4] for r in results])
                n_gen = int(gen_pos.shape[0])
                if n_gen:
                    order = np.argsort(gen_pos, kind="stable")
                    generated = EventBatch(
                        np.concatenate([r[1] for r in results])[order],
                        np.concatenate([r[2] for r in results])[order],
                        np.zeros(n_gen, dtype=np.int64),
                        np.concatenate([r[3] for r in results])[order],
                    )
                    work.events_generated += n_gen
                    group.route_generated(generated, work, phase)
            finally:
                if round_span is not None:
                    tracer.end(
                        round_span,
                        **work_attrs(work),
                        occupancy_end=group.occupancy(),
                        **_noc_delta_attrs(phase, noc_before),
                    )
                if METRICS.enabled:
                    METRICS.record_round(
                        work, METRICS.clock() - m_t0, group.occupancy()
                    )


def run_delete_sharded(
    core, group: ShardedQueueGroup, phase: PhaseStats
) -> List[int]:
    """Recovery phase over parallel shards (Algorithm 4 on 8 engines).

    Per-engine tasks resolve their own targets' duplicate groups with the
    same first-qualifying-event rule as the vectorized oracle (groups never
    span engines — a vertex lives in exactly one shard), reset impacted
    vertices, and expand delete propagation; merging follows the same
    canonical orders as the regular kernel. Returns the impacted list in
    the oracle's order (ascending vertex id per round).
    """
    from repro.core.engine import MAX_ROUNDS

    algorithm = core.algorithm
    states = core.states
    dependency = core.dependency
    policy = core.policy
    identity = algorithm.identity
    offsets = core.csr.out_offsets
    out_targets = core.csr.out_targets
    out_weights = core.csr.out_weights
    page_bytes = core.config.dram_page_bytes
    base_policy = policy is DeletePolicy.BASE
    vap = policy is DeletePolicy.VAP
    dap = policy is DeletePolicy.DAP
    max_rows = core.config.scheduler_rows_per_round
    edge_indices = core._edge_indices
    num_engines = group.num_engines

    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)

    def shard_task(sel: np.ndarray, batch: EventBatch, sw: RoundWork):
        def run():
            n_local = int(sel.shape[0])
            if n_local == 0:
                return empty_i, 0, empty_i, empty_f, empty_i, empty_i
            ts = batch.targets[sel]
            st = states[ts]
            cond = st != identity
            if dap:
                cond &= dependency[ts] == batch.sources[sel]
            if vap:
                cond &= ~algorithm.more_progressed_arrays(st, batch.payloads[sel])
            gfirst = np.empty(n_local, dtype=bool)
            gfirst[0] = True
            np.not_equal(ts[1:], ts[:-1], out=gfirst[1:])
            gstarts = np.flatnonzero(gfirst)
            pos = np.where(cond, np.arange(n_local), n_local)
            win = np.minimum.reduceat(pos, gstarts)
            win = win[win < np.append(gstarts[1:], n_local)]
            n_win = int(win.shape[0])
            v = ts[win]
            pre = st[win]
            # Reset (tag) the impacted vertices — Algorithm 4, line 11.
            states[v] = identity
            if dap:
                dependency[v] = NO_SOURCE
            win_global = sel[win]
            start_all = offsets[v]
            deg_all = offsets[v + 1] - start_all
            sub = np.flatnonzero(deg_all > 0)
            vs = v[sub]
            start = start_all[sub]
            deg = deg_all[sub]
            total = int(deg.sum())
            eidx = edge_indices(start, deg)
            if base_policy:
                # BASE carries no value (Algorithm 4 queues <v, 0>).
                gen_p = np.zeros(total, dtype=np.float64)
            else:
                # VAP/DAP carry the contribution computed from the
                # pre-reset state (§5.1, §5.2).
                gen_p = algorithm.propagate_arrays(
                    np.repeat(pre[sub], deg), out_weights[eidx]
                )
            gen_t = out_targets[eidx]
            gen_s = np.repeat(vs, deg)
            gen_pos = np.repeat(win_global[sub], deg)
            sw.events_processed = n_local
            sw.vertex_reads = n_local
            sw.vertex_writes = n_win
            sw.edges_read = total
            sw.events_generated = total
            return win_global, n_local - n_win, gen_t, gen_p, gen_s, gen_pos

        return run

    tracer = core.tracer
    impacted: List[int] = []
    rounds = 0
    with _shard_pool(group.workers) as pool:
        while group.pending():
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("delete phase exceeded MAX_ROUNDS")
            work = phase.new_round()
            shard_works = [RoundWork() for _ in range(num_engines)]
            phase.shard_rounds.append(shard_works)
            round_span = None
            if tracer.enabled:
                round_span = tracer.start(
                    "round", occupancy_start=group.occupancy()
                )
                noc_before = _noc_snapshot(phase)
            m_t0 = METRICS.clock() if METRICS.enabled else 0.0
            try:
                if not group.active_pending():
                    group.activate_next_slice(work)
                batch, starts = group.drain_round_merged(max_rows, pool)
                k = len(batch)
                if k == 0:
                    continue
                t = batch.targets
                seg_start = np.zeros(k, dtype=bool)
                seg_start[starts] = True
                core._account_vertex_batch_arrays(t, seg_start, work, page_bytes)
                work.events_processed += k
                work.vertex_reads += k

                owner = group.shard_of[t]
                tasks = [
                    shard_task(np.flatnonzero(owner == s), batch, shard_works[s])
                    for s in range(num_engines)
                ]
                if round_span is not None:
                    task_times = [[0.0, 0.0] for _ in range(num_engines)]
                    tasks = [
                        _timed_task(task, slot, tracer.clock)
                        for task, slot in zip(tasks, task_times)
                    ]
                results = _run_tasks(pool, tasks)
                if round_span is not None:
                    for s in range(num_engines):
                        tracer.emit(
                            "engine",
                            f"engine-{s}",
                            task_times[s][0],
                            task_times[s][1],
                            parent=round_span,
                            engine=s,
                            **work_attrs(shard_works[s]),
                        )
                phase.deletes_discarded += sum(r[1] for r in results)
                win_all = np.concatenate([r[0] for r in results])
                n_win = int(win_all.shape[0])
                work.vertex_writes += n_win
                phase.vertices_reset += n_win
                work.edges_read += sum(sw.edges_read for sw in shard_works)
                if n_win:
                    win_sorted = np.sort(win_all)
                    v = t[win_sorted]
                    impacted.extend(v.tolist())
                    start_all = offsets[v]
                    deg_all = offsets[v + 1] - start_all
                    sub = np.flatnonzero(deg_all > 0)
                    if sub.shape[0]:
                        start = start_all[sub]
                        deg = deg_all[sub]
                        row_ids = np.searchsorted(starts, win_sorted[sub], side="right")
                        core._account_edge_batches(
                            start, start + deg, row_ids, work, page_bytes
                        )

                gen_pos = np.concatenate([r[5] for r in results])
                n_gen = int(gen_pos.shape[0])
                if n_gen:
                    order = np.argsort(gen_pos, kind="stable")
                    generated = EventBatch(
                        np.concatenate([r[2] for r in results])[order],
                        np.concatenate([r[3] for r in results])[order],
                        np.ones(n_gen, dtype=np.int64),
                        np.concatenate([r[4] for r in results])[order],
                    )
                    work.events_generated += n_gen
                    group.route_generated(generated, work, phase)
            finally:
                if round_span is not None:
                    tracer.end(
                        round_span,
                        **work_attrs(work),
                        occupancy_end=group.occupancy(),
                        **_noc_delta_attrs(phase, noc_before),
                    )
                if METRICS.enabled:
                    METRICS.record_round(
                        work, METRICS.clock() - m_t0, group.occupancy()
                    )
    return impacted
