"""JetStream: incremental evaluation over streaming graphs (§3.3–§3.5).

:class:`JetStreamEngine` drives a query over a
:class:`~repro.graph.dynamic.DynamicGraph` as update batches arrive. It
reuses :class:`~repro.core.engine.EngineCore` for all event processing and
adds the streaming orchestration:

* **Selective algorithms** (Algorithm 5): queue delete events from the
  deleted edges (``ProcessDeletesSelective``), run the recovery phase on
  the *old* graph (``ResetImpacted``), queue request events along the
  impacted vertices' in-edges plus their self events
  (``Reapproximate``), queue insertion events (``ProcessInserts``),
  switch to the new graph, and re-run the computation phase.
* **Accumulative algorithms** (Algorithm 6, Fig. 5): expand the mutation
  to all out-edges of every modified source (degree-dependent
  propagation), send the expansion as negative events, converge on the
  *intermediate* sink graph, then re-add the surviving/new edges as
  insertion events on the new graph and converge again.

The per-phase work metrics feed the architectural timing model
(:mod:`repro.sim.timing`); no timing is computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.base import Algorithm, AlgorithmKind, SourceContext
from repro.core.config import AcceleratorConfig
from repro.core.engine import EngineCore
from repro.core.events import NO_SOURCE, Event, EventBatch
from repro.core.metrics import RunMetrics
from repro.core.policies import DeletePolicy
from repro.graph.dynamic import DynamicGraph
from repro.obs.metrics import REGISTRY as METRICS
from repro.streams import UpdateBatch

Edge = Tuple[int, int, float]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


def _run_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``[start, start + length)`` index ranges.

    Expands per-vertex CSR runs into one flat gather index without a Python
    loop: equivalent to ``np.concatenate([np.arange(s, s + l) ...])``.
    """
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY_I64
    exclusive = np.cumsum(lengths) - lengths
    return np.repeat(starts - exclusive, lengths) + np.arange(total, dtype=np.int64)


def _interleave_mirrors(
    u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric-graph expansion: each edge followed by its mirror.

    Matches the scalar list construction exactly — original then reversed
    edge, interleaved in batch order, self-loops not mirrored.
    """
    mirror = u != v
    counts = mirror.astype(np.int64) + 1
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    ou = np.empty(total, dtype=np.int64)
    ov = np.empty(total, dtype=np.int64)
    ow = np.empty(total, dtype=np.float64)
    ou[starts] = u
    ov[starts] = v
    ow[starts] = w
    mirror_pos = starts[mirror] + 1
    ou[mirror_pos] = v[mirror]
    ov[mirror_pos] = u[mirror]
    ow[mirror_pos] = w[mirror]
    return ou, ov, ow


class _SeedBuffer:
    """Collects seed events and inserts them as one :class:`EventBatch`.

    The streaming orchestration computes seed payloads one edge at a time
    (Python-level stream decoding), but the queue insert is batched so the
    vectorized substrate coalesces the whole seed set with one
    scatter-reduce. Insertion order — and therefore every coalescing
    outcome and work counter — matches the former per-event inserts.
    """

    __slots__ = ("targets", "payloads", "flags", "sources")

    def __init__(self):
        self.targets: List[int] = []
        self.payloads: List[float] = []
        self.flags: List[int] = []
        self.sources: List[int] = []

    def add(self, target: int, payload: float, flags: int, source: int) -> None:
        self.targets.append(target)
        self.payloads.append(payload)
        self.flags.append(flags)
        self.sources.append(source)

    def flush(self, queue, work) -> None:
        if not self.targets:
            return
        queue.insert_batch(
            EventBatch.from_arrays(
                self.targets, self.payloads, self.flags, self.sources
            ),
            work,
        )
        self.targets, self.payloads = [], []
        self.flags, self.sources = [], []


@dataclass
class StreamingResult:
    """Outcome of one engine run (initial evaluation or one batch)."""

    states: np.ndarray
    metrics: RunMetrics
    graph_version: int
    #: Vertices reset during the recovery phase (selective only).
    impacted: List[int] = field(default_factory=list)
    #: Lifetime queue counters — identical across engine substrates; kept
    #: for the parity oracle.
    queue_stats: Optional[dict] = None

    @property
    def vertices_reset(self) -> int:
        """Number of vertices reset while recovering the approximation."""
        return len(self.impacted)


class JetStreamEngine:
    """Streaming query evaluation with incremental re-computation.

    Parameters
    ----------
    graph:
        The evolving graph. For algorithms with
        ``needs_symmetric=True`` (CC) the graph must be symmetric.
    algorithm:
        A DAIC :class:`~repro.algorithms.base.Algorithm`.
    config:
        Accelerator configuration (Table 1 defaults).
    policy:
        Deletion-propagation policy (§5). DAP is the paper's best
        performer and the default.
    engine:
        Substrate selection: ``auto`` (default — vectorized whenever the
        algorithm provides array hooks), ``vectorized``, ``sharded``
        (parallel multi-engine graph slices, Table 1 / §4.7), or
        ``scalar`` (the boxed-event reference oracle).
    num_engines:
        Parallel engine count for ``engine="sharded"`` (default 8).
    shard_workers:
        Worker-pool width for sharded execution (default: one per engine,
        capped at the CPU count; 1 forces serial shard execution).
    backend:
        Sharded execution backend: ``"thread"`` (persistent thread pool
        over the heap arrays) or ``"process"`` (worker processes over
        shared-memory segments — see repro.core.parallel). Results are
        bit-identical across backends.
    seed_pipeline:
        How streaming seed events (delete payloads, reapproximation
        requests, insertion seeds, net corrections) are computed:
        ``auto`` (default — batched array kernels whenever the algorithm
        ships vectorized hooks), ``array`` (force the array pipeline; the
        degree-aware hooks fall back to exact element-wise loops for
        algorithms without vectorized forms), or ``scalar`` (the original
        per-edge Python loop, kept verbatim as the equivalence oracle).
        Both pipelines produce bit-identical events, coalescing outcomes,
        and work counters.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
        policy: DeletePolicy = DeletePolicy.DAP,
        two_phase_accumulative: bool = False,
        engine: str = "auto",
        num_engines: int = 8,
        shard_workers: Optional[int] = None,
        backend: str = "thread",
        tracer=None,
        seed_pipeline: str = "auto",
    ):
        if algorithm.needs_symmetric and not graph.symmetric:
            raise ValueError(
                f"{algorithm.name} requires a symmetric graph "
                "(DynamicGraph(symmetric=True))"
            )
        #: Policy the caller asked for, before normalization. COMMONGRAPH
        #: requires a monotonic selective fixed point (a subgraph result
        #: must be a safe under-approximation that additions only improve);
        #: accumulative algorithms fall through to DAP, which their own
        #: normalization below narrows further to BASE.
        self.requested_policy = policy
        if (
            policy is DeletePolicy.COMMONGRAPH
            and algorithm.kind is AlgorithmKind.ACCUMULATIVE
        ):
            policy = DeletePolicy.DAP
        if algorithm.kind is AlgorithmKind.ACCUMULATIVE and policy is not DeletePolicy.BASE:
            # VAP/DAP only affect the selective recovery phase; accumulative
            # deletion uses negative events (§3.3). Normalize to BASE so the
            # event size accounting matches the narrower encoding.
            policy = DeletePolicy.BASE
        self.graph = graph
        self.algorithm = algorithm
        self.policy = policy
        #: Accumulative deletion flow selector. ``True`` runs the paper's
        #: literal two-phase Algorithm 6 (negate on the intermediate sink
        #: graph, converge, re-add, converge). ``False`` (default) coalesces
        #: each negative/positive seed pair into one *net* correction event
        #: and converges once on the new graph — the same fixed point (the
        #: correction is a linear-operator series either way), but without
        #: launching two near-canceling full-magnitude waves, which at
        #: stand-in graph scale would swamp the incremental advantage the
        #: paper measures at 45M–1.46B-edge scale. See DESIGN.md §4.
        self.two_phase_accumulative = two_phase_accumulative
        if seed_pipeline not in ("auto", "array", "scalar"):
            raise ValueError(
                f"unknown seed_pipeline {seed_pipeline!r}; "
                "expected 'auto', 'array', or 'scalar'"
            )
        self.seed_pipeline = seed_pipeline
        self._array_seeds = seed_pipeline == "array" or (
            seed_pipeline == "auto" and algorithm.supports_vectorized
        )
        # Selective algorithms with a vectorized propagate ignore the source
        # context entirely, so the seed pipeline can skip building it; the
        # exact out-weight-sum fold is only needed when propagate_ctx_arrays
        # actually reads that column.
        self._selective_fast = (
            algorithm.kind is AlgorithmKind.SELECTIVE
            and type(algorithm).propagate_arrays is not Algorithm.propagate_arrays
        )
        self._needs_weight_sums = (
            not self._selective_fast and algorithm.ctx_needs_weight_sums
        )
        self.core = EngineCore(
            algorithm,
            config or AcceleratorConfig(),
            policy,
            engine=engine,
            num_engines=num_engines,
            shard_workers=shard_workers,
            backend=backend,
            tracer=tracer,
        )
        self._initialized = False
        self.history: List[StreamingResult] = []

    def close(self) -> None:
        """Release the worker pool and any shared-memory segments.

        Safe to skip for throwaway engines — a GC finalizer does the same
        cleanup — but explicit close (or the context-manager form) makes
        teardown deterministic.
        """
        self.core.close()

    def __enter__(self) -> "JetStreamEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The observability hook shared with the engine core."""
        return self.core.tracer

    @property
    def states(self) -> np.ndarray:
        """Current (converged) vertex states — read-only view."""
        return self.core.states

    def query_result(self) -> np.ndarray:
        """Copy of the current converged query result."""
        return self.core.states.copy()

    # ------------------------------------------------------------------
    # Initial (static) evaluation — §4.6.1
    # ------------------------------------------------------------------
    def initial_compute(self) -> StreamingResult:
        """Evaluate the query on the current graph from initial state."""
        core = self.core
        tracer = core.tracer
        csr = self.graph.snapshot()
        core.allocate(csr.num_vertices)
        core.bind_graph(csr)
        metrics = RunMetrics()
        phase = metrics.phase("initial")
        queue = core.new_queue()
        run_t0 = METRICS.clock() if METRICS.enabled else 0.0
        with tracer.span(
            "run",
            "initial",
            algorithm=self.algorithm.name,
            engine_mode=core.engine_mode,
            num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
            graph_version=self.graph.version,
            stream_records=0,
        ):
            with tracer.phase(phase):
                work = phase.new_round()
                with tracer.round(work, queue), METRICS.round_scope(work, queue):
                    core.seed_initial(queue, work)
                core.run_regular(queue, phase)
            if METRICS.enabled:
                METRICS.record_phase(phase)
        if METRICS.enabled:
            METRICS.record_run(
                "initial",
                METRICS.clock() - run_t0,
                num_vertices=csr.num_vertices,
                num_edges=csr.num_edges,
            )
        self._initialized = True
        result = StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    # Incremental evaluation — §4.6.2
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> StreamingResult:
        """Apply one update batch and incrementally re-converge the query.

        The batch's deletions must exist in the current graph and its
        insertions must be fresh edges (:class:`repro.streams.UpdateBatch`
        semantics). The graph is mutated as a side effect (version + 1).
        """
        if not self._initialized:
            raise RuntimeError("call initial_compute() before apply_batch()")
        batch.validate()
        self._check_batch(batch)
        run_t0 = METRICS.clock() if METRICS.enabled else 0.0
        with self.tracer.span(
            "run",
            "batch",
            algorithm=self.algorithm.name,
            engine_mode=self.core.engine_mode,
            batch_index=len(self.history) - 1,
            insertions=len(batch.insertions),
            deletions=len(batch.deletions),
            stream_records=batch.size,
        ):
            if self.algorithm.kind is AlgorithmKind.SELECTIVE:
                if self.policy.converts_deletions and batch.deletions:
                    # Deletion-to-addition conversion: no recovery phase at
                    # all. Insertion-only batches take the ordinary selective
                    # flow (its delete phase is a no-op on an empty set).
                    result = self._apply_commongraph(batch)
                else:
                    result = self._apply_selective(batch)
            else:
                result = self._apply_accumulative(batch)
        if METRICS.enabled:
            METRICS.record_run(
                "batch",
                METRICS.clock() - run_t0,
                stream_records=batch.size,
                num_vertices=self.graph.num_vertices,
            )
        self.history.append(result)
        return result

    # -- selective flow (Algorithm 5) ----------------------------------
    def _apply_selective(self, batch: UpdateBatch) -> StreamingResult:
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()
        old_csr = self.graph.snapshot()
        core.bind_graph(old_csr)

        if self._array_seeds:
            deletions = self._directed_deletions_arrays(batch)
            insertions = self._directed_insertions_arrays(batch)
        else:
            deletions = self._directed_deletions(batch)
            insertions = self._directed_insertions(batch)

        # Phase 1: ProcessDeletesSelective + ResetImpacted on the old graph.
        tracer = core.tracer
        delete_phase = metrics.phase("delete-propagation")
        queue = core.new_queue()
        queue.set_delete_coalescing(self.policy.coalesces_deletes)
        with tracer.phase(delete_phase):
            seed_work = delete_phase.new_round()
            with tracer.round(seed_work, queue), METRICS.round_scope(
                seed_work, queue
            ):
                if self._array_seeds:
                    self._seed_deletes_array(queue, seed_work, old_csr, deletions)
                else:
                    buf = _SeedBuffer()
                    for u, v, w in deletions:
                        # The stream reader computes the payload from the previous
                        # converged source state (§3.3); BASE events carry no value.
                        if self.policy is DeletePolicy.BASE:
                            payload = 0.0
                        else:
                            payload = algorithm.propagate(float(core.states[u]), w, SourceContext.of(old_csr, u))
                        seed_work.vertex_reads += 1
                        seed_work.events_generated += 1
                        buf.add(v, payload, 1, u)
                    buf.flush(queue, seed_work)
            impacted = core.run_delete(queue, delete_phase)
        if METRICS.enabled:
            METRICS.record_phase(delete_phase)
        queue.set_delete_coalescing(True)

        # Mutate the graph; switch to the new structure.
        self._mutate_graph(batch)
        new_csr = self.graph.snapshot()
        core.grow(new_csr.num_vertices)
        core.bind_graph(new_csr)

        # Phase 2: Reapproximate + ProcessInserts + recompute.
        compute_phase = metrics.phase("reevaluation")
        with tracer.phase(compute_phase):
            work = compute_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                if self._array_seeds:
                    self._seed_reapprox_array(
                        queue, work, compute_phase, new_csr, impacted, insertions
                    )
                else:
                    identity = algorithm.identity
                    buf = _SeedBuffer()
                    for i in impacted:
                        self_payload = algorithm.self_event(i)
                        if self_payload is not None:
                            buf.add(i, self_payload, 0, NO_SOURCE)
                            work.events_generated += 1
                        sources = new_csr.in_neighbors(i)
                        for u in sources:
                            buf.add(int(u), identity, 2, NO_SOURCE)
                        n_req = int(sources.shape[0])
                        work.events_generated += n_req
                        compute_phase.request_events += n_req
                    for u, v, w in insertions:
                        payload = algorithm.propagate(float(core.states[u]), w, SourceContext.of(new_csr, u))
                        work.vertex_reads += 1
                        work.events_generated += 1
                        buf.add(v, payload, 0, u)
                    buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_csr.num_vertices, new_csr.num_vertices)
            core.run_regular(queue, compute_phase)
        if METRICS.enabled:
            METRICS.record_phase(compute_phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            impacted=impacted,
            queue_stats=queue.lifetime_stats(),
        )

    # -- commongraph flow (deletion-to-addition conversion) ------------
    def _apply_commongraph(self, batch: UpdateBatch) -> StreamingResult:
        """CommonGraph policy: converge the common graph, add the rest.

        Deletions never propagate. The engine returns to Identity and
        converges once on the *common graph* — the current edge set minus
        the directed delete set — then the batch's insertions run as a pure
        addition pass on the mutated graph. A monotonic selective fixed
        point is independent of the order edges arrive in, so the final
        states are bit-identical to the VAP/DAP recovery path; what
        disappears is the reset cascade, which on deletion-heavy batches
        dominates the recovery cost (Fig. 10). The converged common state
        is also the shareable prefix behind :func:`evaluate_at_versions`.

        Slice assignment and shard plan survive the pass (see
        :meth:`EngineCore.reset_states`), so sharded runs keep the same
        vertex→engine map across the common and addition phases.
        """
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()
        old_csr = self.graph.snapshot()
        old_n = old_csr.num_vertices

        if self._array_seeds:
            du, dv, _dw = self._directed_deletions_arrays(batch)
            insertions = self._directed_insertions_arrays(batch)
        else:
            dels = self._directed_deletions(batch)
            m = len(dels)
            du = np.fromiter((e[0] for e in dels), dtype=np.int64, count=m)
            dv = np.fromiter((e[1] for e in dels), dtype=np.int64, count=m)
            insertions = self._directed_insertions(batch)

        eu, ev, ew = self.graph.edge_arrays()
        keep = ~self._edge_key_member(eu, ev, du, dv, old_n)
        from repro.graph.csr import CSRGraph

        common_csr = CSRGraph.from_arrays(old_n, eu[keep], ev[keep], ew[keep])

        # Phase 1: full convergence on the common graph from Identity.
        tracer = core.tracer
        common_phase = metrics.phase("common-convergence")
        core.reset_states(old_n)
        core.bind_graph(common_csr)
        queue = core.new_queue()
        with tracer.phase(common_phase):
            work = common_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                core.seed_initial(queue, work)
            core.run_regular(queue, common_phase)
        if METRICS.enabled:
            METRICS.record_phase(common_phase)

        # Mutate; the batch's insertions are priced on the new structure.
        self._mutate_graph(batch)
        new_csr = self.graph.snapshot()
        core.grow(new_csr.num_vertices)
        core.bind_graph(new_csr)

        # Phase 2: pure addition pass — the converged common state only
        # ever improves from here (monotonicity), nothing resets.
        addition_phase = metrics.phase("addition-pass")
        with tracer.phase(addition_phase):
            work = addition_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                if self._array_seeds:
                    iu, iv, iw = insertions
                    mi = len(iu)
                    work.vertex_reads += mi
                    work.events_generated += mi
                    if mi:
                        degrees, wsums = self._source_ctx(new_csr, iu)
                        payloads = algorithm.propagate_ctx_arrays(
                            core.states[iu], iw, degrees, wsums
                        )
                        queue.insert_batch(
                            EventBatch.from_arrays(iv, payloads, 0, iu), work
                        )
                else:
                    buf = _SeedBuffer()
                    for u, v, w in insertions:
                        payload = algorithm.propagate(
                            float(core.states[u]), w, SourceContext.of(new_csr, u)
                        )
                        work.vertex_reads += 1
                        work.events_generated += 1
                        buf.add(v, payload, 0, u)
                    buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, addition_phase)
        if METRICS.enabled:
            METRICS.record_phase(addition_phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            impacted=[],
            queue_stats=queue.lifetime_stats(),
        )

    # -- accumulative flow (Algorithm 6 / Fig. 5) ----------------------
    def _apply_accumulative(self, batch: UpdateBatch) -> StreamingResult:
        if self.two_phase_accumulative:
            return self._apply_accumulative_two_phase(batch)
        return self._apply_accumulative_net(batch)

    def _apply_accumulative_net(self, batch: UpdateBatch) -> StreamingResult:
        """Single-phase net-correction flow (default; see __init__ note).

        Every stale contribution of a mutated source is negated and its
        replacement added *as one coalesced seed per target vertex*; the
        net corrections then converge in a single computation phase on the
        new graph. Equivalent fixed point to Algorithm 6.
        """
        if self._array_seeds:
            return self._apply_accumulative_net_array(batch)
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()

        deletions = self._directed_deletions(batch)
        insertions = self._directed_insertions(batch)
        deleted_keys = {(u, v) for u, v, _ in deletions}
        old_csr = self.graph.snapshot()
        old_n = old_csr.num_vertices

        tracer = core.tracer
        phase = metrics.phase("reevaluation")
        with tracer.phase(phase):
            work = phase.new_round()
            # The queue does not exist yet (corrections are computed across
            # the graph mutation), so the seed round span carries no
            # occupancy samples — only the work vector.
            with tracer.round(work), METRICS.round_scope(work):
                corrections: Dict[int, float] = {}
                if algorithm.degree_dependent:
                    modified: Set[int] = {u for u, _, _ in deletions}
                    modified.update(u for u, _, _ in insertions if u < old_n)
                    stale: List[Edge] = []
                    for u in sorted(modified):
                        for v, w in self.graph.out_edges(u):
                            stale.append((u, v, w))
                    replacements = [e for e in stale if (e[0], e[1]) not in deleted_keys]
                    replacements.extend(insertions)
                else:
                    stale = deletions
                    replacements = list(insertions)

                for u, v, w in stale:
                    delta = -algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(old_csr, u)
                    )
                    work.vertex_reads += 1
                    corrections[v] = corrections.get(v, 0.0) + delta

                # Mutate; replacements are priced against the new structure.
                self._mutate_graph(batch)
                new_csr = self.graph.snapshot()
                core.grow(new_csr.num_vertices)
                core.bind_graph(new_csr)
                for u, v, w in replacements:
                    delta = algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(new_csr, u)
                    )
                    work.vertex_reads += 1
                    corrections[v] = corrections.get(v, 0.0) + delta

                queue = core.new_queue()
                buf = _SeedBuffer()
                for v in sorted(corrections):
                    delta = corrections[v]
                    if algorithm.should_propagate(delta):
                        work.events_generated += 1
                        buf.add(v, delta, 0, NO_SOURCE)
                buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, phase)
        if METRICS.enabled:
            METRICS.record_phase(phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )

    def _apply_accumulative_two_phase(self, batch: UpdateBatch) -> StreamingResult:
        if self._array_seeds:
            return self._apply_accumulative_two_phase_array(batch)
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()

        deletions = self._directed_deletions(batch)
        insertions = self._directed_insertions(batch)
        deleted_keys = {(u, v) for u, v, _ in deletions}

        if algorithm.degree_dependent:
            # Every mutated source's out-degree changes, so ALL its previous
            # out-edge contributions are stale (Fig. 5): sink the source.
            modified_sources: Set[int] = {u for u, _, _ in deletions}
            modified_sources.update(u for u, _, _ in insertions if u < self.graph.num_vertices)
            expanded_deletes: List[Edge] = []
            for u in sorted(modified_sources):
                for v, w in self.graph.out_edges(u):
                    expanded_deletes.append((u, v, w))
            re_adds = [e for e in expanded_deletes if (e[0], e[1]) not in deleted_keys]
            re_adds.extend(insertions)
            intermediate_csr = self.graph.snapshot_with_sinks(modified_sources)
        else:
            expanded_deletes = deletions
            re_adds = list(insertions)
            survivors = [e for e in self.graph.edges() if (e[0], e[1]) not in deleted_keys]
            from repro.graph.csr import CSRGraph

            intermediate_csr = CSRGraph(self.graph.num_vertices, survivors)

        old_csr = self.graph.snapshot()

        # Phase 1: negative events drain stale contributions (Algorithm 3)
        # while the intermediate graph blocks cyclic re-propagation.
        tracer = core.tracer
        delete_phase = metrics.phase("delete-negation")
        with tracer.phase(delete_phase):
            seed_work = delete_phase.new_round()
            with tracer.round(seed_work), METRICS.round_scope(seed_work):
                negative_events = []
                for u, v, w in expanded_deletes:
                    delta = -algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(old_csr, u)
                    )
                    seed_work.vertex_reads += 1
                    if algorithm.should_propagate(delta):
                        negative_events.append(Event(v, delta, 0, u))
                core.bind_graph(intermediate_csr)
                queue = core.new_queue()
                seed_work.events_generated += len(negative_events)
                queue.insert_batch(EventBatch.from_events(negative_events), seed_work)
            core.run_regular(queue, delete_phase)
        if METRICS.enabled:
            METRICS.record_phase(delete_phase)

        # Mutate; switch to the new structure.
        old_n = self.graph.num_vertices
        self._mutate_graph(batch)
        new_csr = self.graph.snapshot()
        core.grow(new_csr.num_vertices)
        core.bind_graph(new_csr)

        # Phase 2: re-add surviving + new edges at the new degrees.
        compute_phase = metrics.phase("reevaluation")
        with tracer.phase(compute_phase):
            work = compute_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                buf = _SeedBuffer()
                for u, v, w in re_adds:
                    delta = algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(new_csr, u)
                    )
                    work.vertex_reads += 1
                    if algorithm.should_propagate(delta):
                        work.events_generated += 1
                        buf.add(v, delta, 0, u)
                buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, compute_phase)
        if METRICS.enabled:
            METRICS.record_phase(compute_phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )

    def _apply_accumulative_net_array(self, batch: UpdateBatch) -> StreamingResult:
        """Array-kernel variant of the net-correction flow.

        Stale-contribution expansion, context gathering, and the per-target
        correction fold all run as batched NumPy kernels; every event,
        coalescing outcome, and work counter is bit-identical to the scalar
        loop (``np.add.at`` applies updates sequentially in index order,
        which matches the dict fold because both enumerate the same edges
        in the same order).
        """
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()

        du, dv, dw = self._directed_deletions_arrays(batch)
        iu, iv, iw = self._directed_insertions_arrays(batch)
        old_csr = self.graph.snapshot()
        old_n = old_csr.num_vertices

        tracer = core.tracer
        phase = metrics.phase("reevaluation")
        with tracer.phase(phase):
            work = phase.new_round()
            with tracer.round(work), METRICS.round_scope(work):
                if algorithm.degree_dependent:
                    modified = np.unique(np.concatenate([du, iu[iu < old_n]]))
                    su, sv, sw = self._expand_out_edges(old_csr, modified)
                    keep = ~self._edge_key_member(su, sv, du, dv, old_n)
                    ru = np.concatenate([su[keep], iu])
                    rv = np.concatenate([sv[keep], iv])
                    rw = np.concatenate([sw[keep], iw])
                else:
                    su, sv, sw = du, dv, dw
                    ru, rv, rw = iu, iv, iw

                degrees, wsums = self._source_ctx(old_csr, su)
                stale_delta = -algorithm.propagate_ctx_arrays(
                    core.states[su], sw, degrees, wsums
                )
                work.vertex_reads += len(su)

                # Mutate; replacements are priced against the new structure.
                self._mutate_graph(batch)
                new_csr = self.graph.snapshot()
                core.grow(new_csr.num_vertices)
                core.bind_graph(new_csr)
                degrees, wsums = self._source_ctx(new_csr, ru)
                repl_delta = algorithm.propagate_ctx_arrays(
                    core.states[ru], rw, degrees, wsums
                )
                work.vertex_reads += len(ru)

                corrections = np.zeros(new_csr.num_vertices, dtype=np.float64)
                np.add.at(corrections, sv, stale_delta)
                np.add.at(corrections, rv, repl_delta)
                if type(algorithm).should_propagate is Algorithm.should_propagate:
                    seeds = np.flatnonzero(
                        np.abs(corrections) > algorithm.propagation_threshold
                    )
                else:
                    # A custom predicate only ever sees touched targets in
                    # the scalar flow; preserve that.
                    touched = np.unique(np.concatenate([sv, rv]))
                    flag = np.fromiter(
                        (
                            algorithm.should_propagate(float(corrections[v]))
                            for v in touched
                        ),
                        dtype=bool,
                        count=len(touched),
                    )
                    seeds = touched[flag]

                queue = core.new_queue()
                work.events_generated += len(seeds)
                if len(seeds):
                    queue.insert_batch(
                        EventBatch.from_arrays(
                            seeds, corrections[seeds], 0, NO_SOURCE
                        ),
                        work,
                    )
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, phase)
        if METRICS.enabled:
            METRICS.record_phase(phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )

    def _apply_accumulative_two_phase_array(
        self, batch: UpdateBatch
    ) -> StreamingResult:
        """Array-kernel variant of the two-phase Algorithm 6 flow."""
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()

        du, dv, dw = self._directed_deletions_arrays(batch)
        iu, iv, iw = self._directed_insertions_arrays(batch)
        old_csr = self.graph.snapshot()
        old_n = old_csr.num_vertices

        if algorithm.degree_dependent:
            modified = np.unique(np.concatenate([du, iu[iu < old_n]]))
            su, sv, sw = self._expand_out_edges(old_csr, modified)
            keep = ~self._edge_key_member(su, sv, du, dv, old_n)
            ru = np.concatenate([su[keep], iu])
            rv = np.concatenate([sv[keep], iv])
            rw = np.concatenate([sw[keep], iw])
            intermediate_csr = self.graph.snapshot_with_sinks(modified)
        else:
            su, sv, sw = du, dv, dw
            ru, rv, rw = iu, iv, iw
            eu, ev, ew = self.graph.edge_arrays()
            survives = ~self._edge_key_member(eu, ev, du, dv, old_n)
            from repro.graph.csr import CSRGraph

            intermediate_csr = CSRGraph.from_arrays(
                old_n, eu[survives], ev[survives], ew[survives]
            )

        # Phase 1: negative events drain stale contributions (Algorithm 3)
        # while the intermediate graph blocks cyclic re-propagation.
        tracer = core.tracer
        delete_phase = metrics.phase("delete-negation")
        with tracer.phase(delete_phase):
            seed_work = delete_phase.new_round()
            with tracer.round(seed_work), METRICS.round_scope(seed_work):
                degrees, wsums = self._source_ctx(old_csr, su)
                deltas = -algorithm.propagate_ctx_arrays(
                    core.states[su], sw, degrees, wsums
                )
                seed_work.vertex_reads += len(su)
                sendable = self._should_propagate_mask(deltas)
                core.bind_graph(intermediate_csr)
                queue = core.new_queue()
                seed_work.events_generated += int(sendable.sum())
                queue.insert_batch(
                    EventBatch.from_arrays(
                        sv[sendable], deltas[sendable], 0, su[sendable]
                    ),
                    seed_work,
                )
            core.run_regular(queue, delete_phase)
        if METRICS.enabled:
            METRICS.record_phase(delete_phase)

        # Mutate; switch to the new structure.
        self._mutate_graph(batch)
        new_csr = self.graph.snapshot()
        core.grow(new_csr.num_vertices)
        core.bind_graph(new_csr)

        # Phase 2: re-add surviving + new edges at the new degrees.
        compute_phase = metrics.phase("reevaluation")
        with tracer.phase(compute_phase):
            work = compute_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                degrees, wsums = self._source_ctx(new_csr, ru)
                deltas = algorithm.propagate_ctx_arrays(
                    core.states[ru], rw, degrees, wsums
                )
                work.vertex_reads += len(ru)
                sendable = self._should_propagate_mask(deltas)
                n_send = int(sendable.sum())
                work.events_generated += n_send
                if n_send:
                    queue.insert_batch(
                        EventBatch.from_arrays(
                            rv[sendable], deltas[sendable], 0, ru[sendable]
                        ),
                        work,
                    )
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, compute_phase)
        if METRICS.enabled:
            METRICS.record_phase(compute_phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_batch(self, batch: UpdateBatch) -> None:
        deleted = {e.key() for e in batch.deletions}
        for edge in batch.deletions:
            if not self.graph.has_edge(edge.u, edge.v):
                raise ValueError(f"batch deletes missing edge {edge.u}->{edge.v}")
        for edge in batch.insertions:
            # Re-inserting an edge deleted in the same batch is the paper's
            # weight-change idiom (§2.1) and is allowed.
            if self.graph.has_edge(edge.u, edge.v) and edge.key() not in deleted:
                raise ValueError(f"batch inserts duplicate edge {edge.u}->{edge.v}")

    def _directed_deletions(self, batch: UpdateBatch) -> List[Edge]:
        out: List[Edge] = []
        for edge in batch.deletions:
            w = self.graph.edge_weight(edge.u, edge.v)
            out.append((edge.u, edge.v, w))
            if self.graph.symmetric and edge.u != edge.v:
                out.append((edge.v, edge.u, w))
        return out

    def _directed_insertions(self, batch: UpdateBatch) -> List[Edge]:
        out: List[Edge] = []
        for edge in batch.insertions:
            out.append((edge.u, edge.v, edge.w))
            if self.graph.symmetric and edge.u != edge.v:
                out.append((edge.v, edge.u, edge.w))
        return out

    def _directed_deletions_arrays(
        self, batch: UpdateBatch
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array form of :meth:`_directed_deletions` (same order)."""
        dels = batch.deletions
        m = len(dels)
        u = np.fromiter((e.u for e in dels), dtype=np.int64, count=m)
        v = np.fromiter((e.v for e in dels), dtype=np.int64, count=m)
        w = np.fromiter(
            (self.graph.edge_weight(e.u, e.v) for e in dels),
            dtype=np.float64,
            count=m,
        )
        if not self.graph.symmetric:
            return u, v, w
        return _interleave_mirrors(u, v, w)

    def _directed_insertions_arrays(
        self, batch: UpdateBatch
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array form of :meth:`_directed_insertions` (same order)."""
        ins = batch.insertions
        m = len(ins)
        u = np.fromiter((e.u for e in ins), dtype=np.int64, count=m)
        v = np.fromiter((e.v for e in ins), dtype=np.int64, count=m)
        w = np.fromiter((e.w for e in ins), dtype=np.float64, count=m)
        if not self.graph.symmetric:
            return u, v, w
        return _interleave_mirrors(u, v, w)

    @staticmethod
    def _expand_out_edges(
        csr, sources: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All out-edges of ``sources`` (ascending ids), in CSR edge order.

        The degree-dependent delete flows expand each mutated source to its
        full stale out-edge set; this gathers those runs in one shot.
        """
        offsets = csr.out_offsets
        lengths = offsets[sources + 1] - offsets[sources]
        edge_idx = _run_indices(offsets[sources], lengths)
        return (
            np.repeat(sources, lengths),
            csr.out_targets[edge_idx].astype(np.int64, copy=False),
            csr.out_weights[edge_idx],
        )

    @staticmethod
    def _edge_key_member(
        u: np.ndarray,
        v: np.ndarray,
        key_u: np.ndarray,
        key_v: np.ndarray,
        num_vertices: int,
    ) -> np.ndarray:
        """Boolean mask: is ``(u[i], v[i])`` in the ``(key_u, key_v)`` set?"""
        if len(key_u) == 0 or len(u) == 0:
            return np.zeros(len(u), dtype=bool)
        stride = np.int64(max(num_vertices, 1))
        keys = np.unique(key_u * stride + key_v)
        probe = u * stride + v
        pos = np.searchsorted(keys, probe)
        pos_clipped = np.minimum(pos, len(keys) - 1)
        return (pos < len(keys)) & (keys[pos_clipped] == probe)

    def _source_ctx(
        self, csr, sources: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-element ``(out_degree, out_weight_sum)`` context in ``csr``.

        Degrees come from offset arithmetic. When the algorithm's context
        hook reads the weight sums, they are reproduced **bit for bit**
        with :meth:`SourceContext.of` — a per-source left fold over the
        CSR-ordered out-edges. A prefix-sum difference or pairwise
        ``reduceat`` would round differently, so the fold stays a Python
        loop over the (few) distinct touched sources.
        """
        offsets = csr.out_offsets
        degrees = offsets[sources + 1] - offsets[sources]
        if not self._needs_weight_sums or len(sources) == 0:
            return degrees, np.zeros(len(sources), dtype=np.float64)
        uniq, inverse = np.unique(sources, return_inverse=True)
        weights = csr.out_weights
        sums = np.empty(len(uniq), dtype=np.float64)
        for i, u in enumerate(uniq):
            total = 0.0
            for j in range(int(offsets[u]), int(offsets[u + 1])):
                total += float(weights[j])
            sums[i] = total
        return degrees, sums[inverse]

    def _should_propagate_mask(self, deltas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`Algorithm.should_propagate` over seed deltas."""
        algorithm = self.algorithm
        if type(algorithm).should_propagate is Algorithm.should_propagate:
            if algorithm.kind is AlgorithmKind.ACCUMULATIVE:
                return np.abs(deltas) > algorithm.propagation_threshold
            return np.ones(len(deltas), dtype=bool)
        return np.fromiter(
            (algorithm.should_propagate(float(d)) for d in deltas),
            dtype=bool,
            count=len(deltas),
        )

    def _seed_deletes_array(self, queue, work, old_csr, deletions) -> None:
        """Array form of the selective delete-seed loop (same events)."""
        du, dv, dw = deletions
        m = len(du)
        work.vertex_reads += m
        work.events_generated += m
        if m == 0:
            return
        if self.policy is DeletePolicy.BASE:
            payloads = np.zeros(m, dtype=np.float64)
        else:
            degrees, wsums = self._source_ctx(old_csr, du)
            payloads = self.algorithm.propagate_ctx_arrays(
                self.core.states[du], dw, degrees, wsums
            )
        queue.insert_batch(EventBatch.from_arrays(dv, payloads, 1, du), work)

    def _seed_reapprox_array(
        self, queue, work, compute_phase, new_csr, impacted, insertions
    ) -> None:
        """Array form of the reapproximation + insertion seeding.

        Per impacted vertex the scalar loop emits an optional self event
        followed by one request event per in-neighbor; the array form
        scatters the self events into the head slot of each vertex's run
        and gathers the request targets straight from the in-CSR, so the
        concatenated layout reproduces the scalar emission order exactly.
        """
        algorithm = self.algorithm
        core = self.core
        imp = np.asarray(impacted, dtype=np.int64)
        self_mask, self_payloads = algorithm.self_events_arrays(imp)
        in_offsets = new_csr.in_offsets
        requests_per = in_offsets[imp + 1] - in_offsets[imp]
        lengths = self_mask.astype(np.int64) + requests_per
        total = int(lengths.sum())
        starts = np.cumsum(lengths) - lengths

        targets = np.empty(total, dtype=np.int64)
        payloads = np.full(total, algorithm.identity, dtype=np.float64)
        flags = np.full(total, 2, dtype=np.int64)
        self_pos = starts[self_mask]
        targets[self_pos] = imp[self_mask]
        payloads[self_pos] = self_payloads[self_mask]
        flags[self_pos] = 0
        request_pos = np.ones(total, dtype=bool)
        request_pos[self_pos] = False
        edge_idx = _run_indices(in_offsets[imp], requests_per)
        targets[request_pos] = new_csr.in_sources[edge_idx]

        n_requests = int(requests_per.sum())
        work.events_generated += int(self_mask.sum()) + n_requests
        compute_phase.request_events += n_requests

        iu, iv, iw = insertions
        mi = len(iu)
        work.vertex_reads += mi
        work.events_generated += mi
        if mi:
            degrees, wsums = self._source_ctx(new_csr, iu)
            ins_payloads = algorithm.propagate_ctx_arrays(
                core.states[iu], iw, degrees, wsums
            )
        else:
            ins_payloads = _EMPTY_F64

        all_targets = np.concatenate([targets, iv])
        if len(all_targets) == 0:
            return
        queue.insert_batch(
            EventBatch.from_arrays(
                all_targets,
                np.concatenate([payloads, ins_payloads]),
                np.concatenate([flags, np.zeros(mi, dtype=np.int64)]),
                np.concatenate([np.full(total, NO_SOURCE, dtype=np.int64), iu]),
            ),
            work,
        )

    def _mutate_graph(self, batch: UpdateBatch) -> None:
        self.graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [(e.u, e.v) for e in batch.deletions],
        )

    def _seed_new_vertices(self, queue, work, old_n: int, new_n: int) -> None:
        """Deliver owed initial events to vertices created by this batch."""
        if new_n <= old_n:
            return
        if self._array_seeds:
            targets, payloads = self.algorithm.seed_events_for_new_vertices(
                old_n, new_n
            )
            work.events_generated += len(targets)
            if len(targets):
                queue.insert_batch(
                    EventBatch.from_arrays(targets, payloads, 0, NO_SOURCE), work
                )
            return
        for v in range(old_n, new_n):
            payload = self.algorithm.seed_event_for_new_vertex(v)
            if payload is not None:
                work.events_generated += 1
                queue.insert(Event(v, payload, 0, NO_SOURCE), work)


# ----------------------------------------------------------------------
# Shared-prefix multi-version evaluation (CommonGraph work sharing)
# ----------------------------------------------------------------------
@dataclass
class MultiVersionResult:
    """Outcome of :func:`evaluate_at_versions` over a version range."""

    #: Evaluated versions, ascending.
    versions: List[int]
    #: Converged states per version (length = that version's vertex count).
    states: Dict[int, np.ndarray]
    #: Events processed by each per-version addition pass.
    per_version_events: Dict[int, int]
    #: Events spent converging the shared common graph (once).
    common_events: int
    #: Directed edge count of the shared common graph.
    common_edges: int
    #: True when the versions shared one converged common prefix
    #: (selective algorithms); False for the independent fallback.
    shared: bool

    @property
    def total_events(self) -> int:
        """All events processed across the common + per-version passes."""
        return self.common_events + sum(self.per_version_events.values())


def _seed_fresh_vertices(algorithm, queue, work, old_n: int, new_n: int) -> None:
    """Initial events owed to vertices outside the common prefix."""
    if new_n <= old_n:
        return
    if algorithm.supports_vectorized:
        targets, payloads = algorithm.seed_events_for_new_vertices(old_n, new_n)
        work.events_generated += len(targets)
        if len(targets):
            queue.insert_batch(
                EventBatch.from_arrays(targets, payloads, 0, NO_SOURCE), work
            )
        return
    for v in range(old_n, new_n):
        payload = algorithm.seed_event_for_new_vertex(v)
        if payload is not None:
            work.events_generated += 1
            queue.insert(Event(v, payload, 0, NO_SOURCE), work)


def evaluate_at_versions(
    store,
    algorithm,
    versions,
    config: Optional[AcceleratorConfig] = None,
    engine: str = "auto",
    num_engines: int = 8,
    backend: str = "thread",
    tracer=None,
) -> MultiVersionResult:
    """Evaluate ``algorithm`` at several recorded graph versions at once.

    For monotonic selective algorithms the versions share one converged
    prefix: the store's :meth:`~repro.graph.dynamic.DeltaVersionStore.
    common_slice` extracts the edge set common to every requested version,
    the engine converges on it exactly once, and each version is then an
    addition-only pass from that base state (CommonGraph work sharing —
    the same conversion :class:`DeletePolicy.COMMONGRAPH` applies to one
    batch, amortized across snapshots). Accumulative algorithms fall back
    to independent cold evaluations per version (``shared=False``).

    ``store`` is a :class:`~repro.graph.dynamic.DeltaVersionStore`;
    ``versions`` any iterable of recorded version numbers (deduplicated,
    evaluated ascending). Raises ``KeyError`` for unrecorded or evicted
    versions.
    """
    versions = sorted({int(v) for v in versions})
    if not versions:
        raise ValueError("versions must be non-empty")
    from repro.graph.csr import CSRGraph

    if algorithm.kind is not AlgorithmKind.SELECTIVE:
        return _evaluate_versions_independent(
            store, algorithm, versions, config, engine, num_engines, backend, tracer
        )

    slice_ = store.common_slice(versions)
    common_csr = CSRGraph(slice_.common_vertices, slice_.common_edges)
    core = EngineCore(
        algorithm,
        config or AcceleratorConfig(),
        DeletePolicy.COMMONGRAPH,
        engine=engine,
        num_engines=num_engines,
        backend=backend,
        tracer=tracer,
    )
    metrics = RunMetrics()
    states: Dict[int, np.ndarray] = {}
    per_version_events: Dict[int, int] = {}
    try:
        tracer_ = core.tracer
        # Converge the shared common graph once, from Identity.
        common_phase = metrics.phase("common-convergence")
        core.allocate(slice_.common_vertices)
        core.bind_graph(common_csr)
        queue = core.new_queue()
        with tracer_.phase(common_phase):
            work = common_phase.new_round()
            with tracer_.round(work, queue), METRICS.round_scope(work, queue):
                core.seed_initial(queue, work)
            core.run_regular(queue, common_phase)
        base_states = core.states[: slice_.common_vertices].copy()
        common_events = common_phase.events_processed

        # Fan out: every version is a pure addition pass from the base.
        # The shard plan installed by the first bind survives (load_states
        # never repartitions), so all passes share one vertex→engine map.
        for ver in versions:
            n_v = slice_.vertices[ver]
            additions = slice_.additions[ver]
            phase = metrics.phase(f"addition-pass@v{ver}")
            core.load_states(base_states)
            csr_v = CSRGraph(n_v, list(slice_.common_edges) + list(additions))
            core.grow(n_v)
            core.bind_graph(csr_v)
            queue = core.new_queue()
            with tracer_.phase(phase):
                work = phase.new_round()
                with tracer_.round(work, queue), METRICS.round_scope(work, queue):
                    buf = _SeedBuffer()
                    for u, v, w in additions:
                        payload = algorithm.propagate(
                            float(core.states[u]), w, SourceContext.of(csr_v, u)
                        )
                        work.vertex_reads += 1
                        work.events_generated += 1
                        buf.add(v, payload, 0, u)
                    buf.flush(queue, work)
                    _seed_fresh_vertices(
                        algorithm, queue, work, slice_.common_vertices, n_v
                    )
                core.run_regular(queue, phase)
            states[ver] = core.states[:n_v].copy()
            per_version_events[ver] = phase.events_processed
    finally:
        core.close()
    return MultiVersionResult(
        versions=versions,
        states=states,
        per_version_events=per_version_events,
        common_events=common_events,
        common_edges=len(slice_.common_edges),
        shared=True,
    )


def _evaluate_versions_independent(
    store, algorithm, versions, config, engine, num_engines, backend, tracer
) -> MultiVersionResult:
    """Per-version cold evaluation — no shareable prefix (accumulative)."""
    from repro.graph.csr import CSRGraph  # noqa: F401  (parity of imports)

    core = EngineCore(
        algorithm,
        config or AcceleratorConfig(),
        DeletePolicy.BASE,
        engine=engine,
        num_engines=num_engines,
        backend=backend,
        tracer=tracer,
    )
    metrics = RunMetrics()
    states: Dict[int, np.ndarray] = {}
    per_version_events: Dict[int, int] = {}
    try:
        for ver in versions:
            csr = store.reconstruct(ver)
            phase = metrics.phase(f"cold@v{ver}")
            core.allocate(csr.num_vertices)
            core.bind_graph(csr)
            queue = core.new_queue()
            with core.tracer.phase(phase):
                work = phase.new_round()
                with core.tracer.round(work, queue), METRICS.round_scope(
                    work, queue
                ):
                    core.seed_initial(queue, work)
                core.run_regular(queue, phase)
            states[ver] = core.states.copy()
            per_version_events[ver] = phase.events_processed
    finally:
        core.close()
    return MultiVersionResult(
        versions=list(versions),
        states=states,
        per_version_events=per_version_events,
        common_events=0,
        common_edges=0,
        shared=False,
    )
