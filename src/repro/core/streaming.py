"""JetStream: incremental evaluation over streaming graphs (§3.3–§3.5).

:class:`JetStreamEngine` drives a query over a
:class:`~repro.graph.dynamic.DynamicGraph` as update batches arrive. It
reuses :class:`~repro.core.engine.EngineCore` for all event processing and
adds the streaming orchestration:

* **Selective algorithms** (Algorithm 5): queue delete events from the
  deleted edges (``ProcessDeletesSelective``), run the recovery phase on
  the *old* graph (``ResetImpacted``), queue request events along the
  impacted vertices' in-edges plus their self events
  (``Reapproximate``), queue insertion events (``ProcessInserts``),
  switch to the new graph, and re-run the computation phase.
* **Accumulative algorithms** (Algorithm 6, Fig. 5): expand the mutation
  to all out-edges of every modified source (degree-dependent
  propagation), send the expansion as negative events, converge on the
  *intermediate* sink graph, then re-add the surviving/new edges as
  insertion events on the new graph and converge again.

The per-phase work metrics feed the architectural timing model
(:mod:`repro.sim.timing`); no timing is computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.base import AlgorithmKind, SourceContext
from repro.core.config import AcceleratorConfig
from repro.core.engine import EngineCore
from repro.core.events import NO_SOURCE, Event, EventBatch
from repro.core.metrics import RunMetrics
from repro.core.policies import DeletePolicy
from repro.graph.dynamic import DynamicGraph
from repro.obs.metrics import REGISTRY as METRICS
from repro.streams import UpdateBatch

Edge = Tuple[int, int, float]


class _SeedBuffer:
    """Collects seed events and inserts them as one :class:`EventBatch`.

    The streaming orchestration computes seed payloads one edge at a time
    (Python-level stream decoding), but the queue insert is batched so the
    vectorized substrate coalesces the whole seed set with one
    scatter-reduce. Insertion order — and therefore every coalescing
    outcome and work counter — matches the former per-event inserts.
    """

    __slots__ = ("targets", "payloads", "flags", "sources")

    def __init__(self):
        self.targets: List[int] = []
        self.payloads: List[float] = []
        self.flags: List[int] = []
        self.sources: List[int] = []

    def add(self, target: int, payload: float, flags: int, source: int) -> None:
        self.targets.append(target)
        self.payloads.append(payload)
        self.flags.append(flags)
        self.sources.append(source)

    def flush(self, queue, work) -> None:
        if not self.targets:
            return
        queue.insert_batch(
            EventBatch.from_arrays(
                self.targets, self.payloads, self.flags, self.sources
            ),
            work,
        )
        self.targets, self.payloads = [], []
        self.flags, self.sources = [], []


@dataclass
class StreamingResult:
    """Outcome of one engine run (initial evaluation or one batch)."""

    states: np.ndarray
    metrics: RunMetrics
    graph_version: int
    #: Vertices reset during the recovery phase (selective only).
    impacted: List[int] = field(default_factory=list)
    #: Lifetime queue counters — identical across engine substrates; kept
    #: for the parity oracle.
    queue_stats: Optional[dict] = None

    @property
    def vertices_reset(self) -> int:
        """Number of vertices reset while recovering the approximation."""
        return len(self.impacted)


class JetStreamEngine:
    """Streaming query evaluation with incremental re-computation.

    Parameters
    ----------
    graph:
        The evolving graph. For algorithms with
        ``needs_symmetric=True`` (CC) the graph must be symmetric.
    algorithm:
        A DAIC :class:`~repro.algorithms.base.Algorithm`.
    config:
        Accelerator configuration (Table 1 defaults).
    policy:
        Deletion-propagation policy (§5). DAP is the paper's best
        performer and the default.
    engine:
        Substrate selection: ``auto`` (default — vectorized whenever the
        algorithm provides array hooks), ``vectorized``, ``sharded``
        (parallel multi-engine graph slices, Table 1 / §4.7), or
        ``scalar`` (the boxed-event reference oracle).
    num_engines:
        Parallel engine count for ``engine="sharded"`` (default 8).
    shard_workers:
        Thread-pool width for sharded execution (default: one per engine,
        capped at the CPU count; 1 forces serial shard execution).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
        policy: DeletePolicy = DeletePolicy.DAP,
        two_phase_accumulative: bool = False,
        engine: str = "auto",
        num_engines: int = 8,
        shard_workers: Optional[int] = None,
        tracer=None,
    ):
        if algorithm.needs_symmetric and not graph.symmetric:
            raise ValueError(
                f"{algorithm.name} requires a symmetric graph "
                "(DynamicGraph(symmetric=True))"
            )
        if algorithm.kind is AlgorithmKind.ACCUMULATIVE and policy is not DeletePolicy.BASE:
            # VAP/DAP only affect the selective recovery phase; accumulative
            # deletion uses negative events (§3.3). Normalize to BASE so the
            # event size accounting matches the narrower encoding.
            policy = DeletePolicy.BASE
        self.graph = graph
        self.algorithm = algorithm
        self.policy = policy
        #: Accumulative deletion flow selector. ``True`` runs the paper's
        #: literal two-phase Algorithm 6 (negate on the intermediate sink
        #: graph, converge, re-add, converge). ``False`` (default) coalesces
        #: each negative/positive seed pair into one *net* correction event
        #: and converges once on the new graph — the same fixed point (the
        #: correction is a linear-operator series either way), but without
        #: launching two near-canceling full-magnitude waves, which at
        #: stand-in graph scale would swamp the incremental advantage the
        #: paper measures at 45M–1.46B-edge scale. See DESIGN.md §4.
        self.two_phase_accumulative = two_phase_accumulative
        self.core = EngineCore(
            algorithm,
            config or AcceleratorConfig(),
            policy,
            engine=engine,
            num_engines=num_engines,
            shard_workers=shard_workers,
            tracer=tracer,
        )
        self._initialized = False
        self.history: List[StreamingResult] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        """The observability hook shared with the engine core."""
        return self.core.tracer

    @property
    def states(self) -> np.ndarray:
        """Current (converged) vertex states — read-only view."""
        return self.core.states

    def query_result(self) -> np.ndarray:
        """Copy of the current converged query result."""
        return self.core.states.copy()

    # ------------------------------------------------------------------
    # Initial (static) evaluation — §4.6.1
    # ------------------------------------------------------------------
    def initial_compute(self) -> StreamingResult:
        """Evaluate the query on the current graph from initial state."""
        core = self.core
        tracer = core.tracer
        csr = self.graph.snapshot()
        core.allocate(csr.num_vertices)
        core.bind_graph(csr)
        metrics = RunMetrics()
        phase = metrics.phase("initial")
        queue = core.new_queue()
        run_t0 = METRICS.clock() if METRICS.enabled else 0.0
        with tracer.span(
            "run",
            "initial",
            algorithm=self.algorithm.name,
            engine_mode=core.engine_mode,
            num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
            graph_version=self.graph.version,
            stream_records=0,
        ):
            with tracer.phase(phase):
                work = phase.new_round()
                with tracer.round(work, queue), METRICS.round_scope(work, queue):
                    core.seed_initial(queue, work)
                core.run_regular(queue, phase)
            if METRICS.enabled:
                METRICS.record_phase(phase)
        if METRICS.enabled:
            METRICS.record_run(
                "initial",
                METRICS.clock() - run_t0,
                num_vertices=csr.num_vertices,
                num_edges=csr.num_edges,
            )
        self._initialized = True
        result = StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    # Incremental evaluation — §4.6.2
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch) -> StreamingResult:
        """Apply one update batch and incrementally re-converge the query.

        The batch's deletions must exist in the current graph and its
        insertions must be fresh edges (:class:`repro.streams.UpdateBatch`
        semantics). The graph is mutated as a side effect (version + 1).
        """
        if not self._initialized:
            raise RuntimeError("call initial_compute() before apply_batch()")
        batch.validate()
        self._check_batch(batch)
        run_t0 = METRICS.clock() if METRICS.enabled else 0.0
        with self.tracer.span(
            "run",
            "batch",
            algorithm=self.algorithm.name,
            engine_mode=self.core.engine_mode,
            batch_index=len(self.history) - 1,
            insertions=len(batch.insertions),
            deletions=len(batch.deletions),
            stream_records=batch.size,
        ):
            if self.algorithm.kind is AlgorithmKind.SELECTIVE:
                result = self._apply_selective(batch)
            else:
                result = self._apply_accumulative(batch)
        if METRICS.enabled:
            METRICS.record_run(
                "batch",
                METRICS.clock() - run_t0,
                stream_records=batch.size,
                num_vertices=self.graph.num_vertices,
            )
        self.history.append(result)
        return result

    # -- selective flow (Algorithm 5) ----------------------------------
    def _apply_selective(self, batch: UpdateBatch) -> StreamingResult:
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()
        old_csr = self.graph.snapshot()
        core.bind_graph(old_csr)

        deletions = self._directed_deletions(batch)
        insertions = self._directed_insertions(batch)

        # Phase 1: ProcessDeletesSelective + ResetImpacted on the old graph.
        tracer = core.tracer
        delete_phase = metrics.phase("delete-propagation")
        queue = core.new_queue()
        queue.set_delete_coalescing(self.policy.coalesces_deletes)
        with tracer.phase(delete_phase):
            seed_work = delete_phase.new_round()
            with tracer.round(seed_work, queue), METRICS.round_scope(
                seed_work, queue
            ):
                buf = _SeedBuffer()
                for u, v, w in deletions:
                    # The stream reader computes the payload from the previous
                    # converged source state (§3.3); BASE events carry no value.
                    if self.policy is DeletePolicy.BASE:
                        payload = 0.0
                    else:
                        payload = algorithm.propagate(float(core.states[u]), w, SourceContext.of(old_csr, u))
                    seed_work.vertex_reads += 1
                    seed_work.events_generated += 1
                    buf.add(v, payload, 1, u)
                buf.flush(queue, seed_work)
            impacted = core.run_delete(queue, delete_phase)
        if METRICS.enabled:
            METRICS.record_phase(delete_phase)
        queue.set_delete_coalescing(True)

        # Mutate the graph; switch to the new structure.
        self._mutate_graph(batch)
        new_csr = self.graph.snapshot()
        core.grow(new_csr.num_vertices)
        core.bind_graph(new_csr)

        # Phase 2: Reapproximate + ProcessInserts + recompute.
        compute_phase = metrics.phase("reevaluation")
        with tracer.phase(compute_phase):
            work = compute_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                identity = algorithm.identity
                buf = _SeedBuffer()
                for i in impacted:
                    self_payload = algorithm.self_event(i)
                    if self_payload is not None:
                        buf.add(i, self_payload, 0, NO_SOURCE)
                        work.events_generated += 1
                    sources = new_csr.in_neighbors(i)
                    for u in sources:
                        buf.add(int(u), identity, 2, NO_SOURCE)
                    n_req = int(sources.shape[0])
                    work.events_generated += n_req
                    compute_phase.request_events += n_req
                for u, v, w in insertions:
                    payload = algorithm.propagate(float(core.states[u]), w, SourceContext.of(new_csr, u))
                    work.vertex_reads += 1
                    work.events_generated += 1
                    buf.add(v, payload, 0, u)
                buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_csr.num_vertices, new_csr.num_vertices)
            core.run_regular(queue, compute_phase)
        if METRICS.enabled:
            METRICS.record_phase(compute_phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            impacted=impacted,
            queue_stats=queue.lifetime_stats(),
        )

    # -- accumulative flow (Algorithm 6 / Fig. 5) ----------------------
    def _apply_accumulative(self, batch: UpdateBatch) -> StreamingResult:
        if self.two_phase_accumulative:
            return self._apply_accumulative_two_phase(batch)
        return self._apply_accumulative_net(batch)

    def _apply_accumulative_net(self, batch: UpdateBatch) -> StreamingResult:
        """Single-phase net-correction flow (default; see __init__ note).

        Every stale contribution of a mutated source is negated and its
        replacement added *as one coalesced seed per target vertex*; the
        net corrections then converge in a single computation phase on the
        new graph. Equivalent fixed point to Algorithm 6.
        """
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()

        deletions = self._directed_deletions(batch)
        insertions = self._directed_insertions(batch)
        deleted_keys = {(u, v) for u, v, _ in deletions}
        old_csr = self.graph.snapshot()
        old_n = old_csr.num_vertices

        tracer = core.tracer
        phase = metrics.phase("reevaluation")
        with tracer.phase(phase):
            work = phase.new_round()
            # The queue does not exist yet (corrections are computed across
            # the graph mutation), so the seed round span carries no
            # occupancy samples — only the work vector.
            with tracer.round(work), METRICS.round_scope(work):
                corrections: Dict[int, float] = {}
                if algorithm.degree_dependent:
                    modified: Set[int] = {u for u, _, _ in deletions}
                    modified.update(u for u, _, _ in insertions if u < old_n)
                    stale: List[Edge] = []
                    for u in sorted(modified):
                        for v, w in self.graph.out_edges(u):
                            stale.append((u, v, w))
                    replacements = [e for e in stale if (e[0], e[1]) not in deleted_keys]
                    replacements.extend(insertions)
                else:
                    stale = deletions
                    replacements = list(insertions)

                for u, v, w in stale:
                    delta = -algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(old_csr, u)
                    )
                    work.vertex_reads += 1
                    corrections[v] = corrections.get(v, 0.0) + delta

                # Mutate; replacements are priced against the new structure.
                self._mutate_graph(batch)
                new_csr = self.graph.snapshot()
                core.grow(new_csr.num_vertices)
                core.bind_graph(new_csr)
                for u, v, w in replacements:
                    delta = algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(new_csr, u)
                    )
                    work.vertex_reads += 1
                    corrections[v] = corrections.get(v, 0.0) + delta

                queue = core.new_queue()
                buf = _SeedBuffer()
                for v in sorted(corrections):
                    delta = corrections[v]
                    if algorithm.should_propagate(delta):
                        work.events_generated += 1
                        buf.add(v, delta, 0, NO_SOURCE)
                buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, phase)
        if METRICS.enabled:
            METRICS.record_phase(phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )

    def _apply_accumulative_two_phase(self, batch: UpdateBatch) -> StreamingResult:
        core = self.core
        algorithm = self.algorithm
        metrics = RunMetrics()

        deletions = self._directed_deletions(batch)
        insertions = self._directed_insertions(batch)
        deleted_keys = {(u, v) for u, v, _ in deletions}

        if algorithm.degree_dependent:
            # Every mutated source's out-degree changes, so ALL its previous
            # out-edge contributions are stale (Fig. 5): sink the source.
            modified_sources: Set[int] = {u for u, _, _ in deletions}
            modified_sources.update(u for u, _, _ in insertions if u < self.graph.num_vertices)
            expanded_deletes: List[Edge] = []
            for u in sorted(modified_sources):
                for v, w in self.graph.out_edges(u):
                    expanded_deletes.append((u, v, w))
            re_adds = [e for e in expanded_deletes if (e[0], e[1]) not in deleted_keys]
            re_adds.extend(insertions)
            intermediate_csr = self.graph.snapshot_with_sinks(modified_sources)
        else:
            expanded_deletes = deletions
            re_adds = list(insertions)
            survivors = [e for e in self.graph.edges() if (e[0], e[1]) not in deleted_keys]
            from repro.graph.csr import CSRGraph

            intermediate_csr = CSRGraph(self.graph.num_vertices, survivors)

        old_csr = self.graph.snapshot()

        # Phase 1: negative events drain stale contributions (Algorithm 3)
        # while the intermediate graph blocks cyclic re-propagation.
        tracer = core.tracer
        delete_phase = metrics.phase("delete-negation")
        with tracer.phase(delete_phase):
            seed_work = delete_phase.new_round()
            with tracer.round(seed_work), METRICS.round_scope(seed_work):
                negative_events = []
                for u, v, w in expanded_deletes:
                    delta = -algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(old_csr, u)
                    )
                    seed_work.vertex_reads += 1
                    if algorithm.should_propagate(delta):
                        negative_events.append(Event(v, delta, 0, u))
                core.bind_graph(intermediate_csr)
                queue = core.new_queue()
                seed_work.events_generated += len(negative_events)
                queue.insert_batch(EventBatch.from_events(negative_events), seed_work)
            core.run_regular(queue, delete_phase)
        if METRICS.enabled:
            METRICS.record_phase(delete_phase)

        # Mutate; switch to the new structure.
        old_n = self.graph.num_vertices
        self._mutate_graph(batch)
        new_csr = self.graph.snapshot()
        core.grow(new_csr.num_vertices)
        core.bind_graph(new_csr)

        # Phase 2: re-add surviving + new edges at the new degrees.
        compute_phase = metrics.phase("reevaluation")
        with tracer.phase(compute_phase):
            work = compute_phase.new_round()
            with tracer.round(work, queue), METRICS.round_scope(work, queue):
                buf = _SeedBuffer()
                for u, v, w in re_adds:
                    delta = algorithm.propagate(
                        float(core.states[u]), w, SourceContext.of(new_csr, u)
                    )
                    work.vertex_reads += 1
                    if algorithm.should_propagate(delta):
                        work.events_generated += 1
                        buf.add(v, delta, 0, u)
                buf.flush(queue, work)
                self._seed_new_vertices(queue, work, old_n, new_csr.num_vertices)
            core.run_regular(queue, compute_phase)
        if METRICS.enabled:
            METRICS.record_phase(compute_phase)

        return StreamingResult(
            states=core.states.copy(),
            metrics=metrics,
            graph_version=self.graph.version,
            queue_stats=queue.lifetime_stats(),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_batch(self, batch: UpdateBatch) -> None:
        deleted = {e.key() for e in batch.deletions}
        for edge in batch.deletions:
            if not self.graph.has_edge(edge.u, edge.v):
                raise ValueError(f"batch deletes missing edge {edge.u}->{edge.v}")
        for edge in batch.insertions:
            # Re-inserting an edge deleted in the same batch is the paper's
            # weight-change idiom (§2.1) and is allowed.
            if self.graph.has_edge(edge.u, edge.v) and edge.key() not in deleted:
                raise ValueError(f"batch inserts duplicate edge {edge.u}->{edge.v}")

    def _directed_deletions(self, batch: UpdateBatch) -> List[Edge]:
        out: List[Edge] = []
        for edge in batch.deletions:
            w = self.graph.edge_weight(edge.u, edge.v)
            out.append((edge.u, edge.v, w))
            if self.graph.symmetric and edge.u != edge.v:
                out.append((edge.v, edge.u, w))
        return out

    def _directed_insertions(self, batch: UpdateBatch) -> List[Edge]:
        out: List[Edge] = []
        for edge in batch.insertions:
            out.append((edge.u, edge.v, edge.w))
            if self.graph.symmetric and edge.u != edge.v:
                out.append((edge.v, edge.u, edge.w))
        return out

    def _mutate_graph(self, batch: UpdateBatch) -> None:
        self.graph.apply_batch(
            [(e.u, e.v, e.w) for e in batch.insertions],
            [(e.u, e.v) for e in batch.deletions],
        )

    def _seed_new_vertices(self, queue, work, old_n: int, new_n: int) -> None:
        """Deliver owed initial events to vertices created by this batch."""
        for v in range(old_n, new_n):
            payload = self.algorithm.seed_event_for_new_vertex(v)
            if payload is not None:
                work.events_generated += 1
                queue.insert(Event(v, payload, 0, NO_SOURCE), work)
