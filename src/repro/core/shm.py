"""Typed shared-memory buffers for the process-parallel sharded backend.

The ``backend="process"`` sharded substrate (:mod:`repro.core.parallel`)
runs one worker process per shard-pool slot. Workers execute the per-shard
compute kernels directly against the engine's hot state — vertex states,
the DAP dependency array, the bound CSR's out-arrays, and the hoisted
propagation factors — so that state lives in
:mod:`multiprocessing.shared_memory` segments instead of private heap
arrays. This module is the small typed-buffer/arena layer both sides use:

* :class:`SharedArena` — owned by the **main** process only. It creates
  segments, wraps them as NumPy arrays, and is the single place segments
  are ever unlinked. Workers never create or unlink; they only attach.
  That asymmetry is what makes crash cleanup trivial: whatever happens to
  a worker, the main process (or its ``atexit``/finalizer safety nets)
  removes every name it created.
* :func:`attach` / :class:`AttachmentCache` — the worker side. Attaching
  re-maps an existing segment by name while suppressing the
  ``resource_tracker`` registration (before Python 3.13 every attach
  re-registers the name with the tracker the workers *share* with their
  parent, corrupting its one-owner-per-name bookkeeping).
* :func:`leaked_system_segments` — test/CI hook listing ``/dev/shm``
  entries that carry this module's name prefix.

Segment names all start with :data:`SEGMENT_PREFIX` so leak checks can
grep for them without false positives.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "AttachmentCache",
    "SharedArena",
    "SharedSegment",
    "ShmError",
    "attach",
    "leaked_system_segments",
    "live_segment_names",
]

#: Every segment this layer creates starts with this prefix (plus the
#: creating pid), so ``ls /dev/shm | grep repro-shm`` is a leak check.
SEGMENT_PREFIX = "repro-shm"

_COUNTER = itertools.count()


class ShmError(RuntimeError):
    """Raised on shared-memory lifecycle violations (use after close)."""


def _new_name() -> str:
    # pid + counter are unique within a process; the random token keeps a
    # recycled pid from colliding with a stale segment of a crashed run.
    return (
        f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_COUNTER)}-{secrets.token_hex(4)}"
    )


class SharedSegment:
    """One shared-memory segment exposed as a typed NumPy array."""

    __slots__ = ("name", "shape", "dtype", "array", "_shm", "__weakref__")

    def __init__(self, name: str, shape, dtype, shm, array):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._shm = shm
        self.array = array

    @property
    def spec(self) -> dict:
        """Picklable attach recipe for worker processes."""
        return {
            "name": self.name,
            "shape": self.shape,
            "dtype": self.dtype.str,
        }

    def close(self, unlink: bool) -> None:
        """Drop the mapping (and the name, when this side owns it).

        The backing ndarray may still be referenced elsewhere (a queue the
        caller has not dropped yet); ``mmap`` refuses to close while such
        exported views exist, so the mapping close is best-effort — the
        unlink is what removes the ``/dev/shm`` name, and it succeeds
        regardless of live mappings (POSIX semantics: memory is reclaimed
        once the last mapping goes away).
        """
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # live views keep the mapping; name still goes
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


class SharedArena:
    """Factory and owner of shared segments (main-process side).

    All segments created here are unlinked when the arena closes — via the
    explicit :meth:`close`, the owning engine's finalizer, or the
    module-level ``atexit`` sweep, whichever fires first (close is
    idempotent).
    """

    def __init__(self, tag: str = ""):
        self.tag = tag
        self._segments: Dict[str, SharedSegment] = {}
        self.closed = False
        _ARENAS.add(self)

    # ------------------------------------------------------------------
    def _create(self, shape, dtype) -> SharedSegment:
        if self.closed:
            raise ShmError("arena is closed")
        shape = tuple(int(s) for s in np.atleast_1d(np.asarray(shape, dtype=np.int64)))
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        name = _new_name()
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        segment = SharedSegment(name, shape, dtype, shm, array)
        self._segments[name] = segment
        return segment

    def empty(self, shape, dtype) -> SharedSegment:
        """New uninitialized segment of ``shape``/``dtype``."""
        return self._create(shape, dtype)

    def full(self, shape, fill_value, dtype) -> SharedSegment:
        """New segment filled with ``fill_value``."""
        segment = self._create(shape, dtype)
        segment.array[...] = fill_value
        return segment

    def from_array(self, source: np.ndarray) -> SharedSegment:
        """New segment holding a copy of ``source``."""
        segment = self._create(source.shape, source.dtype)
        segment.array[...] = source
        return segment

    # ------------------------------------------------------------------
    def release(self, segment: Optional[SharedSegment]) -> None:
        """Unlink one segment early (state-array reallocation on grow)."""
        if segment is None:
            return
        if self._segments.pop(segment.name, None) is not None:
            segment.close(unlink=True)

    def live_names(self) -> List[str]:
        """Names of segments this arena still owns."""
        return list(self._segments)

    def close(self) -> None:
        """Unlink every owned segment. Idempotent."""
        if self.closed:
            return
        self.closed = True
        segments, self._segments = list(self._segments.values()), {}
        for segment in segments:
            segment.close(unlink=True)
        _ARENAS.discard(self)


# Arenas still open in this process; weak so an arena dropped without an
# explicit close is finalized by GC rather than pinned forever. The atexit
# sweep catches whatever is still alive at interpreter shutdown.
_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()


def _close_all_arenas() -> None:
    for arena in list(_ARENAS):
        arena.close()


atexit.register(_close_all_arenas)


def live_segment_names() -> List[str]:
    """Every segment name still owned by an open arena in this process."""
    names: List[str] = []
    for arena in list(_ARENAS):
        names.extend(arena.live_names())
    return names


def leaked_system_segments() -> List[str]:
    """``/dev/shm`` entries carrying this module's prefix (leak check)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux hosts
        return []
    return sorted(
        entry for entry in os.listdir(shm_dir) if entry.startswith(SEGMENT_PREFIX)
    )


# ----------------------------------------------------------------------
# Worker (attach-only) side
# ----------------------------------------------------------------------
def attach(spec: dict):
    """Attach to an existing segment; returns ``(array, shm_handle)``.

    The caller must keep the handle alive as long as the array is used and
    ``close()`` it when done — never ``unlink()``: names belong to the
    creating process's arena.

    Before Python 3.13 (``track=False``) every attach re-registers the
    name with the resource tracker. Spawned workers share the *parent's*
    tracker process, whose bookkeeping is a per-name set — so a worker
    registering and later unregistering would erase the owner's entry and
    the owning unlink would log tracker KeyErrors. Suppressing the
    registration during attach keeps the tracker's view exactly "one
    owner per name".
    """
    original_register = resource_tracker.register

    def _no_shm_register(name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = _no_shm_register
    try:
        shm = shared_memory.SharedMemory(name=spec["name"])
    finally:
        resource_tracker.register = original_register
    array = np.ndarray(
        tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=shm.buf
    )
    return array, shm


class AttachmentCache:
    """Per-worker cache of attached segments, keyed by segment name.

    Rebinding between phases usually re-sends the same segment names; the
    cache turns those into no-ops and drops mappings whose segments were
    reallocated (state growth, CSR swap).
    """

    def __init__(self):
        self._attached: Dict[str, tuple] = {}

    def attach(self, spec: dict) -> np.ndarray:
        entry = self._attached.get(spec["name"])
        if entry is None:
            entry = attach(spec)
            self._attached[spec["name"]] = entry
        return entry[0]

    def retain(self, names: Iterable[str]) -> None:
        """Close every attachment not named in ``names``."""
        keep = set(names)
        for name in list(self._attached):
            if name not in keep:
                array, shm = self._attached.pop(name)
                del array
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - view still alive
                    pass

    def close_all(self) -> None:
        self.retain(())
