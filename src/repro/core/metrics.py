"""Work accounting shared by the functional engines and the timing model.

The functional engines record, per scheduler *round* (one drain sweep over
the queue bins, §4.3), the work vector the architectural model needs:
events processed and generated, vertex/edge reads, unique DRAM lines and
pages touched by the prefetchers, coalescer operations, and spill traffic.
Phases aggregate rounds; runs aggregate phases.

This is the measurement substrate behind Table 3 (via the timing model),
Fig. 9 (vertex/edge access counts), and Fig. 11 (line-utilization ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np


def segmented_distinct_count(values: np.ndarray, seg_start: np.ndarray) -> int:
    """Number of distinct values per segment, summed over all segments.

    ``values`` must be sorted (non-decreasing) within each segment;
    ``seg_start`` is a boolean mask marking the first element of each
    segment. This is the vectorized equivalent of building one Python
    ``set`` per processing-buffer batch and summing their sizes — the
    prefetcher line/page accounting of §4.4 — and matches it exactly
    because sorted duplicates are adjacent.
    """
    n = values.shape[0]
    if n == 0:
        return 0
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.not_equal(values[1:], values[:-1], out=new[1:])
    return int(np.count_nonzero(new | seg_start))


def segmented_interval_union(
    lo: np.ndarray, hi: np.ndarray, seg_start: np.ndarray
) -> int:
    """Total size of the per-segment unions of integer intervals ``[lo, hi]``.

    Both bounds must be non-decreasing within each segment (true for edge
    line/page intervals of vertices processed in ascending id order, since
    CSR offsets are monotone). Replaces the scalar engine's per-batch
    ``set.update(range(lo, hi + 1))`` with closed-form overlap arithmetic:
    each interval contributes the part of ``[lo, hi]`` that lies beyond the
    previous interval's end.
    """
    n = lo.shape[0]
    if n == 0:
        return 0
    prev_hi = np.empty_like(hi)
    prev_hi[0] = lo[0] - 1
    prev_hi[1:] = hi[:-1]
    # First interval of each segment overlaps nothing.
    prev_hi[seg_start] = lo[seg_start] - 1
    contrib = hi - np.maximum(lo - 1, prev_hi)
    return int(np.maximum(contrib, 0).sum())


@dataclass
class RoundWork:
    """Work vector of one scheduler round."""

    events_processed: int = 0
    events_generated: int = 0
    queue_inserts: int = 0
    coalesce_ops: int = 0
    vertex_reads: int = 0
    vertex_writes: int = 0
    edges_read: int = 0
    #: Unique 64B vertex-state lines fetched by the scratchpad prefetchers
    #: (uniqueness per processing-buffer batch, §4.4).
    vertex_lines: int = 0
    #: Unique 64B edge-list lines fetched through the edge cache.
    edge_lines: int = 0
    #: Unique DRAM pages opened (row-buffer activations).
    dram_pages: int = 0
    #: Off-chip spill traffic (DAP overflow buffer, cross-slice events).
    spill_bytes: int = 0

    def merge(self, other: "RoundWork") -> None:
        """Accumulate another round's counts into this one."""
        self.events_processed += other.events_processed
        self.events_generated += other.events_generated
        self.queue_inserts += other.queue_inserts
        self.coalesce_ops += other.coalesce_ops
        self.vertex_reads += other.vertex_reads
        self.vertex_writes += other.vertex_writes
        self.edges_read += other.edges_read
        self.vertex_lines += other.vertex_lines
        self.edge_lines += other.edge_lines
        self.dram_pages += other.dram_pages
        self.spill_bytes += other.spill_bytes


#: Column order of :meth:`RunMetrics.to_csv` — the round-trace schema.
CSV_HEADER = (
    "phase",
    "round",
    "events_processed",
    "events_generated",
    "queue_inserts",
    "coalesce_ops",
    "vertex_reads",
    "vertex_writes",
    "edges_read",
    "vertex_lines",
    "edge_lines",
    "dram_pages",
    "spill_bytes",
)


@dataclass
class PhaseStats:
    """Aggregated work of one execution phase (§4.6).

    Phases: initial static evaluation, delete propagation, re-approximation
    setup, and re-evaluation. ``rounds`` retains per-round vectors for the
    timing model.
    """

    name: str
    rounds: List[RoundWork] = field(default_factory=list)
    vertices_reset: int = 0
    deletes_discarded: int = 0
    request_events: int = 0
    touched_vertices: Set[int] = field(default_factory=set)
    #: Per-engine work vectors of each *kernel* round when the sharded
    #: backend runs this phase (one ``List[RoundWork]`` per drained round,
    #: indexed by engine id). Orchestration/seed rounds add no entry. The
    #: merged per-round vectors in :attr:`rounds` stay bit-identical to the
    #: single-engine substrates; this is the per-engine decomposition the
    #: Fig. 11-style utilization analysis derives engine load from.
    shard_rounds: List[List[RoundWork]] = field(default_factory=list)
    #: Inter-engine NoC traffic of the sharded backend (§4.4/§4.7):
    #: generated events delivered to the producer's own engine vs. routed
    #: across the crossbar, with flit and contended-cycle estimates from
    #: :class:`repro.sim.noc.CrossbarModel`. Zero on single-engine runs.
    noc_events_local: int = 0
    noc_events_remote: int = 0
    noc_flits: int = 0
    noc_cycles: float = 0.0

    def new_round(self) -> RoundWork:
        """Open a new round and return its work vector."""
        work = RoundWork()
        self.rounds.append(work)
        return work

    @property
    def total(self) -> RoundWork:
        """Sum of all round vectors."""
        total = RoundWork()
        for work in self.rounds:
            total.merge(work)
        return total

    @property
    def num_rounds(self) -> int:
        """Number of scheduler rounds executed in this phase."""
        return len(self.rounds)

    def per_engine_totals(self) -> List[RoundWork]:
        """Per-engine work summed over this phase's sharded rounds.

        Empty when the phase did not run on the sharded backend.
        """
        if not self.shard_rounds:
            return []
        totals = [RoundWork() for _ in self.shard_rounds[0]]
        for shard_works in self.shard_rounds:
            for engine_id, work in enumerate(shard_works):
                totals[engine_id].merge(work)
        return totals

    # Convenience accessors used throughout the experiments -------------
    @property
    def events_processed(self) -> int:
        return self.total.events_processed

    @property
    def vertex_accesses(self) -> int:
        """Vertex reads + writes (the Fig. 9 'vertex access' metric)."""
        total = self.total
        return total.vertex_reads + total.vertex_writes

    @property
    def edge_accesses(self) -> int:
        """Edges read during propagation (the Fig. 9 'edge access' metric)."""
        return self.total.edges_read

    def bytes_used(self) -> int:
        """Bytes actually consumed by the compute engines (Fig. 11 numerator)."""
        total = self.total
        return 8 * (total.vertex_reads + total.vertex_writes) + 8 * total.edges_read

    def bytes_transferred(self) -> int:
        """Bytes moved from DRAM into on-chip memories (Fig. 11 denominator)."""
        total = self.total
        return 64 * (total.vertex_lines + total.edge_lines) + total.spill_bytes


@dataclass
class RunMetrics:
    """All phases of one engine run (static or streaming)."""

    phases: List[PhaseStats] = field(default_factory=list)

    def phase(self, name: str) -> PhaseStats:
        """Open (and register) a new phase."""
        stats = PhaseStats(name=name)
        self.phases.append(stats)
        return stats

    def find(self, name: str) -> Optional[PhaseStats]:
        """First phase with the given name, or ``None``."""
        for stats in self.phases:
            if stats.name == name:
                return stats
        return None

    @property
    def total(self) -> RoundWork:
        """Work summed over every phase."""
        total = RoundWork()
        for stats in self.phases:
            total.merge(stats.total)
        return total

    @property
    def vertex_accesses(self) -> int:
        return sum(p.vertex_accesses for p in self.phases)

    @property
    def edge_accesses(self) -> int:
        return sum(p.edge_accesses for p in self.phases)

    @property
    def vertices_reset(self) -> int:
        return sum(p.vertices_reset for p in self.phases)

    @property
    def events_processed(self) -> int:
        return sum(p.events_processed for p in self.phases)

    def per_engine_totals(self) -> List[RoundWork]:
        """Per-engine work summed across every sharded phase of the run."""
        totals: List[RoundWork] = []
        for stats in self.phases:
            for engine_id, work in enumerate(stats.per_engine_totals()):
                while len(totals) <= engine_id:
                    totals.append(RoundWork())
                totals[engine_id].merge(work)
        return totals

    def engine_utilization(self) -> List[float]:
        """Fraction of total processed events handled by each engine.

        The Fig. 11-style load-balance view of a sharded run: 1/N per
        engine is perfect balance. Empty for single-engine runs.
        """
        totals = self.per_engine_totals()
        processed = sum(t.events_processed for t in totals)
        if not totals or processed == 0:
            return []
        return [t.events_processed / processed for t in totals]

    def noc_summary(self) -> Dict[str, float]:
        """Inter-engine NoC traffic summed over all phases (sharded runs).

        Event and flit counts are exact integers (cycles stay float: the
        crossbar model amortizes fractional cycles per flit).
        """
        return {
            "events_local": int(sum(p.noc_events_local for p in self.phases)),
            "events_remote": int(sum(p.noc_events_remote for p in self.phases)),
            "flits": int(sum(p.noc_flits for p in self.phases)),
            "cycles": sum(p.noc_cycles for p in self.phases),
        }

    def memory_utilization(self) -> float:
        """Ratio of bytes used to bytes transferred (Fig. 11).

        Clamped to 1.0: dense rounds can consume one fetched line several
        times (multiple events in a batch sharing a line), which is reuse,
        not extra transfer.
        """
        used = sum(p.bytes_used() for p in self.phases)
        moved = sum(p.bytes_transferred() for p in self.phases)
        return min(1.0, used / moved) if moved else 0.0

    def to_rows(self) -> List[Dict[str, float]]:
        """Per-round rows (phase, round index, work vector) for CSV export."""
        rows = []
        for stats in self.phases:
            for index, work in enumerate(stats.rounds):
                rows.append(
                    {
                        "phase": stats.name,
                        "round": index,
                        "events_processed": work.events_processed,
                        "events_generated": work.events_generated,
                        "queue_inserts": work.queue_inserts,
                        "coalesce_ops": work.coalesce_ops,
                        "vertex_reads": work.vertex_reads,
                        "vertex_writes": work.vertex_writes,
                        "edges_read": work.edges_read,
                        "vertex_lines": work.vertex_lines,
                        "edge_lines": work.edge_lines,
                        "dram_pages": work.dram_pages,
                        "spill_bytes": work.spill_bytes,
                    }
                )
        return rows

    def to_csv(self, path: str) -> int:
        """Write the per-round trace as CSV; returns the row count.

        The hardware-debug view: one line per scheduler round, the raw
        material behind every timing estimate. The header is always
        written, even for zero-round runs, so downstream readers see a
        well-formed (if empty) table.
        """
        rows = self.to_rows()
        header = list(rows[0]) if rows else list(CSV_HEADER)
        with open(path, "w", encoding="ascii") as handle:
            handle.write(",".join(header) + "\n")
            for row in rows:
                handle.write(",".join(str(row[k]) for k in header) + "\n")
        return len(rows)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline counters (for reports/tests)."""
        total = self.total
        return {
            "phases": len(self.phases),
            "rounds": sum(p.num_rounds for p in self.phases),
            "events_processed": total.events_processed,
            "events_generated": total.events_generated,
            "coalesce_ops": total.coalesce_ops,
            "vertex_accesses": self.vertex_accesses,
            "edge_accesses": self.edge_accesses,
            "vertices_reset": self.vertices_reset,
            "spill_bytes": total.spill_bytes,
            "memory_utilization": self.memory_utilization(),
        }


@dataclass
class SoftwareWork:
    """Work counters for the software baseline models (§6.1 left column).

    The software cost model (:mod:`repro.sim.cost_models`) converts these to
    wall-clock estimates on the Table 1 software platform.
    """

    iterations: int = 0
    edges_traversed: int = 0
    vertex_reads_random: int = 0
    vertex_reads_sequential: int = 0
    vertex_writes: int = 0
    atomics: int = 0
    vertices_reset: int = 0
    #: Extra bookkeeping bytes (dependency trees, aggregation history).
    bookkeeping_bytes: int = 0

    def merge(self, other: "SoftwareWork") -> None:
        """Accumulate another counter set into this one."""
        self.iterations += other.iterations
        self.edges_traversed += other.edges_traversed
        self.vertex_reads_random += other.vertex_reads_random
        self.vertex_reads_sequential += other.vertex_reads_sequential
        self.vertex_writes += other.vertex_writes
        self.atomics += other.atomics
        self.vertices_reset += other.vertices_reset
        self.bookkeeping_bytes += other.bookkeeping_bytes
