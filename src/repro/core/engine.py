"""The event-driven compute engine (GraphPulse datapath, §3.1 / §4.6.1).

:class:`EngineCore` owns the vertex state array (plus the DAP dependency
array), the bound graph snapshot, and the two event-processing loops:

* :meth:`EngineCore.run_regular` — the ordinary computation phase of
  Algorithm 1, extended with JetStream's request-flag semantics (§3.4);
* :meth:`EngineCore.run_delete` — the recovery phase of Algorithm 4, with
  the Base/VAP/DAP impact tests (§5).

:class:`GraphPulseEngine` wraps the core for *static* evaluation — exactly
what the original GraphPulse accelerator does, and what the cold-start
baseline of Table 3 reruns after every batch. The streaming extension lives
in :mod:`repro.core.streaming`.

Every loop records per-round work vectors (:class:`~repro.core.metrics`)
that the architectural timing model later converts to cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.algorithms.base import NULL_CONTEXT, AlgorithmKind, SourceContext
from repro.core.config import AcceleratorConfig
from repro.core.events import NO_SOURCE, Event
from repro.core.metrics import PhaseStats, RoundWork, RunMetrics
from repro.core.policies import DeletePolicy
from repro.core.queue import CoalescingQueue
from repro.graph.csr import CSRGraph

#: Hard cap on scheduler rounds — generous (real runs take tens to a few
#: thousand rounds); exceeding it indicates non-termination.
MAX_ROUNDS = 1_000_000

_LINE = 64  # cache-line bytes (fixed by the DRAM interface)


class EngineCore:
    """Shared datapath state and event loops for all engine variants."""

    def __init__(
        self,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
        policy: DeletePolicy = DeletePolicy.DAP,
        queue_event_bytes: Optional[int] = None,
    ):
        self.algorithm = algorithm
        self.config = config or AcceleratorConfig()
        self.policy = policy
        self.event_bytes = (
            queue_event_bytes
            if queue_event_bytes is not None
            else policy.event_bytes(self.config)
        )
        self.states: np.ndarray = np.empty(0, dtype=np.float64)
        self.dependency: np.ndarray = np.empty(0, dtype=np.int64)
        self.csr: Optional[CSRGraph] = None
        self._out_degree: Optional[np.ndarray] = None
        self._out_weight_sum: Optional[np.ndarray] = None
        self._slice_of: Optional[np.ndarray] = None
        self._prop_factor: Optional[np.ndarray] = None
        self.num_slices = 1

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def allocate(self, num_vertices: int) -> None:
        """(Re)initialize vertex state to Identity for ``num_vertices``."""
        self.states = np.full(num_vertices, self.algorithm.identity, dtype=np.float64)
        self.dependency = np.full(num_vertices, NO_SOURCE, dtype=np.int64)
        self._assign_slices(num_vertices)

    def grow(self, num_vertices: int) -> None:
        """Extend the state arrays for vertices created mid-stream."""
        current = self.states.shape[0]
        if num_vertices <= current:
            return
        extra = num_vertices - current
        self.states = np.concatenate(
            [self.states, np.full(extra, self.algorithm.identity, dtype=np.float64)]
        )
        self.dependency = np.concatenate(
            [self.dependency, np.full(extra, NO_SOURCE, dtype=np.int64)]
        )
        self._assign_slices(num_vertices)

    def _assign_slices(self, num_vertices: int) -> None:
        capacity = self.config.queue_capacity_vertices(self.event_bytes)
        self.num_slices = max(1, -(-num_vertices // capacity)) if num_vertices else 1
        if self.num_slices == 1:
            self._slice_of = None
        else:
            # Contiguous-range slicing; experiments may swap in an edge-cut
            # assignment from repro.graph.partition via set_slice_assignment.
            self._slice_of = np.arange(num_vertices, dtype=np.int64) // capacity

    def set_slice_assignment(self, slice_of: np.ndarray) -> None:
        """Install an externally computed slice assignment (e.g. edge-cut)."""
        slice_of = np.asarray(slice_of, dtype=np.int64)
        if slice_of.shape[0] != self.states.shape[0]:
            raise ValueError("assignment must cover every vertex")
        self._slice_of = slice_of
        self.num_slices = int(slice_of.max()) + 1 if slice_of.size else 1

    def bind_graph(self, csr: CSRGraph) -> None:
        """Point the datapath at a graph snapshot (host CSR swap, §4.7)."""
        self.csr = csr
        if self.algorithm.kind is AlgorithmKind.ACCUMULATIVE:
            offsets = csr.out_offsets
            self._out_degree = np.diff(offsets)
            # Sum of out-edge weights per vertex (Adsorption normalizer).
            sums = np.zeros(csr.num_vertices, dtype=np.float64)
            if csr.num_edges:
                cumulative = np.concatenate(([0.0], np.cumsum(csr.out_weights)))
                sums = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
            self._out_weight_sum = sums
            # Hoisted per-source propagation factor (linear fast path).
            self._prop_factor = np.array(
                [
                    self.algorithm.propagation_factor(
                        SourceContext(int(self._out_degree[v]), float(sums[v]))
                    )
                    for v in range(csr.num_vertices)
                ],
                dtype=np.float64,
            )
        else:
            self._out_degree = None
            self._out_weight_sum = None
            self._prop_factor = None

    def source_context(self, v: int) -> SourceContext:
        """Out-edge context of ``v`` in the bound graph."""
        if self._out_degree is None:
            return NULL_CONTEXT
        return SourceContext(
            out_degree=int(self._out_degree[v]),
            out_weight_sum=float(self._out_weight_sum[v]),
        )

    def new_queue(self) -> CoalescingQueue:
        """A coalescing queue sized/partitioned for the current state."""
        return CoalescingQueue(
            self.algorithm,
            self.config,
            self.policy,
            num_vertices=self.states.shape[0],
            slice_of=self._slice_of,
        )

    # ------------------------------------------------------------------
    # Event loops
    # ------------------------------------------------------------------
    def run_regular(self, queue: CoalescingQueue, phase: PhaseStats) -> None:
        """Computation phase: process events until the queue drains (§4.6.1).

        Implements Algorithm 1 plus request-flag semantics: a vertex
        receiving a request event propagates its state along all out-edges
        even when the state did not change (§3.4).
        """
        algorithm = self.algorithm
        csr = self.csr
        states = self.states
        dependency = self.dependency
        track_dep = self.policy.tracks_dependency
        accumulative = algorithm.kind is AlgorithmKind.ACCUMULATIVE
        reduce_ = algorithm.reduce
        propagate = algorithm.propagate
        threshold = algorithm.propagation_threshold
        weight_scaled = algorithm.weight_scaled_propagation
        prop_factor = self._prop_factor
        offsets = csr.out_offsets
        targets = csr.out_targets
        weights = csr.out_weights
        page_bytes = self.config.dram_page_bytes

        max_rows = self.config.scheduler_rows_per_round
        rounds = 0
        while queue.pending():
            if not queue.active_pending():
                queue.activate_next_slice()
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("engine exceeded MAX_ROUNDS; non-termination?")
            work = phase.new_round()
            for batch in queue.drain_round(work, max_rows):
                self._account_vertex_batch(batch, work, page_bytes)
                edge_lines = set()
                edge_pages = set()
                for event in batch:
                    v = event.target
                    work.events_processed += 1
                    work.vertex_reads += 1
                    state = states[v]
                    new_state = reduce_(state, event.payload)
                    changed = new_state != state
                    if changed:
                        states[v] = new_state
                        work.vertex_writes += 1
                        if track_dep:
                            dependency[v] = event.source
                    if not (changed or event.flags & 2):
                        continue
                    start = offsets[v]
                    stop = offsets[v + 1]
                    if stop == start:
                        continue
                    work.edges_read += int(stop - start)
                    edge_lines.update(
                        range(int(start * 8) // _LINE, int(stop * 8 - 1) // _LINE + 1)
                    )
                    edge_pages.update(
                        range(
                            int(start * 8) // page_bytes,
                            int(stop * 8 - 1) // page_bytes + 1,
                        )
                    )
                    if accumulative:
                        # Linear fast path: forwarded delta is the incoming
                        # delta scaled by the hoisted per-source factor.
                        base_value = (new_state - state) * prop_factor[v]
                        if weight_scaled:
                            for i in range(start, stop):
                                value = base_value * weights[i]
                                if value > threshold or value < -threshold:
                                    work.events_generated += 1
                                    queue.insert(Event(int(targets[i]), value, 0, v), work)
                        elif base_value > threshold or base_value < -threshold:
                            for i in range(start, stop):
                                work.events_generated += 1
                                queue.insert(
                                    Event(int(targets[i]), base_value, 0, v), work
                                )
                    else:
                        basis = states[v]
                        for i in range(start, stop):
                            value = propagate(basis, weights[i], NULL_CONTEXT)
                            work.events_generated += 1
                            queue.insert(Event(int(targets[i]), value, 0, v), work)
                work.edge_lines += len(edge_lines)
                work.dram_pages += len(edge_pages)

    def run_delete(self, queue: CoalescingQueue, phase: PhaseStats) -> List[int]:
        """Recovery phase: propagate delete tags, reset impacted vertices.

        Implements ``ResetImpacted`` of Algorithm 4 with the policy impact
        tests of §5. The queue must contain the initial delete events
        (``ProcessDeletesSelective``); the bound graph must be the
        *previous* version (§3.5). Returns the impacted-vertex list (the
        Impact Buffer contents, §4.5).
        """
        algorithm = self.algorithm
        csr = self.csr
        states = self.states
        dependency = self.dependency
        policy = self.policy
        identity = algorithm.identity
        propagate = algorithm.propagate
        more_progressed = algorithm.more_progressed
        offsets = csr.out_offsets
        targets = csr.out_targets
        weights = csr.out_weights
        page_bytes = self.config.dram_page_bytes
        base_policy = policy is DeletePolicy.BASE
        vap = policy is DeletePolicy.VAP
        dap = policy is DeletePolicy.DAP

        max_rows = self.config.scheduler_rows_per_round
        impacted: List[int] = []
        rounds = 0
        while queue.pending():
            if not queue.active_pending():
                queue.activate_next_slice()
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("delete phase exceeded MAX_ROUNDS")
            work = phase.new_round()
            for batch in queue.drain_round(work, max_rows):
                self._account_vertex_batch(batch, work, page_bytes)
                edge_lines = set()
                edge_pages = set()
                for event in batch:
                    v = event.target
                    work.events_processed += 1
                    work.vertex_reads += 1
                    state = states[v]
                    if state == identity:
                        phase.deletes_discarded += 1
                        continue
                    if dap and dependency[v] != event.source:
                        phase.deletes_discarded += 1
                        continue
                    if vap and more_progressed(state, event.payload):
                        phase.deletes_discarded += 1
                        continue
                    # Reset (tag) the vertex — Algorithm 4, line 11.
                    states[v] = identity
                    work.vertex_writes += 1
                    if dap:
                        dependency[v] = NO_SOURCE
                    impacted.append(v)
                    phase.vertices_reset += 1
                    start = offsets[v]
                    stop = offsets[v + 1]
                    if stop == start:
                        continue
                    work.edges_read += int(stop - start)
                    edge_lines.update(
                        range(int(start * 8) // _LINE, int(stop * 8 - 1) // _LINE + 1)
                    )
                    edge_pages.update(
                        range(
                            int(start * 8) // page_bytes,
                            int(stop * 8 - 1) // page_bytes + 1,
                        )
                    )
                    for i in range(start, stop):
                        # BASE carries no value (Algorithm 4 queues <v, 0>);
                        # VAP/DAP carry the contribution computed from the
                        # pre-reset state (§5.1, §5.2).
                        payload = (
                            0.0
                            if base_policy
                            else propagate(state, weights[i], NULL_CONTEXT)
                        )
                        work.events_generated += 1
                        queue.insert(
                            Event(int(targets[i]), payload, 1, v),
                            work,
                        )
                work.edge_lines += len(edge_lines)
                work.dram_pages += len(edge_pages)
        return impacted

    # ------------------------------------------------------------------
    @staticmethod
    def _account_vertex_batch(
        batch: List[Event], work: RoundWork, page_bytes: int
    ) -> None:
        """Prefetcher accounting: unique state lines/pages per batch (§4.4)."""
        lines = set()
        pages = set()
        for event in batch:
            addr = event.target * 8
            lines.add(addr // _LINE)
            pages.add(addr // page_bytes)
        work.vertex_lines += len(lines)
        work.dram_pages += len(pages)


@dataclass
class ComputeResult:
    """Outcome of a static evaluation."""

    states: np.ndarray
    metrics: RunMetrics

    @property
    def num_rounds(self) -> int:
        """Scheduler rounds executed."""
        return sum(p.num_rounds for p in self.metrics.phases)


class GraphPulseEngine:
    """Static event-driven evaluation — the original GraphPulse (§3.1).

    Also serves as the cold-start baseline: rerunning :meth:`compute` on
    each mutated snapshot is exactly the "GP" comparison rows of Table 3.

    Parameters
    ----------
    algorithm:
        A :class:`~repro.algorithms.base.Algorithm`.
    config:
        Accelerator configuration (defaults to Table 1).
    graphpulse_event_size:
        Use the narrower GraphPulse event encoding for queue capacity
        accounting (the static accelerator carries no flags/source).
    """

    def __init__(
        self,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
        graphpulse_event_size: bool = True,
    ):
        config = config or AcceleratorConfig()
        event_bytes = config.event_bytes_graphpulse if graphpulse_event_size else None
        self.core = EngineCore(
            algorithm,
            config,
            policy=DeletePolicy.BASE,
            queue_event_bytes=event_bytes,
        )

    @property
    def algorithm(self):
        """The bound algorithm."""
        return self.core.algorithm

    def compute(self, csr: CSRGraph) -> ComputeResult:
        """Evaluate the query on ``csr`` from scratch (cold start)."""
        core = self.core
        core.allocate(csr.num_vertices)
        core.bind_graph(csr)
        metrics = RunMetrics()
        phase = metrics.phase("initial")
        queue = core.new_queue()
        seed_work = phase.new_round()
        for vertex, payload in core.algorithm.initial_events(csr):
            queue.insert(Event(vertex, payload, 0, NO_SOURCE), seed_work)
        core.run_regular(queue, phase)
        return ComputeResult(states=core.states.copy(), metrics=metrics)
