"""The event-driven compute engine (GraphPulse datapath, §3.1 / §4.6.1).

:class:`EngineCore` owns the vertex state array (plus the DAP dependency
array), the bound graph snapshot, and the two event-processing loops:

* :meth:`EngineCore.run_regular` — the ordinary computation phase of
  Algorithm 1, extended with JetStream's request-flag semantics (§3.4);
* :meth:`EngineCore.run_delete` — the recovery phase of Algorithm 4, with
  the Base/VAP/DAP impact tests (§5).

:class:`GraphPulseEngine` wraps the core for *static* evaluation — exactly
what the original GraphPulse accelerator does, and what the cold-start
baseline of Table 3 reruns after every batch. The streaming extension lives
in :mod:`repro.core.streaming`.

Every loop records per-round work vectors (:class:`~repro.core.metrics`)
that the architectural timing model later converts to cycles.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.algorithms.base import NULL_CONTEXT, AlgorithmKind, SourceContext
from repro.core.config import AcceleratorConfig
from repro.core.events import NO_SOURCE, Event, EventBatch
from repro.core.metrics import (
    PhaseStats,
    RoundWork,
    RunMetrics,
    segmented_distinct_count,
    segmented_interval_union,
)
from repro.core.policies import DeletePolicy
from repro.core.queue import CoalescingQueue, VectorQueue
from repro.graph.csr import CSRGraph
from repro.obs.metrics import REGISTRY as METRICS
from repro.obs.tracer import NULL_TRACER, work_attrs
from repro.graph.partition import extend_assignment, extend_partition, partition_graph

#: Hard cap on scheduler rounds — generous (real runs take tens to a few
#: thousand rounds); exceeding it indicates non-termination.
MAX_ROUNDS = 1_000_000

_LINE = 64  # cache-line bytes (fixed by the DRAM interface)

#: Engine substrate choices: ``auto`` picks the vectorized path whenever the
#: algorithm provides the array hooks, falling back to scalar otherwise;
#: ``sharded`` runs the vectorized kernels over ``num_engines`` parallel
#: graph slices (Table 1, §4.7) with deterministic merge.
ENGINE_MODES = ("auto", "scalar", "vectorized", "sharded")

#: Sharded execution backends: ``thread`` runs shard kernels on one
#: persistent thread pool over the heap arrays; ``process`` runs one
#: worker process per pool slot against shared-memory segments
#: (:mod:`repro.core.shm`) — real CPU parallelism instead of GIL-limited
#: threads, with bit-identical results (see repro.core.parallel).
SHARD_BACKENDS = ("thread", "process")


def _release_core_resources(cleanup: dict) -> None:
    """GC finalizer for :class:`EngineCore` — must not reference the core."""
    executor = cleanup.pop("executor", None)
    if executor is not None:
        from repro.core import parallel

        parallel.release_shard_executor(executor)
    arena = cleanup.pop("arena", None)
    if arena is not None:
        arena.close()


class EngineCore:
    """Shared datapath state and event loops for all engine variants."""

    def __init__(
        self,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
        policy: DeletePolicy = DeletePolicy.DAP,
        queue_event_bytes: Optional[int] = None,
        engine: str = "auto",
        num_engines: int = 8,
        shard_workers: Optional[int] = None,
        backend: str = "thread",
        tracer=None,
    ):
        self.algorithm = algorithm
        self.config = config or AcceleratorConfig()
        self.policy = policy
        #: Observability hook (repro.obs). The default NULL_TRACER keeps
        #: the event loops' per-round cost at one attribute check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if engine not in ENGINE_MODES:
            raise ValueError(f"engine must be one of {ENGINE_MODES}, got {engine!r}")
        if engine in ("vectorized", "sharded") and not algorithm.supports_vectorized:
            raise ValueError(
                f"{algorithm.name} provides no vectorized hooks; "
                "use engine='scalar' or 'auto'"
            )
        if num_engines < 1:
            raise ValueError("num_engines must be >= 1")
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"backend must be one of {SHARD_BACKENDS}, got {backend!r}"
            )
        if backend == "process" and engine != "sharded":
            raise ValueError("backend='process' requires engine='sharded'")
        self.engine_mode = engine
        self.num_engines = num_engines
        self.shard_workers = shard_workers
        self.backend = backend
        #: Shared-memory state (process backend): the arena owning every
        #: segment, plus the live state/graph/queue segments. Cleanup runs
        #: through ``close()`` — or, for abandoned cores, the GC finalizer
        #: over ``_cleanup`` (which must never reference the core itself).
        self._arena = None
        self._state_segment = None
        self._dependency_segment = None
        self._graph_segments: Optional[dict] = None
        self._queue_segments: list = []
        self._shard_executor = None
        self._cleanup: dict = {"arena": None, "executor": None}
        self._finalizer = weakref.finalize(
            self, _release_core_resources, self._cleanup
        )
        self.event_bytes = (
            queue_event_bytes
            if queue_event_bytes is not None
            else policy.event_bytes(self.config)
        )
        self.states: np.ndarray = np.empty(0, dtype=np.float64)
        self.dependency: np.ndarray = np.empty(0, dtype=np.int64)
        self.csr: Optional[CSRGraph] = None
        self._out_degree: Optional[np.ndarray] = None
        self._out_weight_sum: Optional[np.ndarray] = None
        self._slice_of: Optional[np.ndarray] = None
        self._custom_slice_of: Optional[np.ndarray] = None
        self._prop_factor: Optional[np.ndarray] = None
        self._shard_plan = None  # PartitionResult driving engine="sharded"
        self.num_slices = 1

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def allocate(self, num_vertices: int) -> None:
        """(Re)initialize vertex state to Identity for ``num_vertices``."""
        if self.backend == "process":
            arena = self._ensure_arena()
            old_state = self._state_segment
            old_dep = self._dependency_segment
            self._state_segment = arena.full(
                num_vertices, self.algorithm.identity, np.float64
            )
            self._dependency_segment = arena.full(num_vertices, NO_SOURCE, np.int64)
            arena.release(old_state)
            arena.release(old_dep)
            self.states = self._state_segment.array
            self.dependency = self._dependency_segment.array
        else:
            self.states = np.full(
                num_vertices, self.algorithm.identity, dtype=np.float64
            )
            self.dependency = np.full(num_vertices, NO_SOURCE, dtype=np.int64)
        self._custom_slice_of = None
        self._shard_plan = None
        self._assign_slices(num_vertices)

    def grow(self, num_vertices: int) -> None:
        """Extend the state arrays for vertices created mid-stream.

        A custom slice assignment installed with :meth:`set_slice_assignment`
        is *extended* (lightest slice, lowest id on ties — see
        :func:`repro.graph.partition.extend_assignment`), not discarded: the
        old behaviour of rebuilding the contiguous-range slicing silently
        dropped an edge-cut partition the moment a streamed insert created a
        vertex. The active shard plan grows by the same rule.
        """
        current = self.states.shape[0]
        if num_vertices <= current:
            return
        extra = num_vertices - current
        if self.backend == "process":
            # Reallocate into fresh segments; the old ones unlink as soon
            # as the contents are copied out (workers re-attach at the
            # next phase bind — segment names change, stale ones drop).
            arena = self._ensure_arena()
            old_state = self._state_segment
            old_dep = self._dependency_segment
            self._state_segment = arena.empty(num_vertices, np.float64)
            self._state_segment.array[:current] = self.states
            self._state_segment.array[current:] = self.algorithm.identity
            self._dependency_segment = arena.empty(num_vertices, np.int64)
            self._dependency_segment.array[:current] = self.dependency
            self._dependency_segment.array[current:] = NO_SOURCE
            arena.release(old_state)
            arena.release(old_dep)
            self.states = self._state_segment.array
            self.dependency = self._dependency_segment.array
        else:
            self.states = np.concatenate(
                [self.states, np.full(extra, self.algorithm.identity, dtype=np.float64)]
            )
            self.dependency = np.concatenate(
                [self.dependency, np.full(extra, NO_SOURCE, dtype=np.int64)]
            )
        if self._custom_slice_of is not None:
            self._custom_slice_of = extend_assignment(
                self._custom_slice_of, num_vertices, self.num_slices
            )
            self._slice_of = self._custom_slice_of
        else:
            self._assign_slices(num_vertices)
        if self._shard_plan is not None:
            self._shard_plan = extend_partition(self._shard_plan, num_vertices)

    def reset_states(self, num_vertices: Optional[int] = None) -> None:
        """Return every vertex to Identity without discarding the topology.

        Unlike :meth:`allocate`, this keeps the installed slice assignment
        and shard plan intact — a common-graph pass binds a *smaller* edge
        set over the same vertex range, and repartitioning there would give
        the base and addition phases different vertex→engine maps (and
        nondeterministic shard ids between them). The fill happens in place,
        so shared-memory views stay valid for the process backend.
        """
        target = self.states.shape[0] if num_vertices is None else num_vertices
        if self.states.shape[0] == 0:
            self.allocate(target)
            return
        self.states.fill(self.algorithm.identity)
        self.dependency.fill(NO_SOURCE)
        if target > self.states.shape[0]:
            self.grow(target)

    def load_states(
        self, states: np.ndarray, dependency: Optional[np.ndarray] = None
    ) -> None:
        """Install a previously converged state vector as the base state.

        The addition-only passes (COMMONGRAPH batches, multi-version
        evaluation) start from a converged prefix instead of Identity:
        ``states[:n]`` is copied in, any vertices beyond ``n`` (created by
        later insertions) start at Identity. Slice assignment and shard
        plan survive, same as :meth:`reset_states`.
        """
        n = states.shape[0]
        if self.states.shape[0] == 0:
            self.allocate(n)
        elif self.states.shape[0] < n:
            self.grow(n)
        self.states.fill(self.algorithm.identity)
        self.dependency.fill(NO_SOURCE)
        self.states[:n] = states
        if dependency is not None:
            self.dependency[:n] = dependency

    def _assign_slices(self, num_vertices: int) -> None:
        capacity = self.config.queue_capacity_vertices(self.event_bytes)
        self.num_slices = max(1, -(-num_vertices // capacity)) if num_vertices else 1
        if self.num_slices == 1:
            self._slice_of = None
        else:
            # Contiguous-range slicing; experiments may swap in an edge-cut
            # assignment from repro.graph.partition via set_slice_assignment.
            self._slice_of = np.arange(num_vertices, dtype=np.int64) // capacity

    def set_slice_assignment(self, slice_of: np.ndarray) -> None:
        """Install an externally computed slice assignment (e.g. edge-cut)."""
        slice_of = np.asarray(slice_of, dtype=np.int64)
        if slice_of.shape[0] != self.states.shape[0]:
            raise ValueError("assignment must cover every vertex")
        self._slice_of = slice_of
        self._custom_slice_of = slice_of
        self.num_slices = int(slice_of.max()) + 1 if slice_of.size else 1

    def bind_graph(self, csr: CSRGraph) -> None:
        """Point the datapath at a graph snapshot (host CSR swap, §4.7)."""
        self.csr = csr
        if self.engine_mode == "sharded" and self._shard_plan is None:
            # Edge-cut the first bound snapshot across the engines; growth
            # extends this plan (see grow), so mid-stream snapshots keep a
            # consistent vertex→engine map until an explicit re-partition.
            self._shard_plan = partition_graph(csr, self.num_engines)
        if self.algorithm.kind is AlgorithmKind.ACCUMULATIVE:
            offsets = csr.out_offsets
            self._out_degree = np.diff(offsets)
            # Sum of out-edge weights per vertex (Adsorption normalizer).
            sums = np.zeros(csr.num_vertices, dtype=np.float64)
            if csr.num_edges:
                cumulative = np.concatenate(([0.0], np.cumsum(csr.out_weights)))
                sums = cumulative[offsets[1:]] - cumulative[offsets[:-1]]
            self._out_weight_sum = sums
            # Hoisted per-source propagation factor (linear fast path),
            # built in one vectorized pass per bind — the scalar per-vertex
            # loop was an O(V) Python cost on every CSR swap (twice per
            # streaming batch).
            self._prop_factor = self.algorithm.propagation_factor_arrays(
                self._out_degree, sums
            )
        else:
            self._out_degree = None
            self._out_weight_sum = None
            self._prop_factor = None
        if self.backend == "process":
            self._refresh_graph_segments(csr)

    # ------------------------------------------------------------------
    # Shared-memory lifecycle (backend="process")
    # ------------------------------------------------------------------
    def _ensure_arena(self):
        if self._arena is None:
            from repro.core.shm import SharedArena

            self._arena = SharedArena(tag="engine")
            self._cleanup["arena"] = self._arena
        return self._arena

    def _refresh_graph_segments(self, csr: CSRGraph) -> None:
        """Mirror the bound CSR's out-arrays (+ hoisted propagation factors)
        into fresh shared segments, unlinking the previous snapshot's."""
        arena = self._ensure_arena()
        old = self._graph_segments or {}
        segments = csr.share_out_arrays(arena)
        if self._prop_factor is not None:
            segments["prop_factor"] = arena.from_array(self._prop_factor)
        self._graph_segments = segments
        for segment in old.values():
            arena.release(segment)

    def _queue_array_factory(self):
        """Allocator placing queue cell arrays in shared segments (or None).

        Called once per :meth:`new_queue`; the previous queue's segments
        unlink here — the old queue is obsolete by construction, and an
        unlinked mapping stays valid for any straggling reference.
        """
        if self.backend != "process":
            return None
        arena = self._ensure_arena()
        for segment in self._queue_segments:
            arena.release(segment)
        self._queue_segments = []
        segments = self._queue_segments

        def factory(num: int, fill_value, dtype) -> np.ndarray:
            segment = arena.full(int(num), fill_value, dtype)
            segments.append(segment)
            return segment.array

        return factory

    def _process_bind_payload(self) -> dict:
        """Attach recipe + algorithm/policy shipped to worker processes at
        the start of every sharded phase (keys match the kernel context)."""
        segments = self._graph_segments or {}
        prop = segments.get("prop_factor")
        return {
            "algorithm": self.algorithm,
            "policy": self.policy,
            "arrays": {
                "states": self._state_segment.spec,
                "dependency": self._dependency_segment.spec,
                "prop_factor": None if prop is None else prop.spec,
                "offsets": segments["offsets"].spec,
                "out_targets": segments["out_targets"].spec,
                "out_weights": segments["out_weights"].spec,
            },
        }

    def shard_executor(self):
        """The run's persistent shard executor (created on first use).

        Thread backend: one pool for every round/phase/batch of the run.
        Process backend: a warm worker-process pool, checked out of the
        module cache and returned by :meth:`close`.
        """
        from repro.core import parallel

        if self._shard_executor is None:
            workers = (
                self.shard_workers
                if self.shard_workers is not None
                else parallel._default_workers(self.num_engines)
            )
            self._shard_executor = parallel.acquire_shard_executor(
                self.backend, workers
            )
            self._cleanup["executor"] = self._shard_executor
        elif METRICS.enabled:
            METRICS.record_shard_pool(
                self.backend, "reuse", self._shard_executor.workers
            )
        return self._shard_executor

    def close(self) -> None:
        """Release the shard executor and unlink every shm segment.

        Idempotent, and safe to call from any point — including exception
        paths; a GC finalizer covers cores that are dropped without an
        explicit close, so neither worker processes nor ``/dev/shm``
        segments can outlive the engine.
        """
        from repro.core import parallel

        executor = self._shard_executor
        self._shard_executor = None
        self._cleanup["executor"] = None
        if executor is not None:
            parallel.release_shard_executor(executor)
        arena = self._arena
        if arena is not None:
            # Detach the engine-facing views to private copies so final
            # states stay readable after the segments go away.
            if self._state_segment is not None:
                self.states = self.states.copy()
                self.dependency = self.dependency.copy()
            self._state_segment = None
            self._dependency_segment = None
            self._graph_segments = None
            self._queue_segments = []
            self._arena = None
            self._cleanup["arena"] = None
            arena.close()

    def source_context(self, v: int) -> SourceContext:
        """Out-edge context of ``v`` in the bound graph."""
        if self._out_degree is None:
            return NULL_CONTEXT
        return SourceContext(
            out_degree=int(self._out_degree[v]),
            out_weight_sum=float(self._out_weight_sum[v]),
        )

    @property
    def uses_vectorized(self) -> bool:
        """Whether this core runs on the structure-of-arrays substrate."""
        if self.engine_mode == "scalar":
            return False
        return self.algorithm.supports_vectorized

    def new_queue(self):
        """A coalescing queue sized/partitioned for the current state.

        Returns a :class:`VectorQueue` on the vectorized substrate, a
        :class:`~repro.core.parallel.ShardedQueueGroup` (one queue per
        engine) in sharded mode, and the boxed-event
        :class:`CoalescingQueue` otherwise; all expose the same
        insertion/slicing interface, and the event loops dispatch on the
        type.
        """
        if self.engine_mode == "sharded":
            from repro.core.parallel import ShardedQueueGroup

            if self._slice_of is not None:
                raise ValueError(
                    "engine='sharded' keeps each engine's slice resident in "
                    "its own queue (§4.7) and does not compose with "
                    "capacity-forced queue slicing; raise queue_bytes or "
                    "shrink the graph"
                )
            plan = self._shard_plan
            return ShardedQueueGroup(
                self.algorithm,
                self.config,
                self.policy,
                num_vertices=self.states.shape[0],
                shard_of=None if plan is None else plan.assignment,
                num_engines=self.num_engines,
                workers=self.shard_workers,
                queue_array_factory=self._queue_array_factory(),
            )
        queue_cls = VectorQueue if self.uses_vectorized else CoalescingQueue
        return queue_cls(
            self.algorithm,
            self.config,
            self.policy,
            num_vertices=self.states.shape[0],
            slice_of=self._slice_of,
        )

    def seed_initial(self, queue, work: RoundWork) -> None:
        """Feed InitialEvents() into ``queue`` (the Initializer, §4.6)."""
        if isinstance(queue, CoalescingQueue):
            for vertex, payload in self.algorithm.initial_events(self.csr):
                queue.insert(Event(vertex, payload, 0, NO_SOURCE), work)
        else:
            targets, payloads = self.algorithm.initial_events_arrays(self.csr)
            queue.insert_batch(EventBatch.from_arrays(targets, payloads), work)

    # ------------------------------------------------------------------
    # Event loops
    # ------------------------------------------------------------------
    def run_regular(self, queue, phase: PhaseStats) -> None:
        """Computation phase: process events until the queue drains (§4.6.1).

        Implements Algorithm 1 plus request-flag semantics: a vertex
        receiving a request event propagates its state along all out-edges
        even when the state did not change (§3.4). Dispatches to the
        vectorized kernel when ``queue`` is a :class:`VectorQueue` and to
        the parallel sharded kernel for a ``ShardedQueueGroup``.
        """
        from repro.core import parallel

        if isinstance(queue, parallel.ShardedQueueGroup):
            return parallel.run_regular_sharded(self, queue, phase)
        if isinstance(queue, VectorQueue):
            return self._run_regular_vectorized(queue, phase)
        algorithm = self.algorithm
        csr = self.csr
        states = self.states
        dependency = self.dependency
        track_dep = self.policy.tracks_dependency
        accumulative = algorithm.kind is AlgorithmKind.ACCUMULATIVE
        reduce_ = algorithm.reduce
        propagate = algorithm.propagate
        threshold = algorithm.propagation_threshold
        weight_scaled = algorithm.weight_scaled_propagation
        prop_factor = self._prop_factor
        offsets = csr.out_offsets
        targets = csr.out_targets
        weights = csr.out_weights
        page_bytes = self.config.dram_page_bytes
        tracer = self.tracer

        max_rows = self.config.scheduler_rows_per_round
        rounds = 0
        while queue.pending():
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("engine exceeded MAX_ROUNDS; non-termination?")
            work = phase.new_round()
            round_span = (
                tracer.start("round", occupancy_start=queue.occupancy())
                if tracer.enabled
                else None
            )
            m_t0 = METRICS.clock() if METRICS.enabled else 0.0
            if not queue.active_pending():
                # Charge the activated slice's spill read-back to this round.
                queue.activate_next_slice(work)
            for batch in queue.drain_round(work, max_rows):
                self._account_vertex_batch(batch, work, page_bytes)
                edge_lines = set()
                edge_pages = set()
                for event in batch:
                    v = event.target
                    work.events_processed += 1
                    work.vertex_reads += 1
                    state = states[v]
                    new_state = reduce_(state, event.payload)
                    changed = new_state != state
                    if changed:
                        states[v] = new_state
                        work.vertex_writes += 1
                        if track_dep:
                            dependency[v] = event.source
                    if not (changed or event.flags & 2):
                        continue
                    start = offsets[v]
                    stop = offsets[v + 1]
                    if stop == start:
                        continue
                    work.edges_read += int(stop - start)
                    edge_lines.update(
                        range(int(start * 8) // _LINE, int(stop * 8 - 1) // _LINE + 1)
                    )
                    edge_pages.update(
                        range(
                            int(start * 8) // page_bytes,
                            int(stop * 8 - 1) // page_bytes + 1,
                        )
                    )
                    if accumulative:
                        # Linear fast path: forwarded delta is the incoming
                        # delta scaled by the hoisted per-source factor.
                        base_value = (new_state - state) * prop_factor[v]
                        if weight_scaled:
                            for i in range(start, stop):
                                value = base_value * weights[i]
                                if value > threshold or value < -threshold:
                                    work.events_generated += 1
                                    queue.insert(Event(int(targets[i]), value, 0, v), work)
                        elif base_value > threshold or base_value < -threshold:
                            for i in range(start, stop):
                                work.events_generated += 1
                                queue.insert(
                                    Event(int(targets[i]), base_value, 0, v), work
                                )
                    else:
                        basis = states[v]
                        for i in range(start, stop):
                            value = propagate(basis, weights[i], NULL_CONTEXT)
                            work.events_generated += 1
                            queue.insert(Event(int(targets[i]), value, 0, v), work)
                work.edge_lines += len(edge_lines)
                work.dram_pages += len(edge_pages)
            if round_span is not None:
                tracer.end(
                    round_span, **work_attrs(work), occupancy_end=queue.occupancy()
                )
            if METRICS.enabled:
                METRICS.record_round(work, METRICS.clock() - m_t0, queue.occupancy())

    def run_delete(self, queue, phase: PhaseStats) -> List[int]:
        """Recovery phase: propagate delete tags, reset impacted vertices.

        Implements ``ResetImpacted`` of Algorithm 4 with the policy impact
        tests of §5. The queue must contain the initial delete events
        (``ProcessDeletesSelective``); the bound graph must be the
        *previous* version (§3.5). Returns the impacted-vertex list (the
        Impact Buffer contents, §4.5). Dispatches to the vectorized kernel
        when ``queue`` is a :class:`VectorQueue` and to the parallel
        sharded kernel for a ``ShardedQueueGroup``.
        """
        from repro.core import parallel

        if isinstance(queue, parallel.ShardedQueueGroup):
            return parallel.run_delete_sharded(self, queue, phase)
        if isinstance(queue, VectorQueue):
            return self._run_delete_vectorized(queue, phase)
        algorithm = self.algorithm
        csr = self.csr
        states = self.states
        dependency = self.dependency
        policy = self.policy
        identity = algorithm.identity
        propagate = algorithm.propagate
        more_progressed = algorithm.more_progressed
        offsets = csr.out_offsets
        targets = csr.out_targets
        weights = csr.out_weights
        page_bytes = self.config.dram_page_bytes
        base_policy = policy is DeletePolicy.BASE
        vap = policy is DeletePolicy.VAP
        dap = policy is DeletePolicy.DAP

        max_rows = self.config.scheduler_rows_per_round
        tracer = self.tracer
        impacted: List[int] = []
        rounds = 0
        while queue.pending():
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("delete phase exceeded MAX_ROUNDS")
            work = phase.new_round()
            round_span = (
                tracer.start("round", occupancy_start=queue.occupancy())
                if tracer.enabled
                else None
            )
            m_t0 = METRICS.clock() if METRICS.enabled else 0.0
            if not queue.active_pending():
                # Charge the activated slice's spill read-back to this round.
                queue.activate_next_slice(work)
            for batch in queue.drain_round(work, max_rows):
                self._account_vertex_batch(batch, work, page_bytes)
                edge_lines = set()
                edge_pages = set()
                for event in batch:
                    v = event.target
                    work.events_processed += 1
                    work.vertex_reads += 1
                    state = states[v]
                    if state == identity:
                        phase.deletes_discarded += 1
                        continue
                    if dap and dependency[v] != event.source:
                        phase.deletes_discarded += 1
                        continue
                    if vap and more_progressed(state, event.payload):
                        phase.deletes_discarded += 1
                        continue
                    # Reset (tag) the vertex — Algorithm 4, line 11.
                    states[v] = identity
                    work.vertex_writes += 1
                    if dap:
                        dependency[v] = NO_SOURCE
                    impacted.append(v)
                    phase.vertices_reset += 1
                    start = offsets[v]
                    stop = offsets[v + 1]
                    if stop == start:
                        continue
                    work.edges_read += int(stop - start)
                    edge_lines.update(
                        range(int(start * 8) // _LINE, int(stop * 8 - 1) // _LINE + 1)
                    )
                    edge_pages.update(
                        range(
                            int(start * 8) // page_bytes,
                            int(stop * 8 - 1) // page_bytes + 1,
                        )
                    )
                    for i in range(start, stop):
                        # BASE carries no value (Algorithm 4 queues <v, 0>);
                        # VAP/DAP carry the contribution computed from the
                        # pre-reset state (§5.1, §5.2).
                        payload = (
                            0.0
                            if base_policy
                            else propagate(state, weights[i], NULL_CONTEXT)
                        )
                        work.events_generated += 1
                        queue.insert(
                            Event(int(targets[i]), payload, 1, v),
                            work,
                        )
                work.edge_lines += len(edge_lines)
                work.dram_pages += len(edge_pages)
            if round_span is not None:
                tracer.end(
                    round_span, **work_attrs(work), occupancy_end=queue.occupancy()
                )
            if METRICS.enabled:
                METRICS.record_round(work, METRICS.clock() - m_t0, queue.occupancy())
        return impacted

    # ------------------------------------------------------------------
    # Vectorized kernels (structure-of-arrays substrate)
    # ------------------------------------------------------------------
    def _run_regular_vectorized(self, queue: VectorQueue, phase: PhaseStats) -> None:
        """Array-kernel form of :meth:`run_regular`.

        One round is: drain the whole queue slice as a sorted
        :class:`EventBatch`, gather states, reduce element-wise, scatter
        the changed values back, expand the frontier with CSR offset
        arithmetic, and insert the generated events as one batch. Every
        :class:`RoundWork` counter is computed to match the scalar loop
        exactly (see docs/architecture.md, "Vectorized substrate").
        """
        algorithm = self.algorithm
        states = self.states
        dependency = self.dependency
        track_dep = self.policy.tracks_dependency
        accumulative = algorithm.kind is AlgorithmKind.ACCUMULATIVE
        threshold = algorithm.propagation_threshold
        weight_scaled = algorithm.weight_scaled_propagation
        prop_factor = self._prop_factor
        offsets = self.csr.out_offsets
        out_targets = self.csr.out_targets
        out_weights = self.csr.out_weights
        page_bytes = self.config.dram_page_bytes
        max_rows = self.config.scheduler_rows_per_round
        tracer = self.tracer

        rounds = 0
        while queue.pending():
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("engine exceeded MAX_ROUNDS; non-termination?")
            work = phase.new_round()
            round_span = (
                tracer.start("round", occupancy_start=queue.occupancy())
                if tracer.enabled
                else None
            )
            m_t0 = METRICS.clock() if METRICS.enabled else 0.0
            try:
                if not queue.active_pending():
                    queue.activate_next_slice(work)
                batch, starts = queue.drain_round(work, max_rows)
                k = len(batch)
                if k == 0:
                    continue
                t = batch.targets
                seg_start = np.zeros(k, dtype=bool)
                seg_start[starts] = True
                self._account_vertex_batch_arrays(t, seg_start, work, page_bytes)
                work.events_processed += k
                work.vertex_reads += k

                # Reduce + conditional write-back (targets are unique: the
                # queue coalesced all regular events per vertex).
                old = states[t]
                new = algorithm.reduce_ufunc(old, batch.payloads)
                changed = new != old
                tc = t[changed]
                states[tc] = new[changed]
                work.vertex_writes += int(tc.shape[0])
                if track_dep:
                    dependency[tc] = batch.sources[changed]

                # Frontier: changed or request-flagged vertices with out-edges.
                prop = changed | ((batch.flags & 2) != 0)
                start_all = offsets[t]
                deg_all = offsets[t + 1] - start_all
                nz = prop & (deg_all > 0)
                if not nz.any():
                    continue
                idx = np.flatnonzero(nz)
                v = t[idx]
                start = start_all[idx]
                deg = deg_all[idx]
                work.edges_read += int(deg.sum())
                row_ids = np.searchsorted(starts, idx, side="right")
                self._account_edge_batches(start, start + deg, row_ids, work, page_bytes)

                if accumulative:
                    base = (new[idx] - old[idx]) * prop_factor[v]
                    if weight_scaled:
                        eidx = self._edge_indices(start, deg)
                        values = np.repeat(base, deg) * out_weights[eidx]
                        keep = (values > threshold) | (values < -threshold)
                        gen_t = out_targets[eidx][keep]
                        gen_p = values[keep]
                        gen_s = np.repeat(v, deg)[keep]
                    else:
                        keepv = (base > threshold) | (base < -threshold)
                        dg = deg[keepv]
                        eidx = self._edge_indices(start[keepv], dg)
                        gen_t = out_targets[eidx]
                        gen_p = np.repeat(base[keepv], dg)
                        gen_s = np.repeat(v[keepv], dg)
                else:
                    # Selective: propagation basis is the post-write state.
                    eidx = self._edge_indices(start, deg)
                    gen_t = out_targets[eidx]
                    gen_p = algorithm.propagate_arrays(
                        np.repeat(new[idx], deg), out_weights[eidx]
                    )
                    gen_s = np.repeat(v, deg)
                n_gen = int(gen_t.shape[0])
                if n_gen:
                    work.events_generated += n_gen
                    queue.insert_batch(
                        EventBatch.from_arrays(gen_t, gen_p, 0, gen_s), work
                    )
            finally:
                if round_span is not None:
                    tracer.end(
                        round_span, **work_attrs(work), occupancy_end=queue.occupancy()
                    )
                if METRICS.enabled:
                    METRICS.record_round(
                        work, METRICS.clock() - m_t0, queue.occupancy()
                    )

    def _run_delete_vectorized(self, queue: VectorQueue, phase: PhaseStats) -> List[int]:
        """Array-kernel form of :meth:`run_delete`.

        Duplicate targets (the DAP overflow buffer drains uncoalesced
        events) are resolved per group: the winner is the first event that
        passes the policy impact test against the pre-round state — the
        same event the scalar loop resets on, since every later duplicate
        then fails the identity check.
        """
        algorithm = self.algorithm
        states = self.states
        dependency = self.dependency
        policy = self.policy
        identity = algorithm.identity
        offsets = self.csr.out_offsets
        out_targets = self.csr.out_targets
        out_weights = self.csr.out_weights
        page_bytes = self.config.dram_page_bytes
        base_policy = policy is DeletePolicy.BASE
        vap = policy is DeletePolicy.VAP
        dap = policy is DeletePolicy.DAP
        max_rows = self.config.scheduler_rows_per_round
        tracer = self.tracer

        impacted: List[int] = []
        rounds = 0
        while queue.pending():
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("delete phase exceeded MAX_ROUNDS")
            work = phase.new_round()
            round_span = (
                tracer.start("round", occupancy_start=queue.occupancy())
                if tracer.enabled
                else None
            )
            m_t0 = METRICS.clock() if METRICS.enabled else 0.0
            try:
                if not queue.active_pending():
                    queue.activate_next_slice(work)
                batch, starts = queue.drain_round(work, max_rows)
                k = len(batch)
                if k == 0:
                    continue
                t = batch.targets
                seg_start = np.zeros(k, dtype=bool)
                seg_start[starts] = True
                self._account_vertex_batch_arrays(t, seg_start, work, page_bytes)
                work.events_processed += k
                work.vertex_reads += k

                st = states[t]
                cond = st != identity
                if dap:
                    cond &= dependency[t] == batch.sources
                if vap:
                    cond &= ~algorithm.more_progressed_arrays(st, batch.payloads)
                gfirst = np.empty(k, dtype=bool)
                gfirst[0] = True
                np.not_equal(t[1:], t[:-1], out=gfirst[1:])
                gstarts = np.flatnonzero(gfirst)
                pos = np.where(cond, np.arange(k), k)
                win = np.minimum.reduceat(pos, gstarts)
                win = win[win < np.append(gstarts[1:], k)]
                n_win = int(win.shape[0])
                phase.deletes_discarded += k - n_win
                if n_win == 0:
                    continue
                v = t[win]
                pre = st[win]
                # Reset (tag) the impacted vertices — Algorithm 4, line 11.
                states[v] = identity
                work.vertex_writes += n_win
                if dap:
                    dependency[v] = NO_SOURCE
                impacted.extend(v.tolist())
                phase.vertices_reset += n_win

                start_all = offsets[v]
                deg_all = offsets[v + 1] - start_all
                sub = np.flatnonzero(deg_all > 0)
                if sub.shape[0] == 0:
                    continue
                vs = v[sub]
                start = start_all[sub]
                deg = deg_all[sub]
                total = int(deg.sum())
                work.edges_read += total
                row_ids = np.searchsorted(starts, win[sub], side="right")
                self._account_edge_batches(start, start + deg, row_ids, work, page_bytes)
                eidx = self._edge_indices(start, deg)
                if base_policy:
                    # BASE carries no value (Algorithm 4 queues <v, 0>).
                    gen_p = np.zeros(total, dtype=np.float64)
                else:
                    # VAP/DAP carry the contribution computed from the
                    # pre-reset state (§5.1, §5.2).
                    gen_p = algorithm.propagate_arrays(
                        np.repeat(pre[sub], deg), out_weights[eidx]
                    )
                work.events_generated += total
                queue.insert_batch(
                    EventBatch.from_arrays(
                        out_targets[eidx], gen_p, 1, np.repeat(vs, deg)
                    ),
                    work,
                )
            finally:
                if round_span is not None:
                    tracer.end(
                        round_span, **work_attrs(work), occupancy_end=queue.occupancy()
                    )
                if METRICS.enabled:
                    METRICS.record_round(
                        work, METRICS.clock() - m_t0, queue.occupancy()
                    )
        return impacted

    # ------------------------------------------------------------------
    @staticmethod
    def _account_vertex_batch(
        batch: List[Event], work: RoundWork, page_bytes: int
    ) -> None:
        """Prefetcher accounting: unique state lines/pages per batch (§4.4)."""
        lines = set()
        pages = set()
        for event in batch:
            addr = event.target * 8
            lines.add(addr // _LINE)
            pages.add(addr // page_bytes)
        work.vertex_lines += len(lines)
        work.dram_pages += len(pages)

    @staticmethod
    def _account_vertex_batch_arrays(
        targets: np.ndarray, seg_start: np.ndarray, work: RoundWork, page_bytes: int
    ) -> None:
        """Array form of :meth:`_account_vertex_batch` over a whole round.

        ``targets`` is the drained round sorted by vertex id; ``seg_start``
        marks the first event of each row batch. Distinct lines/pages per
        batch reduce to counting value changes within segments.
        """
        work.vertex_lines += segmented_distinct_count(
            targets // (_LINE // 8), seg_start
        )
        work.dram_pages += segmented_distinct_count(
            (targets * 8) // page_bytes, seg_start
        )

    @staticmethod
    def _account_edge_batches(
        start: np.ndarray,
        stop: np.ndarray,
        row_ids: np.ndarray,
        work: RoundWork,
        page_bytes: int,
    ) -> None:
        """Unique edge lines/pages per row batch via interval unions.

        ``start``/``stop`` are CSR edge ranges of propagating vertices in
        ascending id order (so the byte intervals are monotone) and
        ``row_ids`` assigns each vertex to its row batch.
        """
        if start.shape[0] == 0:
            return
        seg = np.empty(row_ids.shape[0], dtype=bool)
        seg[0] = True
        np.not_equal(row_ids[1:], row_ids[:-1], out=seg[1:])
        work.edge_lines += segmented_interval_union(
            (start * 8) // _LINE, (stop * 8 - 1) // _LINE, seg
        )
        work.dram_pages += segmented_interval_union(
            (start * 8) // page_bytes, (stop * 8 - 1) // page_bytes, seg
        )

    @staticmethod
    def _edge_indices(start: np.ndarray, deg: np.ndarray) -> np.ndarray:
        """Indices into the CSR edge arrays for multiple ``[start, start+deg)``
        ranges, concatenated in order — the vectorized frontier gather."""
        total = int(deg.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        exclusive = np.cumsum(deg) - deg
        return np.arange(total, dtype=np.int64) + np.repeat(start - exclusive, deg)


@dataclass
class ComputeResult:
    """Outcome of a static evaluation."""

    states: np.ndarray
    metrics: RunMetrics
    #: Lifetime queue counters (inserts/coalesces/peak/switches) — identical
    #: across engine substrates; kept for the parity oracle.
    queue_stats: Optional[dict] = None

    @property
    def num_rounds(self) -> int:
        """Scheduler rounds executed."""
        return sum(p.num_rounds for p in self.metrics.phases)


class GraphPulseEngine:
    """Static event-driven evaluation — the original GraphPulse (§3.1).

    Also serves as the cold-start baseline: rerunning :meth:`compute` on
    each mutated snapshot is exactly the "GP" comparison rows of Table 3.

    Parameters
    ----------
    algorithm:
        A :class:`~repro.algorithms.base.Algorithm`.
    config:
        Accelerator configuration (defaults to Table 1).
    graphpulse_event_size:
        Use the narrower GraphPulse event encoding for queue capacity
        accounting (the static accelerator carries no flags/source).
    engine:
        Substrate selection: ``auto`` (vectorized when the algorithm
        provides array hooks), ``vectorized``, ``sharded`` (parallel
        multi-engine slices, Table 1), or ``scalar`` (the boxed reference
        oracle).
    num_engines:
        Parallel engine count for ``engine="sharded"`` (default 8, Table 1).
    shard_workers:
        Worker-pool width for sharded execution (default: one per engine,
        capped at the CPU count; 1 forces serial shard execution).
    backend:
        Sharded execution backend: ``"thread"`` (persistent thread pool
        over the heap arrays) or ``"process"`` (worker processes over
        shared-memory segments — see repro.core.parallel). Results are
        bit-identical across backends.
    tracer:
        A :class:`repro.obs.Tracer` for run observability (default: the
        no-op :data:`~repro.obs.NULL_TRACER`).
    """

    def __init__(
        self,
        algorithm,
        config: Optional[AcceleratorConfig] = None,
        graphpulse_event_size: bool = True,
        engine: str = "auto",
        num_engines: int = 8,
        shard_workers: Optional[int] = None,
        backend: str = "thread",
        tracer=None,
    ):
        config = config or AcceleratorConfig()
        event_bytes = config.event_bytes_graphpulse if graphpulse_event_size else None
        self.core = EngineCore(
            algorithm,
            config,
            policy=DeletePolicy.BASE,
            queue_event_bytes=event_bytes,
            engine=engine,
            num_engines=num_engines,
            shard_workers=shard_workers,
            backend=backend,
            tracer=tracer,
        )

    @property
    def algorithm(self):
        """The bound algorithm."""
        return self.core.algorithm

    @property
    def tracer(self):
        """The observability hook shared with the core."""
        return self.core.tracer

    def close(self) -> None:
        """Release the worker pool and any shared-memory segments.

        Safe to skip for throwaway engines — a GC finalizer does the same
        cleanup — but explicit close (or the context-manager form) makes
        teardown deterministic.
        """
        self.core.close()

    def __enter__(self) -> "GraphPulseEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def compute(self, csr: CSRGraph) -> ComputeResult:
        """Evaluate the query on ``csr`` from scratch (cold start)."""
        core = self.core
        tracer = core.tracer
        run_t0 = METRICS.clock() if METRICS.enabled else 0.0
        with tracer.span(
            "run",
            "static",
            algorithm=self.algorithm.name,
            engine_mode=core.engine_mode,
            num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
        ):
            core.allocate(csr.num_vertices)
            core.bind_graph(csr)
            metrics = RunMetrics()
            phase = metrics.phase("initial")
            queue = core.new_queue()
            with tracer.phase(phase):
                seed_work = phase.new_round()
                with tracer.round(seed_work, queue), METRICS.round_scope(
                    seed_work, queue
                ):
                    core.seed_initial(queue, seed_work)
                core.run_regular(queue, phase)
            if METRICS.enabled:
                METRICS.record_phase(phase)
        if METRICS.enabled:
            METRICS.record_run(
                "static",
                METRICS.clock() - run_t0,
                num_vertices=csr.num_vertices,
                num_edges=csr.num_edges,
            )
        return ComputeResult(
            states=core.states.copy(),
            metrics=metrics,
            queue_stats=queue.lifetime_stats(),
        )
