"""Event records (§4.2).

GraphPulse events are ``<target vertex id, payload>`` tuples. JetStream
widens them with flag bits — a *delete* flag driving the recovery phase
(Algorithm 4) and a *request* flag asking a vertex to re-propagate its state
even if unchanged (§3.4) — and, under the DAP optimization (§5.2), a
*source id* field recording which vertex generated the event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EventFlags(enum.IntFlag):
    """Flag bits carried in the event payload word."""

    NONE = 0
    #: Recovery-phase tag event: reset the receiver (Algorithm 4, line 11).
    DELETE = 1
    #: Re-approximation request: receiver must propagate its state to all
    #: out-neighbors even when its own state does not change (§3.4).
    REQUEST = 2


#: Source id used for initial/self events, which no vertex generated.
NO_SOURCE = -1


@dataclass
class Event:
    """A lightweight message triggering vertex computation at ``target``."""

    __slots__ = ("target", "payload", "flags", "source")

    target: int
    payload: float
    flags: EventFlags
    source: int

    def __init__(
        self,
        target: int,
        payload: float,
        flags: int = 0,
        source: int = NO_SOURCE,
    ):
        self.target = target
        self.payload = payload
        # Stored as a plain int: IntFlag arithmetic allocates enum objects
        # and dominates the hot loop (measured ~40% of runtime). IntFlag
        # values are ints, so callers may still pass EventFlags members.
        self.flags = flags
        self.source = source

    @property
    def is_delete(self) -> bool:
        """True for recovery-phase delete/tag events."""
        return bool(self.flags & 1)

    @property
    def is_request(self) -> bool:
        """True when the request flag is set."""
        return bool(self.flags & 2)

    def size_bytes(self, config, dap: bool) -> int:
        """On-chip footprint of this event under the given configuration.

        JetStream events carry flags (wider than GraphPulse); the DAP
        variant additionally carries the source id (§5.2 overheads).
        """
        if dap:
            return config.event_bytes_dap
        return config.event_bytes_jetstream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tags = []
        if self.is_delete:
            tags.append("DEL")
        if self.is_request:
            tags.append("REQ")
        suffix = f" [{','.join(tags)}]" if tags else ""
        src = f" src={self.source}" if self.source != NO_SOURCE else ""
        return f"Event(->{self.target}, {self.payload:g}{suffix}{src})"
