"""Event records (§4.2).

GraphPulse events are ``<target vertex id, payload>`` tuples. JetStream
widens them with flag bits — a *delete* flag driving the recovery phase
(Algorithm 4) and a *request* flag asking a vertex to re-propagate its state
even if unchanged (§3.4) — and, under the DAP optimization (§5.2), a
*source id* field recording which vertex generated the event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np


class EventFlags(enum.IntFlag):
    """Flag bits carried in the event payload word."""

    NONE = 0
    #: Recovery-phase tag event: reset the receiver (Algorithm 4, line 11).
    DELETE = 1
    #: Re-approximation request: receiver must propagate its state to all
    #: out-neighbors even when its own state does not change (§3.4).
    REQUEST = 2


#: Source id used for initial/self events, which no vertex generated.
NO_SOURCE = -1


@dataclass
class Event:
    """A lightweight message triggering vertex computation at ``target``."""

    __slots__ = ("target", "payload", "flags", "source")

    target: int
    payload: float
    flags: EventFlags
    source: int

    def __init__(
        self,
        target: int,
        payload: float,
        flags: int = 0,
        source: int = NO_SOURCE,
    ):
        self.target = target
        self.payload = payload
        # Stored as a plain int: IntFlag arithmetic allocates enum objects
        # and dominates the hot loop (measured ~40% of runtime). IntFlag
        # values are ints, so callers may still pass EventFlags members.
        self.flags = flags
        self.source = source

    @property
    def is_delete(self) -> bool:
        """True for recovery-phase delete/tag events."""
        return bool(self.flags & 1)

    @property
    def is_request(self) -> bool:
        """True when the request flag is set."""
        return bool(self.flags & 2)

    def size_bytes(self, config, dap: bool) -> int:
        """On-chip footprint of this event under the given configuration.

        JetStream events carry flags (wider than GraphPulse); the DAP
        variant additionally carries the source id (§5.2 overheads).
        """
        if dap:
            return config.event_bytes_dap
        return config.event_bytes_jetstream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tags = []
        if self.is_delete:
            tags.append("DEL")
        if self.is_request:
            tags.append("REQ")
        suffix = f" [{','.join(tags)}]" if tags else ""
        src = f" src={self.source}" if self.source != NO_SOURCE else ""
        return f"Event(->{self.target}, {self.payload:g}{suffix}{src})"


@dataclass
class EventBatch:
    """A batch of events in structure-of-arrays form.

    The vectorized substrate never materialises :class:`Event` objects on
    the hot path: a batch is four parallel NumPy arrays (target, payload,
    flags, source), which is both the on-chip layout a hardware queue would
    use and the shape NumPy's scatter/gather kernels want. Positions are
    significant — index ``i`` of every array describes the same event, and
    array order is insertion/drain order.
    """

    targets: np.ndarray  # int64 destination vertex ids
    payloads: np.ndarray  # float64 payload values
    flags: np.ndarray  # int64 flag bits (EventFlags values)
    sources: np.ndarray  # int64 generating vertex ids (NO_SOURCE = none)

    def __len__(self) -> int:
        return int(self.targets.shape[0])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "EventBatch":
        """A zero-length batch."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_arrays(
        cls,
        targets,
        payloads,
        flags=None,
        sources=None,
    ) -> "EventBatch":
        """Build a batch from array-likes, filling defaults for flags/sources."""
        t = np.ascontiguousarray(targets, dtype=np.int64)
        p = np.ascontiguousarray(payloads, dtype=np.float64)
        if flags is None:
            f = np.zeros(t.shape[0], dtype=np.int64)
        elif np.isscalar(flags):
            f = np.full(t.shape[0], int(flags), dtype=np.int64)
        else:
            f = np.ascontiguousarray(flags, dtype=np.int64)
        if sources is None:
            s = np.full(t.shape[0], NO_SOURCE, dtype=np.int64)
        elif np.isscalar(sources):
            s = np.full(t.shape[0], int(sources), dtype=np.int64)
        else:
            s = np.ascontiguousarray(sources, dtype=np.int64)
        if not (t.shape == p.shape == f.shape == s.shape):
            raise ValueError("EventBatch arrays must have matching lengths")
        return cls(t, p, f, s)

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "EventBatch":
        """Convert boxed events (preserving order) to SoA form."""
        events = list(events)
        n = len(events)
        t = np.fromiter((e.target for e in events), dtype=np.int64, count=n)
        p = np.fromiter((e.payload for e in events), dtype=np.float64, count=n)
        f = np.fromiter((int(e.flags) for e in events), dtype=np.int64, count=n)
        s = np.fromiter((e.source for e in events), dtype=np.int64, count=n)
        return cls(t, p, f, s)

    @staticmethod
    def concat(batches: Sequence["EventBatch"]) -> "EventBatch":
        """Concatenate batches, preserving order."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return EventBatch.empty()
        if len(batches) == 1:
            return batches[0]
        return EventBatch(
            np.concatenate([b.targets for b in batches]),
            np.concatenate([b.payloads for b in batches]),
            np.concatenate([b.flags for b in batches]),
            np.concatenate([b.sources for b in batches]),
        )

    # ------------------------------------------------------------------
    # Views / conversion
    # ------------------------------------------------------------------
    def take(self, index) -> "EventBatch":
        """Subset/reorder by fancy index or boolean mask."""
        return EventBatch(
            self.targets[index],
            self.payloads[index],
            self.flags[index],
            self.sources[index],
        )

    def to_events(self) -> List[Event]:
        """Materialise boxed :class:`Event` objects (tests/debugging only)."""
        return [
            Event(int(t), float(p), int(f), int(s))
            for t, p, f, s in zip(self.targets, self.payloads, self.flags, self.sources)
        ]
