"""Express lane: sub-millisecond single-update application (RisGraph-style).

The streaming engine (:mod:`repro.core.streaming`) re-converges after every
batch — correct for any update, but its fixed per-batch orchestration cost
(snapshot, phase setup, scheduler rounds) dominates when the batch is a
single edge. RisGraph observes that on a *converged* state most single-edge
updates are provably absorbable with an O(degree) check: an insert that
improves nothing, or improves exactly one endpoint without cascading; a
delete whose edge was not load bearing, or whose target keeps another
strict witness. :class:`ExpressLane` applies those *safe* updates with one
state write and a dict-level graph mutation, and falls through to the full
engine path for everything else.

The classification itself lives next to the algorithms
(:func:`repro.algorithms.base.classify_monotonic_update`); this module
supplies the converged *view* the classifier reads — base CSR snapshot plus
an adjacency overlay of the lane's own mutations — and the apply kernel
that keeps the :class:`~repro.graph.dynamic.DynamicGraph` store, the engine
state arrays, and the DAP dependency tree coherent.

Why an overlay: every :class:`DynamicGraph` adjacency query folds pending
mutations into the CSR arrays first (``_flush``, an O(E) splice), which
would put the engine's full-batch cost back on the express path. The lane
instead snapshots once, tracks its own directed inserts/deletes in
per-vertex dicts, and re-synchronizes only when the store's mutation stamp
shows someone else (the engine fallthrough, or external code) touched the
graph. After an engine batch the resync snapshot is a cache hit — the
engine just built it.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.algorithms.base import SELF_SUPPORT, UpdateClassification
from repro.core.events import NO_SOURCE
from repro.core.streaming import JetStreamEngine, StreamingResult
from repro.obs.metrics import REGISTRY as METRICS
from repro.streams import Edge, UpdateBatch


#: Counter keys of :attr:`ExpressLane.stats`. :meth:`Session.express_stats`
#: derives its lane-less zero shape from this tuple, so the two can never
#: drift apart when a counter is added.
EXPRESS_STAT_KEYS = ("safe_applied", "engine_fallthroughs", "resyncs")


@dataclass(frozen=True)
class ExpressResult:
    """Outcome of one :meth:`ExpressLane.apply` call."""

    op: str
    u: int
    v: int
    w: float
    #: True when the update was absorbed on the express path; False when
    #: it fell through to the engine.
    safe: bool
    #: Classification rule that fired (see ``classify_monotonic_update``).
    reason: str
    latency_s: float
    #: Time spent in classification alone (the prefix of ``latency_s``);
    #: the remainder is the safe apply or the engine fallthrough. Request
    #: tracing uses the split to carve a ``classify`` stage out of the
    #: apply window.
    classify_s: float
    #: Adjacency entries examined while classifying.
    edges_scanned: int
    #: Vertex-state reads performed while classifying.
    state_reads: int
    #: The single state write a safe improving insert performed.
    new_state: Optional[Tuple[int, float]] = None
    #: Full engine result when the update took the fallthrough path.
    engine_result: Optional[StreamingResult] = None


class _ConvergedView:
    """What the classifier sees: converged states over the live edge set.

    States and dependencies read through ``engine.core`` on every call —
    the core replaces its arrays on allocate/grow (heap concat or fresh
    shared-memory segments), so caching a reference would go stale.
    Adjacency reads the lane's base CSR filtered/extended by the overlay.
    """

    __slots__ = ("_lane",)

    def __init__(self, lane: "ExpressLane"):
        self._lane = lane

    @property
    def num_vertices(self) -> int:
        return self._lane.engine.graph.num_vertices

    @property
    def symmetric(self) -> bool:
        return self._lane.engine.graph.symmetric

    def state(self, x: int) -> float:
        return float(self._lane.engine.core.states[x])

    def dependency(self, x: int) -> Optional[int]:
        lane = self._lane
        if not lane.tracks_dependency:
            return None
        return int(lane.engine.core.dependency[x])

    def out_edges(self, x: int) -> Iterator[Tuple[int, float]]:
        lane = self._lane
        csr = lane._csr
        start, stop = int(csr.out_offsets[x]), int(csr.out_offsets[x + 1])
        ov = lane._ov_out.get(x)
        if ov is None:
            for i in range(start, stop):
                yield int(csr.out_targets[i]), float(csr.out_weights[i])
            return
        for i in range(start, stop):
            t = int(csr.out_targets[i])
            if t in ov:
                continue  # deleted or weight-changed by the lane
            yield t, float(csr.out_weights[i])
        for t, w in ov.items():
            if w is not None:
                yield t, w

    def in_edges(self, x: int) -> Iterator[Tuple[int, float]]:
        lane = self._lane
        csr = lane._csr
        start, stop = int(csr.in_offsets[x]), int(csr.in_offsets[x + 1])
        ov = lane._ov_in.get(x)
        if ov is None:
            for i in range(start, stop):
                yield int(csr.in_sources[i]), float(csr.in_weights[i])
            return
        for i in range(start, stop):
            s = int(csr.in_sources[i])
            if s in ov:
                continue
            yield s, float(csr.in_weights[i])
        for s, w in ov.items():
            if w is not None:
                yield s, w


class ExpressLane:
    """Single-update fast path over a converged :class:`JetStreamEngine`.

    The engine must have completed its initial evaluation (the lane
    classifies against a *converged* state; there is nothing to classify
    against before one exists).
    """

    def __init__(self, engine: JetStreamEngine):
        if not engine._initialized:
            raise RuntimeError(
                "ExpressLane needs a converged state; run initial_compute() "
                "before applying express updates"
            )
        self.engine = engine
        self.tracks_dependency = engine.policy.tracks_dependency
        self._view = _ConvergedView(self)
        #: Per-vertex overlay deltas relative to ``_csr``: target/source ->
        #: weight for a lane-inserted edge, ``None`` for a lane-deleted one.
        self._ov_out: Dict[int, Dict[int, Optional[float]]] = {}
        self._ov_in: Dict[int, Dict[int, Optional[float]]] = {}
        self.stats = {key: 0 for key in EXPRESS_STAT_KEYS}
        self._resync()

    # ------------------------------------------------------------------
    def _resync(self) -> None:
        """Rebase the view on a fresh snapshot of the store.

        Called at construction, after every engine fallthrough, and
        whenever the store's mutation stamp shows a mutation the lane did
        not perform itself. The post-fallthrough snapshot is a cache hit
        (the engine snapshots the same mutation state at the end of its
        batch), so resync is only O(E) when third-party code mutated the
        graph behind the lane's back.
        """
        graph = self.engine.graph
        self._csr = graph.snapshot()
        self._stamp = graph.mutation_stamp
        self._ov_out.clear()
        self._ov_in.clear()
        self.stats["resyncs"] += 1

    def _overlay_set(self, a: int, b: int, w: Optional[float]) -> None:
        self._ov_out.setdefault(a, {})[b] = w
        self._ov_in.setdefault(b, {})[a] = w

    # ------------------------------------------------------------------
    def classify(self, u: int, v: int, w: float, op: str) -> UpdateClassification:
        """Classify one update against the converged view (no mutation)."""
        if self.engine.graph.mutation_stamp != self._stamp:
            self._resync()
        return self.engine.algorithm.classify_update(self._view, u, v, w, op)

    def apply(self, u: int, v: int, w: float = 1.0, op: str = "insert") -> ExpressResult:
        """Classify-and-apply one edge update.

        Safe updates mutate the store (dict-level, no CSR splice) and the
        engine's state/dependency arrays in one pass; unsafe updates are
        wrapped in a single-edge :class:`UpdateBatch` and handed to
        :meth:`JetStreamEngine.apply_batch`. Either way the converged
        invariant holds again when this returns.
        """
        if op not in ("insert", "delete"):
            raise ValueError(f"unknown update op {op!r}")
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise ValueError("vertex ids must be non-negative")
        graph = self.engine.graph
        t0 = perf_counter()
        if op == "insert":
            if graph.has_edge(u, v):
                raise ValueError(
                    f"edge {u}->{v} already exists; model a weight change "
                    "as delete followed by insert"
                )
            w = float(w)
        else:
            if not graph.has_edge(u, v):
                raise ValueError(f"cannot delete missing edge {u}->{v}")
            w = graph.edge_weight(u, v)

        cls = self.classify(u, v, w, op)
        classify_s = perf_counter() - t0
        if cls.safe:
            self._apply_safe(u, v, w, op, cls)
            result = ExpressResult(
                op=op,
                u=u,
                v=v,
                w=w,
                safe=True,
                reason=cls.reason,
                latency_s=perf_counter() - t0,
                classify_s=classify_s,
                edges_scanned=cls.edges_scanned,
                state_reads=cls.state_reads,
                new_state=cls.new_state,
            )
        else:
            engine_result = self._apply_engine(u, v, w, op)
            result = ExpressResult(
                op=op,
                u=u,
                v=v,
                w=w,
                safe=False,
                reason=cls.reason,
                latency_s=perf_counter() - t0,
                classify_s=classify_s,
                edges_scanned=cls.edges_scanned,
                state_reads=cls.state_reads,
                engine_result=engine_result,
            )
        if METRICS.enabled:
            METRICS.record_express_update(
                op,
                "safe" if result.safe else "unsafe",
                result.reason,
                result.latency_s,
                result.edges_scanned,
                result.state_reads,
            )
        return result

    # ------------------------------------------------------------------
    def _apply_safe(
        self, u: int, v: int, w: float, op: str, cls: UpdateClassification
    ) -> None:
        graph = self.engine.graph
        core = self.engine.core
        if cls.new_state is not None:
            b, nv = cls.new_state
            core.states[b] = nv
        if self.tracks_dependency:
            for vtx, src in cls.dependency_updates:
                core.dependency[vtx] = NO_SOURCE if src == SELF_SUPPORT else src
        if op == "insert":
            graph.add_edge(u, v, w)
            self._overlay_set(u, v, w)
            if graph.symmetric and u != v:
                self._overlay_set(v, u, w)
        else:
            graph.remove_edge(u, v)
            self._overlay_set(u, v, None)
            if graph.symmetric and u != v:
                self._overlay_set(v, u, None)
        self._stamp = graph.mutation_stamp
        self.stats["safe_applied"] += 1

    def _apply_engine(self, u: int, v: int, w: float, op: str) -> StreamingResult:
        if op == "insert":
            batch = UpdateBatch(insertions=[Edge(u, v, w)])
        else:
            batch = UpdateBatch(deletions=[Edge(u, v)])
        result = self.engine.apply_batch(batch)
        self.stats["engine_fallthroughs"] += 1
        self._resync()
        return result
