"""The paper's contribution: the event-driven streaming accelerator.

* :mod:`repro.core.events` — event records and flags (§4.2);
* :mod:`repro.core.queue` — the coalescing event queue (§4.2);
* :mod:`repro.core.engine` — GraphPulse static event-driven compute
  (§3.1, Algorithm 1, §4.6.1);
* :mod:`repro.core.streaming` — JetStream incremental evaluation
  (§3.3–§3.5, §4.6.2, Algorithms 2–6);
* :mod:`repro.core.policies` — Base / VAP / DAP deletion-propagation
  policies (§3.4, §5);
* :mod:`repro.core.parallel` — sharded multi-engine parallel execution
  over graph slices (Table 1, §4.7);
* :mod:`repro.core.config` — the Table 1 hardware/software configurations.
"""

from repro.core.config import AcceleratorConfig, SoftwareConfig
from repro.core.events import Event, EventFlags
from repro.core.queue import CoalescingQueue
from repro.core.engine import GraphPulseEngine, ComputeResult
from repro.core.parallel import InterEngineChannel, ShardedQueueGroup
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine, StreamingResult
from repro.core.pipeline import ArrivalTrace, StreamingPipeline, PipelineReport

__all__ = [
    "InterEngineChannel",
    "ShardedQueueGroup",
    "AcceleratorConfig",
    "SoftwareConfig",
    "Event",
    "EventFlags",
    "CoalescingQueue",
    "GraphPulseEngine",
    "ComputeResult",
    "DeletePolicy",
    "JetStreamEngine",
    "StreamingResult",
    "ArrivalTrace",
    "StreamingPipeline",
    "PipelineReport",
]
