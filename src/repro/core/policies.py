"""Deletion-propagation policies: Base, VAP, DAP (§3.4, §5).

All three share the tagging skeleton of Algorithm 4 — a delete event resets
its target and re-propagates along out-edges — and differ in the *impact
test* deciding whether a receiver must reset:

* **BASE** — unconditional: any non-identity receiver resets. Simple but
  tags far too many vertices ("often leading to work comparable to full
  recomputation", §6.2).
* **VAP** (Value-Aware Propagation, §5.1) — the delete event carries the
  value that was contributed over the deleted path; a receiver strictly
  more progressed than that contribution cannot depend on it and discards
  the event.
* **DAP** (Dependency-Aware Propagation, §5.2) — each vertex records the
  source of the event that set its state (a dependency-tree edge); a delete
  event resets the receiver only when its recorded dependency matches the
  event's source. Requires wider events (source id) and disables delete
  coalescing during recovery.

A fourth policy sidesteps the recovery phase entirely:

* **COMMONGRAPH** (deletion-to-addition conversion, after CommonGraph —
  Afarin, Rahman, Abu-Ghazaleh) — never propagates deletes. A batch with
  deletions instead converges once on the *common graph* (current edges
  minus the delete set) and then applies the batch's insertions as a pure
  addition pass. Valid only for monotonic selective algorithms, whose
  fixed point on a subgraph is a safe under-approximation that additions
  can only improve; accumulative algorithms fall through to DAP (which
  their normalization further narrows to BASE). No dependency array, no
  reset cascade, ordinary JetStream event width.
"""

from __future__ import annotations

import enum


class DeletePolicy(enum.Enum):
    """Which impact test the recovery phase applies."""

    BASE = "base"
    VAP = "vap"
    DAP = "dap"
    COMMONGRAPH = "commongraph"

    @property
    def tracks_dependency(self) -> bool:
        """True when per-vertex dependency fields must be maintained."""
        return self is DeletePolicy.DAP

    @property
    def coalesces_deletes(self) -> bool:
        """Whether delete events destined to one vertex may be coalesced.

        BASE deletes carry no information beyond the tag — one suffices.
        VAP deletes coalesce through Reduce (only the most progressed
        payload can matter, §5.1). DAP deletes from different sources are
        not interchangeable, so coalescing is disabled and extra events go
        through the overflow buffer (§5.2). COMMONGRAPH never queues
        delete events at all, so the flag is moot (kept permissive).
        """
        return self is not DeletePolicy.DAP

    @property
    def converts_deletions(self) -> bool:
        """True when deletions run as common-graph + addition passes
        instead of the Algorithm 4 recovery phase."""
        return self is DeletePolicy.COMMONGRAPH

    def event_bytes(self, config) -> int:
        """On-chip event size under this policy (§5.2 overheads).

        COMMONGRAPH events are ordinary JetStream events — no dependency
        source to carry, since nothing is ever reset.
        """
        if self is DeletePolicy.DAP:
            return config.event_bytes_dap
        return config.event_bytes_jetstream


def should_reset(policy: DeletePolicy, algorithm, state: float, event) -> bool:
    """Impact test of Algorithm 4 under the given policy.

    ``state`` is the receiver's current value; ``event`` the delete event.
    The DAP dependency match is checked by the caller (it owns the
    dependency array); here DAP behaves like BASE for the remaining
    conditions.
    """
    if state == algorithm.identity:
        return False  # already reset / never progressed — nothing to undo
    if policy is DeletePolicy.VAP:
        # A receiver strictly more progressed than the deleted path's
        # contribution cannot have depended on it (§5.1).
        return not algorithm.more_progressed(state, event.payload)
    return True
