"""Experimental configurations (Table 1 of the paper).

The accelerator side models JetStream/GraphPulse: 8 processing engines at
1 GHz, a 64 MB eDRAM coalescing queue, 4 DDR3 channels at 17 GB/s. The
software side models the baseline platform: 36 Intel i9 cores at 3 GHz,
24 MB L2, 4 DDR4 channels at 19 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class AcceleratorConfig:
    """JetStream / GraphPulse hardware configuration (Table 1, right)."""

    # Compute
    num_processors: int = 8
    clock_ghz: float = 1.0
    generation_streams_per_processor: int = 4  # 32 total (§4.4)
    processor_issue_per_cycle: int = 1  # one event/cycle/pipeline
    pipeline_latency_cycles: int = 6

    # Coalescing queue (§4.2)
    queue_bytes: int = 64 * 1024 * 1024  # 64 MB eDRAM
    queue_bins: int = 16
    queue_row_vertices: int = 8  # vertices mapped per row (DRAM-page group)
    coalescer_latency_cycles: int = 3
    queue_insert_ports: int = 16  # one side of the 16x16 crossbar

    # Event sizes (§4.2, §5.2): GraphPulse events are <target, payload>;
    # JetStream adds flag bits; DAP adds a source-id field.
    event_bytes_graphpulse: int = 8
    event_bytes_jetstream: int = 10
    event_bytes_dap: int = 14

    # On-chip memories (§6.3)
    scratchpad_bytes: int = 2 * 1024
    edge_cache_bytes: int = 1 * 1024

    # NoC (§4.4): 16x16 crossbar between generation streams and queue bins.
    noc_ports: int = 16
    noc_flit_bytes: int = 16

    # Off-chip memory: 4x DDR3 @ 17 GB/s (Table 1)
    dram_channels: int = 4
    dram_channel_gbps: float = 17.0
    dram_page_bytes: int = 2048  # DRAM row-buffer page
    dram_line_bytes: int = 64  # cache-line transfer granularity
    dram_page_hit_cycles: int = 14
    dram_page_miss_cycles: int = 38

    # Scheduler (§4.3)
    round_barrier_cycles: int = 24
    phase_setup_cycles: int = 400
    #: Rows emitted per scheduler round. ``None`` drains the whole queue
    #: each round (coarse model); a finite value models the hardware's
    #: row-at-a-time drain, leaving the rest queued (and still coalescing).
    scheduler_rows_per_round: "int | None" = None

    # Host/stream reader (§4.5)
    stream_record_bytes: int = 16  # <source, destination, weight>

    def queue_capacity_vertices(self, event_bytes: int) -> int:
        """How many vertices the on-chip queue can map (one cell each)."""
        return self.queue_bytes // event_bytes

    def dram_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bandwidth in bytes per accelerator cycle."""
        return self.dram_channels * self.dram_channel_gbps / self.clock_ghz

    def with_overrides(self, **kwargs) -> "AcceleratorConfig":
        """A copy with selected fields replaced (for sizing studies)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SoftwareConfig:
    """Software-framework platform configuration (Table 1, left)."""

    num_cores: int = 36
    clock_ghz: float = 3.0
    l2_bytes: int = 24 * 1024 * 1024
    dram_channels: int = 4
    dram_channel_gbps: float = 19.0
    cache_line_bytes: int = 64

    # Per-operation costs (ns) for the cost model; see
    # repro/sim/cost_models.py for derivations and calibration notes.
    random_access_ns: float = 38.0
    cached_access_ns: float = 1.4
    atomic_op_ns: float = 14.0
    edge_traverse_ns: float = 1.1
    vertex_work_ns: float = 2.2
    barrier_us: float = 18.0
    parallel_efficiency: float = 0.52
    #: Fixed per-run cost of a software framework batch: parallel region
    #: launches, frontier/bitmap allocation and clearing, versioned-graph
    #: bookkeeping. This floor is why software speedups stop improving as
    #: batches shrink (Fig. 13) while the accelerator's keep growing.
    per_batch_overhead_us: float = 120.0

    def effective_cores(self) -> float:
        """Cores discounted by parallel scaling efficiency."""
        return max(1.0, self.num_cores * self.parallel_efficiency)

    def with_overrides(self, **kwargs) -> "SoftwareConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


#: The default experimental configuration pair used by every experiment.
DEFAULT_ACCELERATOR = AcceleratorConfig()
DEFAULT_SOFTWARE = SoftwareConfig()


def table1_rows():
    """Rows reproducing Table 1 (experimental configurations)."""
    acc = DEFAULT_ACCELERATOR
    sw = DEFAULT_SOFTWARE
    return [
        {
            "item": "Compute Unit",
            "software": f"{sw.num_cores}x Intel Core i9 @{sw.clock_ghz:g}GHz",
            "jetstream": f"{acc.num_processors}x JetStream Processor @{acc.clock_ghz:g}GHz",
        },
        {
            "item": "On-chip memory",
            "software": f"{sw.l2_bytes // (1024 * 1024)}MB L2 Cache",
            "jetstream": f"{acc.queue_bytes // (1024 * 1024)}MB eDRAM @22nm 1GHz",
        },
        {
            "item": "Off-chip Bandwidth",
            "software": f"{sw.dram_channels}x DDR4 {sw.dram_channel_gbps:g}GB/s Channel",
            "jetstream": f"{acc.dram_channels}x DDR3 {acc.dram_channel_gbps:g}GB/s Channel",
        },
    ]
