"""Fig. 12: effect of the VAP and DAP optimizations.

Speedup over cold-start GraphPulse for the baseline tagging scheme, +VAP,
and +DAP, on SSWP/SSSP/BFS/CC over LiveJournal and UK-2002. Expected
shape (§6.2): Base barely helps (it tags far too much); VAP works well for
SSSP/SSWP (distinct values) but not BFS/CC (value plateaus); DAP wins
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_speedup, render_table

ALGORITHMS = ["sswp", "sssp", "bfs", "cc"]
GRAPHS = ["LJ", "UK"]
POLICIES = [DeletePolicy.BASE, DeletePolicy.VAP, DeletePolicy.DAP]


@dataclass
class OptimizationPoint:
    """One bar group of the figure."""

    algorithm: str
    graph: str
    speedups: Dict[str, float]  # policy value -> speedup over GraphPulse


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[OptimizationPoint]:
    """Run every policy on the Table 3 batch recipe."""
    out: List[OptimizationPoint] = []
    for algo in algorithms or ALGORITHMS:
        for graph in graphs or GRAPHS:
            speedups: Dict[str, float] = {}
            for policy in POLICIES:
                cell = run_cell(graph, algo, policy=policy, seed=seed)
                speedups[policy.value] = cell.speedup("jetstream", "graphpulse")
            out.append(
                OptimizationPoint(algorithm=algo, graph=graph, speedups=speedups)
            )
    return out


def render(points: List[OptimizationPoint]) -> str:
    """Text rendering of the grouped bars."""
    return render_table(
        ["Graph", "Algorithm", "Base", "+VAP", "+DAP"],
        [
            [
                p.graph,
                p.algorithm.upper(),
                render_speedup(p.speedups["base"]),
                render_speedup(p.speedups["vap"]),
                render_speedup(p.speedups["dap"]),
            ]
            for p in points
        ],
        title="Fig. 12: speedup over GraphPulse for Base / +VAP / +DAP",
    )
