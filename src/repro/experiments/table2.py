"""Table 2: input graphs (paper scale vs synthetic stand-in scale)."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.report import render_table
from repro.graph import datasets


def run(seed: int = 0) -> List[Dict[str, str]]:
    """Build every stand-in and report its actual size."""
    return datasets.table2_rows(seed)


def render(rows: List[Dict[str, str]]) -> str:
    """Paper-style text rendering with the stand-in columns appended."""
    return render_table(
        ["Graph", "Paper N", "Paper E", "Stand-in N", "Stand-in E", "Description"],
        [
            [
                r["graph"],
                r["paper_nodes"],
                r["paper_edges"],
                r["standin_nodes"],
                r["standin_edges"],
                r["description"],
            ]
            for r in rows
        ],
        title="Table 2: input graphs",
    )
