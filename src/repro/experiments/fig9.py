"""Fig. 9: vertex and edge accesses of JetStream normalized to GraphPulse.

The paper plots, for SSWP/SSSP/BFS/CC/PR on FB/WK/LJ/UK, the ratio of
JetStream's vertex and edge accesses during incremental re-evaluation to
GraphPulse's during cold-start recomputation of the same batch. JetStream
stays below 0.54 for vertex accesses (as low as 0.03) and below ~0.3 for
events/edges — the work-reduction that drives Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_table

#: Paper panel: five algorithms over four graphs.
ALGORITHMS = ["sswp", "sssp", "bfs", "cc", "pagerank"]
GRAPHS = ["FB", "WK", "LJ", "UK"]


@dataclass
class AccessRatio:
    """One bar pair of the figure."""

    algorithm: str
    graph: str
    vertex_ratio: float
    edge_ratio: float


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[AccessRatio]:
    """Compute the access-ratio grid (shares cells with Table 3)."""
    out: List[AccessRatio] = []
    for algo in algorithms or ALGORITHMS:
        for graph in graphs or GRAPHS:
            cell = run_cell(graph, algo, policy=DeletePolicy.DAP, seed=seed)
            jet = cell.systems["jetstream"]
            cold = cell.systems["graphpulse"]
            out.append(
                AccessRatio(
                    algorithm=algo,
                    graph=graph,
                    vertex_ratio=jet.vertex_accesses / max(1, cold.vertex_accesses),
                    edge_ratio=jet.edge_accesses / max(1, cold.edge_accesses),
                )
            )
    return out


def render(ratios: List[AccessRatio]) -> str:
    """Text rendering of the bar chart."""
    return render_table(
        ["Algorithm", "Graph", "Vertex access ratio", "Edge access ratio"],
        [[r.algorithm.upper(), r.graph, r.vertex_ratio, r.edge_ratio] for r in ratios],
        title="Fig. 9: JetStream accesses normalized to GraphPulse (lower = less work)",
    )
