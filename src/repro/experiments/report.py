"""Plain-text table rendering and EXPERIMENTS.md regeneration."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table (the benches print these)."""
    rendered_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)


def render_speedup(value: float) -> str:
    """Paper-style speedup cell (``12.4x``)."""
    if value != value or value == float("inf"):
        return "-"
    return f"{value:.3g}x"


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's GMean column)."""
    filtered = [v for v in values if v > 0 and v == v and v != float("inf")]
    if not filtered:
        return float("nan")
    log_sum = sum(__import__("math").log(v) for v in filtered)
    return float(__import__("math").exp(log_sum / len(filtered)))
