"""Table 4: power and area of the accelerator components.

Reproduced analytically by :class:`repro.sim.power.PowerAreaModel`; the
deltas against GraphPulse arise from the structural changes (wider events,
extended logic). Paper reference values are kept alongside for the
EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import AcceleratorConfig
from repro.experiments.report import render_table
from repro.sim.power import PowerAreaModel

#: Paper Table 4 reference (component -> (total mW, area mm2, deltas %)).
PAPER_REFERENCE = {
    "Queue": {"total_mw": 8815, "area_mm2": 192, "total_delta": 0.00, "area_delta": 0.01},
    "Scratchpad": {"total_mw": 12.1, "area_mm2": 0.21, "total_delta": 0.04, "area_delta": 0.00},
    "Network": {"total_mw": 97, "area_mm2": 5.7, "total_delta": 0.77, "area_delta": 0.84},
    "Proc. Logic": {"total_mw": 1.8, "area_mm2": 0.7, "total_delta": 0.40, "area_delta": 0.51},
    "Total": {"total_mw": 8926, "area_mm2": 199, "total_delta": 0.01, "area_delta": 0.03},
}


def run(config: AcceleratorConfig = None) -> List[Dict[str, object]]:
    """Component budgets with deltas vs GraphPulse."""
    return PowerAreaModel(config).table4()


def render(rows: List[Dict[str, object]]) -> str:
    """Paper-style text rendering."""

    def pct(x: float) -> str:
        if x != x:
            return "-"
        return f"{x * 100:+.0f}%"

    body = []
    for row in rows:
        body.append(
            [
                row["component"],
                row["count"] or "-",
                f"{row['static_mw']:.2f} ({pct(row['static_delta'])})"
                if row["static_mw"] == row["static_mw"]
                else "-",
                f"{row['dynamic_mw']:.1f} ({pct(row['dynamic_delta'])})"
                if row["dynamic_mw"] == row["dynamic_mw"]
                else "-",
                f"{row['total_mw']:.0f} ({pct(row['total_delta'])})",
                f"{row['area_mm2']:.2f} ({pct(row['area_delta'])})",
            ]
        )
    return render_table(
        ["Component", "#", "Static mW", "Dynamic mW", "Total mW", "Area mm2"],
        body,
        title="Table 4: power and area of the accelerator components (delta vs GraphPulse)",
    )
