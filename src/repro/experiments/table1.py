"""Table 1: experimental configurations (hardware + software platforms)."""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import table1_rows
from repro.experiments.report import render_table


def run() -> List[Dict[str, str]]:
    """The configuration rows (straight from :mod:`repro.core.config`)."""
    return table1_rows()


def render(rows: List[Dict[str, str]]) -> str:
    """Paper-style text rendering."""
    return render_table(
        ["", "Software Framework", "JetStream"],
        [[r["item"], r["software"], r["jetstream"]] for r in rows],
        title="Table 1: experimental configurations",
    )
