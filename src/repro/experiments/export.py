"""CSV export of experiment series (for external plotting tools).

Each table/figure result is a list of dataclass records; this module
flattens them into CSV files so the figures can be re-plotted outside
Python (gnuplot, spreadsheets, the paper's own scripts).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Sequence, Union

Record = Union[Dict[str, object], object]


def record_to_dict(record: Record) -> Dict[str, object]:
    """Flatten one record (dataclass or mapping) into a scalar dict."""
    if dataclasses.is_dataclass(record) and not isinstance(record, type):
        raw = dataclasses.asdict(record)
    elif isinstance(record, dict):
        raw = dict(record)
    else:
        raise TypeError(f"cannot export {type(record).__name__}")
    flat: Dict[str, object] = {}
    for key, value in raw.items():
        if isinstance(value, dict):
            for sub_key, sub_value in value.items():
                flat[f"{key}_{sub_key}"] = sub_value
        elif isinstance(value, (list, tuple, set)):
            flat[key] = len(value)
        else:
            flat[key] = value
    return flat


def write_csv(records: Sequence[Record], path: Union[str, Path]) -> int:
    """Write records to ``path``; returns the row count."""
    path = Path(path)
    rows = [record_to_dict(r) for r in records]
    if not rows:
        path.write_text("", encoding="ascii")
        return 0
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    lines = [",".join(header)]
    for row in rows:
        lines.append(",".join(_cell(row.get(key)) for key in header))
    path.write_text("\n".join(lines) + "\n", encoding="ascii")
    return len(rows)


def _cell(value: object) -> str:
    if value is None:
        return ""
    text = str(value)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def export_all(results: Dict, directory: Union[str, Path]) -> List[str]:
    """Export every experiment's records as ``<name>.csv``.

    ``results`` is the runner's ``{name: (records, rendering)}`` mapping;
    entries whose records aren't lists of exportable records are skipped.
    Returns the written file names.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, (records, _) in results.items():
        if not isinstance(records, list) or not records:
            continue
        try:
            write_csv(records, directory / f"{name}.csv")
        except TypeError:
            continue
        written.append(f"{name}.csv")
    return sorted(written)
