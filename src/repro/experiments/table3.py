"""Table 3: execution time per query on streaming graphs and speedups.

The paper reports, for every (algorithm × dataset), JetStream's per-query
time in ms and its speedup over cold-start GraphPulse (GP) and over the
matching software framework (KickStarter for SSWP/SSSP/BFS/CC, GraphBolt
for PageRank/Adsorption), with a geometric-mean column. Batches are 100K
edges at 70% insertions / 30% deletions — scaled to the stand-in graphs by
:func:`repro.graph.datasets.scaled_batch_size`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import geomean, render_speedup, render_table
from repro.graph import datasets

#: Algorithm rows in the paper's order with their software comparator.
ALGORITHMS = [
    ("sswp", "kickstarter"),
    ("sssp", "kickstarter"),
    ("bfs", "kickstarter"),
    ("cc", "kickstarter"),
    ("pagerank", "graphbolt"),
    ("adsorption", "graphbolt"),
]

#: Paper Table 3 geometric means, for EXPERIMENTS.md comparison.
PAPER_GMEANS = {
    ("sswp", "graphpulse"): 21.6,
    ("sswp", "software"): 11.1,
    ("sssp", "graphpulse"): 20.1,
    ("sssp", "software"): 12.9,
    ("bfs", "graphpulse"): 6.9,
    ("bfs", "software"): 11.3,
    ("cc", "graphpulse"): 16.0,
    ("cc", "software"): 7.72,
    ("pagerank", "graphpulse"): 19.4,
    ("pagerank", "software"): 165.0,
    ("adsorption", "graphpulse"): 5.77,
    ("adsorption", "software"): 17.1,
}


@dataclass
class Table3Row:
    """One algorithm's row group (times + two speedup rows)."""

    algorithm: str
    comparator: str
    jet_ms: Dict[str, float] = field(default_factory=dict)
    speedup_gp: Dict[str, float] = field(default_factory=dict)
    speedup_sw: Dict[str, float] = field(default_factory=dict)

    @property
    def gmean_gp(self) -> float:
        return geomean(list(self.speedup_gp.values()))

    @property
    def gmean_sw(self) -> float:
        return geomean(list(self.speedup_sw.values()))


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    num_batches: int = 1,
    seed: int = 0,
) -> List[Table3Row]:
    """Compute the Table 3 grid (full paper grid by default)."""
    graphs = list(graphs or datasets.ORDER)
    wanted = set(algorithms or [a for a, _ in ALGORITHMS])
    rows: List[Table3Row] = []
    for algo, comparator in ALGORITHMS:
        if algo not in wanted:
            continue
        row = Table3Row(algorithm=algo, comparator=comparator)
        for graph in graphs:
            cell = run_cell(
                graph,
                algo,
                policy=DeletePolicy.DAP,
                num_batches=num_batches,
                seed=seed,
            )
            assert cell.states_agree, f"systems disagree on {algo}/{graph}"
            row.jet_ms[graph] = cell.systems["jetstream"].mean_batch_time_ms
            row.speedup_gp[graph] = cell.speedup("jetstream", "graphpulse")
            row.speedup_sw[graph] = cell.speedup("jetstream", comparator)
        rows.append(row)
    return rows


def render(rows: List[Table3Row]) -> str:
    """Paper-style text rendering of the Table 3 grid."""
    graphs = sorted({g for row in rows for g in row.jet_ms}, key=datasets.ORDER.index)
    headers = ["Algorithm", "Row"] + graphs + ["GMean"]
    body = []
    for row in rows:
        sw_label = "KS" if row.comparator == "kickstarter" else "GB"
        body.append(
            [row.algorithm.upper(), "Jet (ms)"]
            + [row.jet_ms[g] for g in graphs]
            + ["-"]
        )
        body.append(
            ["", "GP"]
            + [render_speedup(row.speedup_gp[g]) for g in graphs]
            + [render_speedup(row.gmean_gp)]
        )
        body.append(
            ["", sw_label]
            + [render_speedup(row.speedup_sw[g]) for g in graphs]
            + [render_speedup(row.gmean_sw)]
        )
    return render_table(
        headers,
        body,
        title="Table 3: execution time per query and speedups (JetStream vs GP/KS/GB)",
    )
