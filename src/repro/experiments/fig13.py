"""Fig. 13: sensitivity to batch size.

SSSP and PageRank on LiveJournal, sweeping the batch size downward from the
Table 3 baseline. Each curve reports time(JetStream @ baseline batch) /
time(system @ batch): JetStream's curve climbs steeply as batches shrink
(its per-batch overhead is tiny), while KickStarter's and GraphBolt's climb
far more slowly — their fixed per-batch costs dominate. This is the paper's
near-real-time argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_table
from repro.graph import datasets

GRAPH = "LJ"
ALGORITHMS = ["sssp", "pagerank"]


def default_batch_sizes() -> List[int]:
    """Scaled analogue of the paper's 100K→10 sweep (factors of ~4)."""
    baseline = datasets.scaled_batch_size(GRAPH)
    sizes = [baseline]
    while sizes[-1] > 4:
        sizes.append(max(2, sizes[-1] // 4))
    return sizes


@dataclass
class BatchSizeCurve:
    """One system's curve for one algorithm."""

    algorithm: str
    system: str
    #: batch size -> speedup relative to JetStream at the baseline batch.
    points: Dict[int, float] = field(default_factory=dict)


def run(
    batch_sizes: Optional[Sequence[int]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[BatchSizeCurve]:
    """Sweep batch sizes for both algorithms and all three systems."""
    batch_sizes = list(batch_sizes or default_batch_sizes())
    curves: List[BatchSizeCurve] = []
    for algo in algorithms or ALGORITHMS:
        baseline_cell = run_cell(
            GRAPH, algo, policy=DeletePolicy.DAP, batch_size=batch_sizes[0], seed=seed
        )
        baseline_ms = baseline_cell.systems["jetstream"].mean_batch_time_ms
        sw_name = "kickstarter" if algo in ("sssp", "sswp", "bfs", "cc") else "graphbolt"
        jet = BatchSizeCurve(algorithm=algo, system="jetstream")
        sw = BatchSizeCurve(algorithm=algo, system=sw_name)
        for size in batch_sizes:
            cell = run_cell(
                GRAPH,
                algo,
                policy=DeletePolicy.DAP,
                batch_size=size,
                seed=seed,
                systems=("jetstream", "software"),
            )
            jet.points[size] = baseline_ms / max(
                1e-12, cell.systems["jetstream"].mean_batch_time_ms
            )
            sw.points[size] = baseline_ms / max(
                1e-12, cell.systems[sw_name].mean_batch_time_ms
            )
        curves.extend([jet, sw])
    return curves


def render(curves: List[BatchSizeCurve]) -> str:
    """Text rendering of the log-log curves."""
    sizes = sorted({s for c in curves for s in c.points}, reverse=True)
    return render_table(
        ["Algorithm", "System"] + [str(s) for s in sizes],
        [
            [c.algorithm.upper(), c.system]
            + [c.points.get(s, float("nan")) for s in sizes]
            for c in curves
        ],
        title=(
            "Fig. 13: batch-size sensitivity on LiveJournal "
            "(speedup vs JetStream at the baseline batch; columns = batch size)"
        ),
    )
