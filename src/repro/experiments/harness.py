"""Shared experiment cell runner.

A *cell* is one (dataset, algorithm, policy, batch recipe) point. The
harness builds identical graph copies for every system under test, drives
the same pre-generated update batches through each, cross-checks that all
systems converge to the same query result, and collects:

* JetStream / GraphPulse: per-batch accelerator cycle estimates
  (:mod:`repro.sim.timing`) plus the functional work counters;
* KickStarter / GraphBolt: per-batch software time estimates
  (:mod:`repro.sim.cost_models`) plus their work counters.

Cells are memoized in-process so the table/figure modules can share runs
(Table 3, Fig. 9 and Fig. 11 all project the same cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_algorithm
from repro.algorithms.base import AlgorithmKind
from repro.baselines import GraphBolt, GraphPulseColdStart, KickStarter
from repro.core.config import AcceleratorConfig, SoftwareConfig
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import datasets
from repro.graph.dynamic import DynamicGraph
from repro.sim.cost_models import SoftwareCostModel
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import StreamGenerator, UpdateBatch

#: Tolerance used for accumulative algorithms in experiments: coarse enough
#: that correction waves stay local (mirroring the paper's batch-to-graph
#: scale ratio), fine enough for meaningful results.
EXPERIMENT_ACCUMULATIVE_TOL = 1e-4

_SELECTIVE = {"sssp", "sswp", "bfs", "cc"}


@dataclass
class SystemOutcome:
    """Per-system measurements for one cell."""

    name: str
    initial_time_ms: float
    batch_times_ms: List[float] = field(default_factory=list)
    vertex_accesses: int = 0
    edge_accesses: int = 0
    vertices_reset: int = 0
    events_processed: int = 0
    memory_utilization: float = 0.0

    @property
    def mean_batch_time_ms(self) -> float:
        """Mean per-batch (per-query) time."""
        if not self.batch_times_ms:
            return 0.0
        return float(np.mean(self.batch_times_ms))


@dataclass
class CellResult:
    """All systems' outcomes for one experiment cell."""

    dataset: str
    algorithm: str
    policy: str
    batch_size: int
    insertion_ratio: float
    num_batches: int
    systems: Dict[str, SystemOutcome] = field(default_factory=dict)
    states_agree: bool = True

    def speedup(self, of: str, over: str) -> float:
        """Per-batch-time speedup of system ``of`` over system ``over``."""
        denominator = self.systems[of].mean_batch_time_ms
        if denominator <= 0:
            return float("inf")
        return self.systems[over].mean_batch_time_ms / denominator


_CACHE: Dict[Tuple, CellResult] = {}


def clear_cache() -> None:
    """Drop all memoized cells (tests use this for isolation)."""
    _CACHE.clear()


def _make_algorithm(name: str):
    if name in _SELECTIVE:
        return make_algorithm(name, source=0)
    if name == "adsorption":
        # Adsorption contracts hard (p_continue * weight split); at the
        # PageRank tolerance its correction waves die before doing any
        # measurable work and the speedups become meaningless — tighten.
        return make_algorithm(name, tolerance=1e-6)
    return make_algorithm(name, tolerance=EXPERIMENT_ACCUMULATIVE_TOL)


def _build_graph(dataset: str, symmetric: bool, seed: int) -> DynamicGraph:
    return datasets.load(dataset, seed=seed, symmetric=symmetric)


def _pregenerate_batches(
    dataset: str,
    symmetric: bool,
    seed: int,
    batch_size: int,
    insertion_ratio: float,
    num_batches: int,
) -> List[UpdateBatch]:
    """Generate the batch sequence against a scratch graph copy."""
    scratch = _build_graph(dataset, symmetric, seed)
    generator = StreamGenerator(
        scratch, seed=seed + 1000, insertion_ratio=insertion_ratio
    )
    return list(generator.stream(batch_size, num_batches))


def run_cell(
    dataset: str,
    algorithm: str,
    policy: DeletePolicy = DeletePolicy.DAP,
    batch_size: Optional[int] = None,
    insertion_ratio: float = 0.7,
    num_batches: int = 1,
    seed: int = 0,
    systems: Sequence[str] = ("jetstream", "graphpulse", "software"),
    accel_config: Optional[AcceleratorConfig] = None,
    software_config: Optional[SoftwareConfig] = None,
) -> CellResult:
    """Run one experiment cell (memoized).

    ``systems`` may contain ``jetstream``, ``graphpulse`` (cold start), and
    ``software`` (KickStarter for selective algorithms, GraphBolt for
    accumulative ones — the same pairing as Table 3).
    """
    if batch_size is None:
        batch_size = datasets.scaled_batch_size(dataset)
    key = (
        dataset,
        algorithm,
        policy.value,
        batch_size,
        insertion_ratio,
        num_batches,
        seed,
        tuple(sorted(systems)),
        accel_config is None,
        software_config is None,
    )
    if key in _CACHE and accel_config is None and software_config is None:
        return _CACHE[key]

    probe = _make_algorithm(algorithm)
    symmetric = probe.needs_symmetric
    batches = _pregenerate_batches(
        dataset, symmetric, seed, batch_size, insertion_ratio, num_batches
    )
    result = CellResult(
        dataset=dataset,
        algorithm=algorithm,
        policy=policy.value,
        batch_size=batch_size,
        insertion_ratio=insertion_ratio,
        num_batches=num_batches,
    )

    timing = AcceleratorTimingModel(accel_config)
    cost_model = SoftwareCostModel(software_config)
    final_states: Dict[str, np.ndarray] = {}

    if "jetstream" in systems:
        graph = _build_graph(dataset, symmetric, seed)
        engine = JetStreamEngine(
            graph, _make_algorithm(algorithm), config=accel_config, policy=policy
        )
        initial = engine.initial_compute()
        outcome = SystemOutcome(
            name="jetstream",
            initial_time_ms=timing.run_time(initial.metrics).time_ms,
        )
        for batch in batches:
            res = engine.apply_batch(batch)
            report = timing.run_time(res.metrics, stream_records=batch.size)
            outcome.batch_times_ms.append(report.time_ms)
            outcome.vertex_accesses += res.metrics.vertex_accesses
            outcome.edge_accesses += res.metrics.edge_accesses
            outcome.vertices_reset += res.vertices_reset
            outcome.events_processed += res.metrics.events_processed
            outcome.memory_utilization = res.metrics.memory_utilization()
        result.systems["jetstream"] = outcome
        final_states["jetstream"] = engine.query_result()

    if "graphpulse" in systems:
        graph = _build_graph(dataset, symmetric, seed)
        engine = GraphPulseColdStart(graph, _make_algorithm(algorithm), accel_config)
        initial = engine.initial_compute()
        outcome = SystemOutcome(
            name="graphpulse",
            initial_time_ms=timing.run_time(initial.metrics).time_ms,
        )
        for batch in batches:
            res = engine.apply_batch(batch)
            report = timing.run_time(res.metrics, stream_records=batch.size)
            outcome.batch_times_ms.append(report.time_ms)
            outcome.vertex_accesses += res.metrics.vertex_accesses
            outcome.edge_accesses += res.metrics.edge_accesses
            outcome.events_processed += res.metrics.events_processed
            outcome.memory_utilization = res.metrics.memory_utilization()
        result.systems["graphpulse"] = outcome
        final_states["graphpulse"] = res.states.copy()

    if "software" in systems:
        graph = _build_graph(dataset, symmetric, seed)
        algo = _make_algorithm(algorithm)
        if algo.kind is AlgorithmKind.SELECTIVE:
            engine = KickStarter(graph, algo)
            name = "kickstarter"
        else:
            engine = GraphBolt(graph, algo)
            name = "graphbolt"
        initial = engine.initial_compute()
        outcome = SystemOutcome(
            name=name,
            initial_time_ms=cost_model.time_ms(initial.work),
        )
        for batch in batches:
            res = engine.apply_batch(batch)
            outcome.batch_times_ms.append(cost_model.time_ms(res.work))
            outcome.vertices_reset += getattr(res, "vertices_reset", 0)
        result.systems[name] = outcome
        final_states[name] = res.states.copy()

    # Cross-system agreement on the final query result. Selective
    # algorithms must match exactly; accumulative systems carry different
    # threshold-truncation signatures (event retraction assumes full
    # historical forwarding; synchronous pull re-aggregates exactly), so
    # they are compared at 2% relative / 5e-3 absolute.
    names = sorted(final_states)
    for i in range(1, len(names)):
        a, b = final_states[names[0]], final_states[names[i]]
        if len(a) != len(b):
            continue
        if probe.kind is AlgorithmKind.ACCUMULATIVE:
            if not np.allclose(a, b, rtol=0.02, atol=5e-3):
                result.states_agree = False
        elif not probe.states_close(a, b):
            result.states_agree = False
    if accel_config is None and software_config is None:
        _CACHE[key] = result
    return result
