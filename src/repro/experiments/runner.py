"""Run the full experiment suite and regenerate EXPERIMENTS.md.

``python -m repro.experiments.runner [--quick]`` executes every table and
figure, prints the paper-style renderings, and rewrites ``EXPERIMENTS.md``
with the measured-vs-paper record. ``--quick`` restricts the grids to two
graphs for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import (
    energy,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
    table2,
    table3,
    table4,
)


def run_all(quick: bool = False, seed: int = 0) -> dict:
    """Execute every experiment; returns {name: (result, rendering)}."""
    graphs = ["WK", "LJ"] if quick else None
    fig_graphs = ["WK", "LJ"] if quick else None
    algorithms = ["sssp", "pagerank"] if quick else None
    out = {}

    t1_rows = table1.run()
    out["table1"] = (t1_rows, table1.render(t1_rows))
    t2_rows = table2.run(seed)
    out["table2"] = (t2_rows, table2.render(t2_rows))

    t3_rows = table3.run(graphs=graphs, algorithms=algorithms, seed=seed)
    out["table3"] = (t3_rows, table3.render(t3_rows))

    f9 = fig9.run(graphs=fig_graphs, algorithms=algorithms, seed=seed)
    out["fig9"] = (f9, fig9.render(f9))
    f10 = fig10.run(
        graphs=fig_graphs,
        algorithms=["sssp"] if quick else None,
        seed=seed,
    )
    out["fig10"] = (f10, fig10.render(f10))
    f11 = fig11.run(graphs=fig_graphs, algorithms=algorithms, seed=seed)
    out["fig11"] = (f11, fig11.render(f11))
    f12 = fig12.run(
        graphs=["LJ"] if quick else None,
        algorithms=["sssp"] if quick else None,
        seed=seed,
    )
    out["fig12"] = (f12, fig12.render(f12))
    f13 = fig13.run(algorithms=["sssp"] if quick else None, seed=seed)
    out["fig13"] = (f13, fig13.render(f13))
    f14 = fig14.run(algorithms=["sssp"] if quick else None, seed=seed)
    out["fig14"] = (f14, fig14.render(f14))

    t4_rows = table4.run()
    out["table4"] = (t4_rows, table4.render(t4_rows))

    energy_points = energy.run(
        graphs=fig_graphs,
        algorithms=["sssp", "pagerank"] if quick else None,
        seed=seed,
    )
    out["energy"] = (energy_points, energy.render(energy_points))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small smoke grid")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--write-doc",
        action="store_true",
        help="regenerate EXPERIMENTS.md from this run",
    )
    args = parser.parse_args(argv)
    start = time.time()
    results = run_all(quick=args.quick, seed=args.seed)
    for name in [
        "table1",
        "table2",
        "table3",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "table4",
        "energy",
    ]:
        print()
        print(results[name][1])
    if args.write_doc:
        from repro.experiments.experiments_doc import write_doc
        from repro.experiments.export import export_all

        write_doc(results)
        written = export_all(results, Path("benchmarks") / "results" / "csv")
        print(f"\nwrote EXPERIMENTS.md and {len(written)} CSV series")
    print(f"\ncompleted in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
