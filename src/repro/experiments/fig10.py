"""Fig. 10: number of vertices reset by a deletion-only batch.

The paper deletes 30K edges and counts how many vertices each system resets
while recovering a recoverable approximation: JetStream's exact-source DAP
resets fewer vertices than KickStarter's value/level trimming on almost
every (algorithm, graph) point. The 30K batch is scaled to the stand-ins
with the same edge-ratio rule as Table 3.

A third column extends the figure with the CommonGraph policy
(deletion-to-addition conversion): it resets *zero* vertices by
construction — the batch converges on the common graph and re-applies
insertions as pure additions — so the interesting head-to-head number is
its event count against DAP's cascade, also reported here (and gated at
deletion-heavy batch sizes in ``benchmarks/bench_commongraph.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_table
from repro.graph import datasets

ALGORITHMS = ["sswp", "sssp", "bfs", "cc"]
GRAPHS = datasets.ORDER


@dataclass
class ResetCount:
    """One bar group of the figure."""

    algorithm: str
    graph: str
    jetstream_resets: int
    kickstarter_resets: int
    #: Always 0 — the conversion has no recovery phase; kept as a column
    #: so the figure shows the three policies head to head.
    commongraph_resets: int = 0
    #: Events processed by the DAP batch vs the commongraph batch.
    dap_events: int = 0
    commongraph_events: int = 0


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[ResetCount]:
    """Deletion-only batches through JetStream (DAP), KickStarter, and
    the CommonGraph conversion."""
    out: List[ResetCount] = []
    for algo in algorithms or ALGORITHMS:
        for graph in graphs or GRAPHS:
            batch = int(round(datasets.scaled_batch_size(graph) * 0.3)) or 8
            cell = run_cell(
                graph,
                algo,
                policy=DeletePolicy.DAP,
                batch_size=batch,
                insertion_ratio=0.0,
                seed=seed,
                systems=("jetstream", "software"),
            )
            cg_cell = run_cell(
                graph,
                algo,
                policy=DeletePolicy.COMMONGRAPH,
                batch_size=batch,
                insertion_ratio=0.0,
                seed=seed,
                systems=("jetstream",),
            )
            out.append(
                ResetCount(
                    algorithm=algo,
                    graph=graph,
                    jetstream_resets=cell.systems["jetstream"].vertices_reset,
                    kickstarter_resets=cell.systems["kickstarter"].vertices_reset,
                    commongraph_resets=cg_cell.systems["jetstream"].vertices_reset,
                    dap_events=cell.systems["jetstream"].events_processed,
                    commongraph_events=cg_cell.systems["jetstream"].events_processed,
                )
            )
    return out


def render(counts: List[ResetCount]) -> str:
    """Text rendering of the bar chart."""
    return render_table(
        [
            "Algorithm",
            "Graph",
            "JetStream resets",
            "KickStarter resets",
            "CommonGraph resets",
            "DAP events",
            "CG events",
        ],
        [
            [
                c.algorithm.upper(),
                c.graph,
                c.jetstream_resets,
                c.kickstarter_resets,
                c.commongraph_resets,
                c.dap_events,
                c.commongraph_events,
            ]
            for c in counts
        ],
        title="Fig. 10: vertices reset by a deletion-only batch (lower = tighter trimming)",
    )
