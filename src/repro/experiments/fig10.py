"""Fig. 10: number of vertices reset by a deletion-only batch.

The paper deletes 30K edges and counts how many vertices each system resets
while recovering a recoverable approximation: JetStream's exact-source DAP
resets fewer vertices than KickStarter's value/level trimming on almost
every (algorithm, graph) point. The 30K batch is scaled to the stand-ins
with the same edge-ratio rule as Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_table
from repro.graph import datasets

ALGORITHMS = ["sswp", "sssp", "bfs", "cc"]
GRAPHS = datasets.ORDER


@dataclass
class ResetCount:
    """One bar pair of the figure."""

    algorithm: str
    graph: str
    jetstream_resets: int
    kickstarter_resets: int


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[ResetCount]:
    """Deletion-only batches through JetStream (DAP) and KickStarter."""
    out: List[ResetCount] = []
    for algo in algorithms or ALGORITHMS:
        for graph in graphs or GRAPHS:
            batch = int(round(datasets.scaled_batch_size(graph) * 0.3)) or 8
            cell = run_cell(
                graph,
                algo,
                policy=DeletePolicy.DAP,
                batch_size=batch,
                insertion_ratio=0.0,
                seed=seed,
                systems=("jetstream", "software"),
            )
            out.append(
                ResetCount(
                    algorithm=algo,
                    graph=graph,
                    jetstream_resets=cell.systems["jetstream"].vertices_reset,
                    kickstarter_resets=cell.systems["kickstarter"].vertices_reset,
                )
            )
    return out


def render(counts: List[ResetCount]) -> str:
    """Text rendering of the bar chart."""
    return render_table(
        ["Algorithm", "Graph", "JetStream resets", "KickStarter resets"],
        [
            [c.algorithm.upper(), c.graph, c.jetstream_resets, c.kickstarter_resets]
            for c in counts
        ],
        title="Fig. 10: vertices reset by a deletion-only batch (lower = tighter trimming)",
    )
