"""Energy-efficiency experiment (§6.3's closing claim).

"The processing time in JetStream is shorter, making JetStream ~13 times
more energy-efficient than full recomputation with GraphPulse."

Both accelerators draw essentially the same power (Table 4: +1%), so the
per-query energy ratio tracks the time ratio. This module computes the
per-batch energy of each from the timing and power models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import geomean, render_table
from repro.graph import datasets
from repro.sim.power import PowerAreaModel


@dataclass
class EnergyPoint:
    """Per-batch energy of both systems for one workload."""

    algorithm: str
    graph: str
    jetstream_mj: float
    graphpulse_mj: float

    @property
    def efficiency_gain(self) -> float:
        """How many times less energy JetStream spends per query."""
        if self.jetstream_mj <= 0:
            return float("inf")
        return self.graphpulse_mj / self.jetstream_mj


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[EnergyPoint]:
    """Energy per streaming query, JetStream vs cold-start GraphPulse."""
    model = PowerAreaModel()
    jet_w = model.total_power_mw(jetstream=True) / 1000.0
    gp_w = model.total_power_mw(jetstream=False) / 1000.0
    points = []
    for algo in algorithms or ["sssp", "bfs", "pagerank"]:
        for graph in graphs or datasets.ORDER:
            cell = run_cell(graph, algo, policy=DeletePolicy.DAP, seed=seed)
            jet_ms = cell.systems["jetstream"].mean_batch_time_ms
            gp_ms = cell.systems["graphpulse"].mean_batch_time_ms
            points.append(
                EnergyPoint(
                    algorithm=algo,
                    graph=graph,
                    jetstream_mj=jet_w * jet_ms,
                    graphpulse_mj=gp_w * gp_ms,
                )
            )
    return points


def mean_gain(points: List[EnergyPoint]) -> float:
    """Geometric-mean efficiency gain (paper: ~13x)."""
    return geomean([p.efficiency_gain for p in points])


def render(points: List[EnergyPoint]) -> str:
    body = [
        [p.algorithm.upper(), p.graph, p.jetstream_mj, p.graphpulse_mj, p.efficiency_gain]
        for p in points
    ]
    body.append(["GMean", "", float("nan"), float("nan"), mean_gain(points)])
    return render_table(
        ["Algorithm", "Graph", "Jet mJ/query", "GP mJ/query", "Gain"],
        body,
        title="Energy per streaming query (§6.3: JetStream ~13x more efficient)",
    )
