"""Ablations of the design choices DESIGN.md calls out.

Not a paper table, but the design-space questions the paper's architecture
answers implicitly:

* **Coalescing effectiveness** — what fraction of queue inserts are merged
  by the in-place Reduce (the feature that removes atomics, §4.2)?
* **Queue row width** — the row grouping drives prefetch locality; sweep
  ``queue_row_vertices`` and watch memory utilization / cycles.
* **DRAM channels** — when does the engine stop being memory-bound?
* **Software per-batch overhead** — the Fig. 13 crossover driver: where
  does JetStream's advantage come from as the floor varies?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.algorithms import make_algorithm
from repro.core.config import AcceleratorConfig, SoftwareConfig
from repro.core.streaming import JetStreamEngine
from repro.experiments.report import render_table
from repro.graph import datasets
from repro.sim.cost_models import SoftwareCostModel
from repro.sim.timing import AcceleratorTimingModel
from repro.streams import StreamGenerator


@dataclass
class CoalescingStat:
    """Coalescing effectiveness for one workload."""

    algorithm: str
    graph: str
    inserts: int
    coalesced: int

    @property
    def rate(self) -> float:
        """Fraction of inserts merged into an existing event."""
        return self.coalesced / self.inserts if self.inserts else 0.0


def coalescing_effectiveness(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[CoalescingStat]:
    """Measure queue-coalescing rates during initial evaluation."""
    out = []
    for algo in algorithms or ["sssp", "bfs", "cc", "pagerank"]:
        for key in graphs or ["WK", "LJ"]:
            algorithm = make_algorithm(algo, source=0)
            if algo in ("pagerank", "adsorption"):
                algorithm = make_algorithm(algo, tolerance=1e-4)
            graph = datasets.load(key, seed=seed, symmetric=algorithm.needs_symmetric)
            engine = JetStreamEngine(graph, algorithm)
            result = engine.initial_compute()
            total = result.metrics.total
            out.append(
                CoalescingStat(
                    algorithm=algo,
                    graph=key,
                    inserts=total.queue_inserts,
                    coalesced=total.coalesce_ops,
                )
            )
    return out


@dataclass
class SweepPoint:
    """One configuration point of a hardware sweep."""

    parameter: str
    value: float
    time_us: float
    memory_utilization: float


def _one_batch_metrics(config: AcceleratorConfig, seed: int = 0):
    graph = datasets.load("LJ", seed=seed)
    engine = JetStreamEngine(graph, make_algorithm("sssp", source=0), config=config)
    engine.initial_compute()
    stream = StreamGenerator(graph, seed=seed + 1)
    batch = stream.next_batch(datasets.scaled_batch_size("LJ"))
    result = engine.apply_batch(batch)
    return result.metrics, batch.size


def queue_row_sweep(widths: Sequence[int] = (1, 4, 8, 16, 32), seed: int = 0) -> List[SweepPoint]:
    """Sweep the queue row width (vertices per drained row)."""
    points = []
    for width in widths:
        config = AcceleratorConfig(queue_row_vertices=width)
        metrics, records = _one_batch_metrics(config, seed)
        report = AcceleratorTimingModel(config).run_time(metrics, stream_records=records)
        points.append(
            SweepPoint(
                parameter="queue_row_vertices",
                value=width,
                time_us=report.time_us,
                memory_utilization=metrics.memory_utilization(),
            )
        )
    return points


def dram_channel_sweep(channels: Sequence[int] = (1, 2, 4, 8), seed: int = 0) -> List[SweepPoint]:
    """Sweep DRAM channel count on a fixed workload."""
    metrics, records = _one_batch_metrics(AcceleratorConfig(), seed)
    points = []
    for count in channels:
        config = AcceleratorConfig(dram_channels=count)
        report = AcceleratorTimingModel(config).run_time(metrics, stream_records=records)
        points.append(
            SweepPoint(
                parameter="dram_channels",
                value=count,
                time_us=report.time_us,
                memory_utilization=metrics.memory_utilization(),
            )
        )
    return points


@dataclass
class OverheadPoint:
    """Software-floor sensitivity at one batch size."""

    overhead_us: float
    batch_size: int
    jetstream_ms: float
    software_ms: float

    @property
    def advantage(self) -> float:
        return self.software_ms / self.jetstream_ms if self.jetstream_ms else 0.0


def software_overhead_sensitivity(
    overheads_us: Sequence[float] = (0.0, 40.0, 120.0, 400.0),
    batch_sizes: Sequence[int] = (4, 83),
    seed: int = 0,
) -> List[OverheadPoint]:
    """How the software per-batch floor shapes the small-batch advantage."""
    from repro.baselines import KickStarter

    points = []
    timing = AcceleratorTimingModel()
    for batch_size in batch_sizes:
        # One pair of runs per batch size; re-price under each floor.
        graph_jet = datasets.load("LJ", seed=seed)
        jet = JetStreamEngine(graph_jet, make_algorithm("sssp", source=0))
        jet.initial_compute()
        jet_result = jet.apply_batch(
            StreamGenerator(graph_jet, seed=seed + 2).next_batch(batch_size)
        )
        jet_ms = timing.run_time(jet_result.metrics, stream_records=batch_size).time_ms

        graph_ks = datasets.load("LJ", seed=seed)
        kick = KickStarter(graph_ks, make_algorithm("sssp", source=0))
        kick.initial_compute()
        ks_result = kick.apply_batch(
            StreamGenerator(graph_ks, seed=seed + 2).next_batch(batch_size)
        )
        for overhead in overheads_us:
            model = SoftwareCostModel(
                SoftwareConfig(per_batch_overhead_us=overhead)
            )
            points.append(
                OverheadPoint(
                    overhead_us=overhead,
                    batch_size=batch_size,
                    jetstream_ms=jet_ms,
                    software_ms=model.time_ms(ks_result.work),
                )
            )
    return points


def scheduler_drain_sweep(
    rows: Sequence[Optional[int]] = (None, 32, 8, 2), seed: int = 0
) -> List[SweepPoint]:
    """Sweep the scheduler drain width (rows emitted per round, §4.3).

    Narrow drains shorten the coalescing window during bursty phases and
    multiply scheduler rounds; the full-drain model is the paper-faithful
    upper bound on coalescing opportunity.
    """
    points = []
    for width in rows:
        config = AcceleratorConfig(scheduler_rows_per_round=width)
        metrics, records = _one_batch_metrics(config, seed)
        report = AcceleratorTimingModel(config).run_time(metrics, stream_records=records)
        points.append(
            SweepPoint(
                parameter="scheduler_rows_per_round",
                value=-1 if width is None else width,
                time_us=report.time_us,
                memory_utilization=metrics.memory_utilization(),
            )
        )
    return points


def render_coalescing(stats: List[CoalescingStat]) -> str:
    return render_table(
        ["Algorithm", "Graph", "Queue inserts", "Coalesced", "Rate"],
        [[s.algorithm.upper(), s.graph, s.inserts, s.coalesced, s.rate] for s in stats],
        title="Ablation: coalescing effectiveness during initial evaluation",
    )


def render_sweep(points: List[SweepPoint], title: str) -> str:
    return render_table(
        ["Parameter", "Value", "Time (us)", "Memory util"],
        [[p.parameter, p.value, p.time_us, p.memory_utilization] for p in points],
        title=title,
    )


def render_overheads(points: List[OverheadPoint]) -> str:
    return render_table(
        ["Batch", "SW overhead (us)", "Jet ms", "SW ms", "Advantage"],
        [
            [p.batch_size, p.overhead_us, p.jetstream_ms, p.software_ms, p.advantage]
            for p in points
        ],
        title="Ablation: software per-batch floor vs JetStream advantage",
    )
