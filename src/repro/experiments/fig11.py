"""Fig. 11: utilization of off-chip memory transfers.

Ratio of bytes consumed by the compute engines to bytes moved across the
DRAM pins (64 B lines). GraphPulse's dense rounds use most of every line;
JetStream's sparse incremental events waste much of each transfer — the
paper measures JetStream at less than a third of GraphPulse's utilization
and calls optimizing it future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_table
from repro.graph import datasets

ALGORITHMS = ["pagerank", "sswp", "sssp", "bfs", "cc"]
GRAPHS = datasets.ORDER


@dataclass
class UtilizationPair:
    """One bar pair of the figure."""

    algorithm: str
    graph: str
    jetstream: float
    graphpulse: float


def run(
    graphs: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[UtilizationPair]:
    """Utilization of both systems on the Table 3 batches."""
    out: List[UtilizationPair] = []
    for algo in algorithms or ALGORITHMS:
        for graph in graphs or GRAPHS:
            cell = run_cell(graph, algo, policy=DeletePolicy.DAP, seed=seed)
            out.append(
                UtilizationPair(
                    algorithm=algo,
                    graph=graph,
                    jetstream=cell.systems["jetstream"].memory_utilization,
                    graphpulse=cell.systems["graphpulse"].memory_utilization,
                )
            )
    return out


def render(pairs: List[UtilizationPair]) -> str:
    """Text rendering of the bar chart."""
    return render_table(
        ["Algorithm", "Graph", "JetStream util", "GraphPulse util"],
        [[p.algorithm.upper(), p.graph, p.jetstream, p.graphpulse] for p in pairs],
        title="Fig. 11: off-chip memory transfer utilization (used/transferred bytes)",
    )
