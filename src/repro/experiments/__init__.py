"""Experiment harness: one module per table/figure of the paper's §6.

* :mod:`repro.experiments.harness` — shared cell runner driving identical
  update streams through JetStream, cold-start GraphPulse, KickStarter,
  and GraphBolt, with cross-system correctness checks and result caching;
* ``table1``/``table2`` — configuration and dataset tables;
* ``table3`` — execution time per query + speedups;
* ``table4`` — power and area budgets;
* ``fig9`` — vertex/edge accesses normalized to GraphPulse;
* ``fig10`` — vertices reset by a deletion batch vs KickStarter;
* ``fig11`` — off-chip memory transfer utilization;
* ``fig12`` — Base/+VAP/+DAP optimization speedups;
* ``fig13`` — batch-size sensitivity;
* ``fig14`` — batch-composition sensitivity;
* :mod:`repro.experiments.report` — text rendering + EXPERIMENTS.md
  regeneration.
"""

from repro.experiments.harness import CellResult, SystemOutcome, run_cell

__all__ = ["CellResult", "SystemOutcome", "run_cell"]
