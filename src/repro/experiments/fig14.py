"""Fig. 14: sensitivity to batch composition.

SSSP and CC on LiveJournal with insertion:deletion mixes of 100:0, 50:50
and 0:100, runtimes normalized to JetStream at 50:50. Deletions are the
expensive direction for selective algorithms (recovery phase + reevaluation
of the impacted set); an insertion-only batch converges several times
faster than a deletion-only one. Accumulative algorithms handle both kinds
through the same negative/positive events and are largely insensitive —
checked by the optional PageRank row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.policies import DeletePolicy
from repro.experiments.harness import run_cell
from repro.experiments.report import render_table

GRAPH = "LJ"
ALGORITHMS = ["sssp", "cc"]
COMPOSITIONS = [1.0, 0.5, 0.0]  # insertion ratios for 100:0 / 50:50 / 0:100


@dataclass
class CompositionCurve:
    """One system's normalized runtimes across compositions."""

    algorithm: str
    system: str
    #: insertion ratio -> runtime normalized to JetStream at 50:50.
    points: Dict[float, float] = field(default_factory=dict)


def run(
    algorithms: Optional[Sequence[str]] = None,
    compositions: Optional[Sequence[float]] = None,
    include_accumulative_check: bool = False,
    seed: int = 0,
) -> List[CompositionCurve]:
    """Sweep compositions for JetStream and the software comparator."""
    algorithms = list(algorithms or ALGORITHMS)
    if include_accumulative_check and "pagerank" not in algorithms:
        algorithms.append("pagerank")
    compositions = list(compositions or COMPOSITIONS)
    curves: List[CompositionCurve] = []
    for algo in algorithms:
        selective = algo in ("sssp", "sswp", "bfs", "cc")
        sw_name = "kickstarter" if selective else "graphbolt"
        anchor = run_cell(
            GRAPH,
            algo,
            policy=DeletePolicy.DAP,
            insertion_ratio=0.5,
            seed=seed,
            systems=("jetstream", "software"),
        )
        anchor_ms = anchor.systems["jetstream"].mean_batch_time_ms
        jet = CompositionCurve(algorithm=algo, system="jetstream")
        sw = CompositionCurve(algorithm=algo, system=sw_name)
        for ratio in compositions:
            cell = run_cell(
                GRAPH,
                algo,
                policy=DeletePolicy.DAP,
                insertion_ratio=ratio,
                seed=seed,
                systems=("jetstream", "software"),
            )
            jet.points[ratio] = cell.systems["jetstream"].mean_batch_time_ms / max(
                1e-12, anchor_ms
            )
            sw.points[ratio] = cell.systems[sw_name].mean_batch_time_ms / max(
                1e-12, anchor_ms
            )
        curves.extend([jet, sw])
    return curves


def render(curves: List[CompositionCurve]) -> str:
    """Text rendering of the composition curves."""
    ratios = sorted({r for c in curves for r in c.points}, reverse=True)

    def label(ratio: float) -> str:
        return f"{int(ratio * 100)}:{int((1 - ratio) * 100)}"

    return render_table(
        ["Algorithm", "System"] + [label(r) for r in ratios],
        [
            [c.algorithm.upper(), c.system]
            + [c.points.get(r, float("nan")) for r in ratios]
            for c in curves
        ],
        title=(
            "Fig. 14: batch-composition sensitivity on LiveJournal "
            "(runtime normalized to JetStream at 50:50; columns = ins:del)"
        ),
    )
