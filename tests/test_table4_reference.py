"""Table 4 model vs the paper's published numbers, row by row."""

import pytest

from repro.experiments import table4


@pytest.fixture(scope="module")
def rows():
    return {r["component"]: r for r in table4.run()}


class TestAgainstPaper:
    @pytest.mark.parametrize(
        "component, rel",
        [("Queue", 0.02), ("Scratchpad", 0.05), ("Network", 0.05), ("Proc. Logic", 0.05)],
    )
    def test_total_power_close(self, rows, component, rel):
        paper = table4.PAPER_REFERENCE[component]["total_mw"]
        assert rows[component]["total_mw"] == pytest.approx(paper, rel=rel)

    @pytest.mark.parametrize(
        "component, rel",
        [("Queue", 0.02), ("Network", 0.06), ("Proc. Logic", 0.05)],
    )
    def test_area_close(self, rows, component, rel):
        paper = table4.PAPER_REFERENCE[component]["area_mm2"]
        assert rows[component]["area_mm2"] == pytest.approx(paper, rel=rel)

    def test_network_delta_matches_event_width(self, rows):
        """The +75% network delta is structural: 14B vs 8B events."""
        assert rows["Network"]["static_delta"] == pytest.approx(14 / 8 - 1, abs=0.01)

    def test_total_row_sums_components(self, rows):
        parts = ["Queue", "Scratchpad", "Network", "Proc. Logic"]
        assert rows["Total"]["total_mw"] == pytest.approx(
            sum(rows[p]["total_mw"] for p in parts)
        )
        assert rows["Total"]["area_mm2"] == pytest.approx(
            sum(rows[p]["area_mm2"] for p in parts)
        )

    def test_paper_reference_shape(self):
        assert set(table4.PAPER_REFERENCE) == {
            "Queue",
            "Scratchpad",
            "Network",
            "Proc. Logic",
            "Total",
        }
