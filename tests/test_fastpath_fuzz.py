"""Express-lane fuzzing: single updates interleaved with engine batches.

The invariant under test: **a stream driven through the express lane
(:class:`repro.core.fastpath.ExpressLane`) is bit-identical to running the
exact same update sequence purely through the engine** — safe updates
absorbed with an O(degree) touch, unsafe ones falling through as one-edge
batches, full batches hitting ``apply_batch`` directly in between (which
deliberately goes *around* the lane, so the mutation-stamp resync path is
exercised every round).

Every scenario is reproducible from its ``(algorithm, policy, seed)``
triple over seeded RMAT graphs and seeded mixed insert/delete streams.
The express replay and the engine-only oracle run in lockstep, comparing
states after every step, so the first divergent step is found directly;
on failure the prefix is additionally re-verified by bisection (the
minimal-failing-prefix reporter from ``test_stream_fuzz.py``) and printed
as a replayable trace.

Final states are also checked against a cold-start ``reference.py``
computation on the final graph, so the lane and the engine cannot agree
on a wrong answer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core.fastpath import ExpressLane
from repro.core.policies import DeletePolicy
from repro.core.streaming import JetStreamEngine
from repro.graph import generators
from repro.graph.dynamic import DynamicGraph
from repro.reference import compute_reference
from repro.streams import Edge, StreamGenerator, UpdateBatch

#: 4 monotonic algorithms × 3 policies × 3 seeds = 36 seeded scenarios
#: (the issue floor is 25). PageRank/adsorption have no classifier and
#: never reach the fast path, so they are out of scope here.
EXPRESS_ALGORITHMS = ["sssp", "sswp", "bfs", "cc"]
POLICIES = {
    "base": DeletePolicy.BASE,
    "vap": DeletePolicy.VAP,
    "dap": DeletePolicy.DAP,
}
SCENARIO_SEEDS = list(range(3))

NUM_VERTICES = 48
NUM_EDGES = 150
NUM_ROUNDS = 3
SINGLES_PER_ROUND = 8
BATCH_SIZE = 8
DELETE_PROB = 0.3

#: A step is either one express single update or one engine batch.
ExpressStep = Tuple[str, int, int, float, str]  # ("express", u, v, w, op)
BatchStep = Tuple[str, UpdateBatch]  # ("batch", batch)
Step = Union[ExpressStep, BatchStep]


def _build_graph(algorithm, seed: int) -> DynamicGraph:
    """Deterministic RMAT graph honouring the algorithm's symmetry need."""
    edges = generators.rmat(NUM_VERTICES, NUM_EDGES, seed=seed, weighted=True)
    if algorithm.needs_symmetric:
        graph = DynamicGraph(NUM_VERTICES, symmetric=True)
        seen = set()
        for u, v, w in edges:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(u, v, w, _count_version=False)
        return graph
    return DynamicGraph.from_edges(edges, NUM_VERTICES)


def _apply_to(graph: DynamicGraph, batch: UpdateBatch) -> None:
    graph.apply_batch(
        [(e.u, e.v, e.w) for e in batch.insertions],
        [e.key() for e in batch.deletions],
    )


def _make_steps(name: str, seed: int) -> List[Step]:
    """The scenario's step sequence, captured up front so prefixes replay.

    Each round is ``SINGLES_PER_ROUND`` express singles (op drawn per
    update — ``next_batch`` at size 1 would otherwise round 70/30 to
    all-inserts) followed by one full engine batch. Generated against a
    scratch graph that tracks the same mutations the replays will apply,
    so deletions always target live edges and insertions are fresh.
    """
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    generator = StreamGenerator(graph, seed=seed + 2000)
    rng = np.random.default_rng(seed + 4000)
    steps: List[Step] = []
    for _ in range(NUM_ROUNDS):
        for _ in range(SINGLES_PER_ROUND):
            ratio = 0.0 if rng.random() < DELETE_PROB else 1.0
            single = generator.next_batch(1, insertion_ratio=ratio)
            _apply_to(graph, single)
            if single.insertions:
                e = single.insertions[0]
                steps.append(("express", e.u, e.v, e.w, "insert"))
            else:
                e = single.deletions[0]
                steps.append(("express", e.u, e.v, e.w, "delete"))
        batch = generator.next_batch(BATCH_SIZE)
        _apply_to(graph, batch)
        steps.append(("batch", batch))
    return steps


def _make_engine(name: str, policy: DeletePolicy, seed: int) -> JetStreamEngine:
    algorithm = make_algorithm(name, source=0)
    graph = _build_graph(algorithm, seed)
    engine = JetStreamEngine(graph, algorithm, policy=policy)
    engine.initial_compute()
    return engine


def _oracle_batch(step: ExpressStep) -> UpdateBatch:
    _, u, v, w, op = step
    if op == "insert":
        return UpdateBatch(insertions=[Edge(u, v, w)])
    return UpdateBatch(deletions=[Edge(u, v, w)])


def _replay(
    name: str, policy: DeletePolicy, seed: int, steps: List[Step]
) -> Optional[int]:
    """Express replay vs engine-only oracle, in lockstep.

    Returns the smallest prefix length after which the express-lane states
    differ bitwise from the oracle's (0 = the initial evaluations already
    differ, which would be an engine determinism bug), or ``None`` when
    the whole prefix holds. Because states are compared after *every*
    step, the returned length is already the minimal failing prefix.
    """
    express = _make_engine(name, policy, seed)
    oracle = _make_engine(name, policy, seed)
    lane = ExpressLane(express)
    try:
        if not np.array_equal(express.query_result(), oracle.query_result()):
            return 0
        for index, step in enumerate(steps):
            if step[0] == "express":
                _, u, v, w, op = step
                lane.apply(u, v, w, op)
                oracle.apply_batch(_oracle_batch(step))
            else:
                express.apply_batch(step[1])
                oracle.apply_batch(step[1])
            if not np.array_equal(express.query_result(), oracle.query_result()):
                return index + 1
    finally:
        express.close()
        oracle.close()
    return None


def _final_states_diverge(
    name: str, policy: DeletePolicy, seed: int, steps: List[Step]
) -> bool:
    """Single-shot prefix check used by the bisecting re-verifier."""
    express = _make_engine(name, policy, seed)
    oracle = _make_engine(name, policy, seed)
    lane = ExpressLane(express)
    try:
        for step in steps:
            if step[0] == "express":
                _, u, v, w, op = step
                lane.apply(u, v, w, op)
                oracle.apply_batch(_oracle_batch(step))
            else:
                express.apply_batch(step[1])
                oracle.apply_batch(step[1])
        return not np.array_equal(express.query_result(), oracle.query_result())
    finally:
        express.close()
        oracle.close()


def _minimal_failing_prefix(
    name: str, policy: DeletePolicy, seed: int, steps: List[Step], failing_len: int
) -> int:
    """Bisect the step list down to the shortest prefix that still fails.

    Lockstep comparison already yields the minimal prefix; the bisection
    re-verifies it from scratch (fresh engines per probe) so the reported
    trace is guaranteed replayable in isolation.
    """
    if failing_len == 0:
        return 0
    lo, hi = 1, failing_len
    while lo < hi:
        mid = (lo + hi) // 2
        if _final_states_diverge(name, policy, seed, steps[:mid]):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _format_prefix(steps: List[Step]) -> str:
    lines = []
    for index, step in enumerate(steps):
        if step[0] == "express":
            _, u, v, w, op = step
            lines.append(f"  step {index}: express {op} ({u}, {v}, {round(w, 3)})")
        else:
            batch = step[1]
            ins = [(e.u, e.v, round(e.w, 3)) for e in batch.insertions]
            dels = [(e.u, e.v) for e in batch.deletions]
            lines.append(f"  step {index}: batch insert {ins} delete {dels}")
    return "\n".join(lines) if lines else "  (initial evaluation, no steps)"


@pytest.mark.parametrize("seed", SCENARIO_SEEDS)
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", EXPRESS_ALGORITHMS)
def test_express_lane_matches_engine_oracle(name, policy_name, seed):
    policy = POLICIES[policy_name]
    steps = _make_steps(name, seed)
    failing = _replay(name, policy, seed, steps)
    if failing is not None:
        minimal = _minimal_failing_prefix(name, policy, seed, steps, failing)
        pytest.fail(
            f"scenario {name}/{policy_name}/seed={seed}: express lane "
            f"diverged bitwise from the engine-only oracle after {minimal} "
            f"step(s). Minimal failing step prefix (RMAT n={NUM_VERTICES} "
            f"m={NUM_EDGES} seed={seed}, stream seed={seed + 2000}, op seed="
            f"{seed + 4000}):\n" + _format_prefix(steps[:minimal])
        )
    # Ground truth: the agreed-upon final state is also the cold-start
    # reference answer on the final graph (lane+engine can't co-drift).
    engine = _make_engine(name, policy, seed)
    lane = ExpressLane(engine)
    try:
        for step in steps:
            if step[0] == "express":
                _, u, v, w, op = step
                lane.apply(u, v, w, op)
            else:
                engine.apply_batch(step[1])
        algorithm = engine.algorithm
        states = engine.query_result()
        expected = compute_reference(algorithm, engine.graph.snapshot())
        bad = [
            (i, float(states[i]), float(expected[i]))
            for i in range(len(expected))
            if not algorithm.values_close(float(states[i]), float(expected[i]))
        ]
        assert not bad, (
            f"scenario {name}/{policy_name}/seed={seed}: final states differ "
            f"from cold-start reference; first mismatches {bad[:5]}"
        )
        # The lane must actually be exercised: every scenario has express
        # steps, and each lands either as a safe apply or a fallthrough.
        stats = lane.stats
        singles = sum(1 for s in steps if s[0] == "express")
        assert stats["safe_applied"] + stats["engine_fallthroughs"] == singles
    finally:
        engine.close()


def test_scenario_count_meets_floor():
    """The issue's acceptance bar: at least 25 seeded express scenarios."""
    assert len(EXPRESS_ALGORITHMS) * len(POLICIES) * len(SCENARIO_SEEDS) >= 25
