"""Tests for graph analysis statistics and the metrics trace export."""

import numpy as np
import pytest

from repro.graph import analysis, datasets, generators
from repro.graph.csr import CSRGraph


class TestDegreeStats:
    def test_degree_distribution(self):
        csr = CSRGraph(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
        assert list(analysis.degree_distribution(csr)) == [2, 1, 0]

    def test_skew_regular_graph(self):
        csr = CSRGraph(4, [(i, (i + 1) % 4, 1.0) for i in range(4)])
        assert analysis.degree_skew(csr) == pytest.approx(1.0)

    def test_skew_star_graph(self):
        csr = CSRGraph(5, [(0, v, 1.0) for v in range(1, 5)])
        assert analysis.degree_skew(csr) == pytest.approx(4 / 0.8)

    def test_empty_graph(self):
        csr = CSRGraph(0, [])
        assert analysis.degree_skew(csr) == 0.0


class TestReachability:
    def test_bfs_levels_chain(self):
        csr = CSRGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert list(analysis.bfs_levels(csr, 0)) == [0, 1, 2, 3]

    def test_unreachable_marked(self):
        csr = CSRGraph(3, [(0, 1, 1.0)])
        assert analysis.bfs_levels(csr, 0)[2] == -1

    def test_effective_diameter_chain(self):
        csr = CSRGraph(11, [(i, i + 1, 1.0) for i in range(10)])
        assert analysis.effective_diameter(csr, 0, percentile=100) == 10.0

    def test_reachable_fraction(self):
        csr = CSRGraph(4, [(0, 1, 1.0)])
        assert analysis.reachable_fraction(csr, 0) == pytest.approx(0.5)

    def test_component_sizes(self):
        csr = CSRGraph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        assert analysis.component_sizes(csr) == [3, 2, 1]


class TestProfile:
    def test_profile_fields(self):
        csr = datasets.load_csr("WK")
        profile = analysis.profile(csr)
        assert profile.num_vertices == csr.num_vertices
        assert profile.reachable_fraction > 0.95  # ensure_reachable_core
        assert set(profile.as_dict()) >= {"effective_diameter", "degree_skew"}

    def test_topology_classes_hold(self):
        """DESIGN.md claim: web stand-ins are narrow/long-path, social
        stand-ins are highly connected with heavy-tailed degrees."""
        web = analysis.profile(datasets.load_csr("WK"))
        social = analysis.profile(datasets.load_csr("FB"))
        assert web.effective_diameter > social.effective_diameter
        assert social.degree_skew > 5 * web.degree_skew


class TestMetricsExport:
    def _metrics(self):
        from repro import DynamicGraph, JetStreamEngine, make_algorithm

        graph = DynamicGraph.from_edges(generators.erdos_renyi(30, 120, seed=1), 30)
        engine = JetStreamEngine(graph, make_algorithm("sssp", source=0))
        return engine.initial_compute().metrics

    def test_to_rows(self):
        rows = self._metrics().to_rows()
        assert rows
        assert rows[0]["phase"] == "initial"
        assert all("events_processed" in row for row in rows)

    def test_to_csv_round_trip(self, tmp_path):
        metrics = self._metrics()
        path = tmp_path / "trace.csv"
        count = metrics.to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count + 1  # header
        assert lines[0].startswith("phase,round,")

    def test_to_csv_empty_still_writes_header(self, tmp_path):
        from repro.core.metrics import CSV_HEADER, RunMetrics

        path = tmp_path / "empty.csv"
        assert RunMetrics().to_csv(str(path)) == 0
        # A zero-round run must still produce a parseable file: header only.
        assert path.read_text().strip().splitlines() == [",".join(CSV_HEADER)]
